"""The rule framework and the distributed-correctness rule pack.

Every rule is a :class:`Rule` subclass with a stable ID (``RPR001``...),
a severity, and a ``check(ctx)`` returning :class:`~.findings.Finding`
objects; rules that can repair their finding attach text
:class:`~.findings.Edit` objects (applied by ``repro lint --fix``).

The pack targets the hazard classes that actually break the paper's
scaling runs (Kurth et al. §V–§VI) and this repo's simulated-MPI stack:

====== ============================ ======== ===== =========================
ID     name                         severity fix   hazard
====== ============================ ======== ===== =========================
RPR001 collective-in-rank-branch    error    no    rank-divergent collective
                                                   -> deadlock
RPR002 broad-except                 warning  bare  swallows ReproError /
                                                   FaultInjected
RPR003 unseeded-rng                 warning  no    rank-divergent data or
                                                   init streams
RPR004 deprecated-checkpoint-api    warning  no    bypasses CheckpointManager
                                                   rotation/autoresume
RPR005 mutable-default-arg          warning  yes   state shared across calls
RPR006 float16-outside-precision    warning  no    bypasses loss-scaled FP16
                                                   path
RPR007 stale-suppression            info     yes   disable comment matching
                                                   no finding
RPR008 raw-time-call                warning  no    bypasses the telemetry
                                                   clock (breaks virtual
                                                   time)
RPR009 deprecated-allreduce-api     warning  yes   bypasses the comm strategy
                                                   registry facade
====== ============================ ======== ===== =========================
"""
from __future__ import annotations

import ast
import hashlib

from .findings import Edit, Finding

__all__ = [
    "FileContext",
    "Rule",
    "CollectiveInRankBranch",
    "BroadExcept",
    "UnseededRng",
    "DeprecatedCheckpointApi",
    "MutableDefaultArg",
    "Float16OutsidePrecision",
    "StaleSuppression",
    "RawTimeCall",
    "DeprecatedAllreduceApi",
    "DEFAULT_RULES",
    "default_rules",
    "rule_catalog",
    "rules_signature",
]


class FileContext:
    """Everything a rule needs about one file: path, source, parsed tree."""

    def __init__(self, rel_path: str, source: str, tree: ast.AST | None = None):
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source) if tree is None else tree

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def segment(self, node: ast.AST) -> str | None:
        return ast.get_source_segment(self.source, node)


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``."""

    id: str = "RPR000"
    name: str = "abstract-rule"
    severity: str = "warning"
    description: str = ""
    autofix: bool = False
    version: int = 1        # bump to invalidate cached results for this rule

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, col: int, message: str,
                edits: tuple[Edit, ...] = (), end_line: int = 0) -> Finding:
        return Finding(rule_id=self.id, severity=self.severity,
                       path=ctx.rel_path, line=line, col=col, message=message,
                       line_text=ctx.line_text(line), edits=edits,
                       end_line=end_line)

    def node_finding(self, ctx: FileContext, node: ast.AST, message: str,
                     edits: tuple[Edit, ...] = ()) -> Finding:
        end_line = getattr(node, "end_lineno", None) or 0
        return self.finding(ctx, node.lineno, node.col_offset, message, edits,
                            end_line=end_line)


# ---------------------------------------------------------------------------
# RPR001 — collectives inside rank-conditional branches
# ---------------------------------------------------------------------------

#: World / horovod methods every rank must enter together.
COLLECTIVE_NAMES = frozenset({
    "broadcast", "gather", "allgather", "all_gather", "exchange",
    "allreduce", "all_reduce", "allreduce_gradients", "reduce_scatter",
    "alltoall", "barrier",
})

#: Names whose value identifies "which rank am I" in this codebase.
RANK_NAMES = frozenset({"rank", "my_rank", "rank_id", "local_rank",
                        "world_rank", "node_rank"})


def _mentions_rank(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in RANK_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in RANK_NAMES:
            return True
    return False


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class CollectiveInRankBranch(Rule):
    id = "RPR001"
    name = "collective-in-rank-branch"
    severity = "error"
    description = ("A collective (broadcast/gather/exchange/allreduce/"
                   "barrier...) is called inside a rank-conditional branch; "
                   "ranks taking the other path never enter it and the job "
                   "deadlocks. Hoist the collective above the branch.")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, in_rank_branch: bool) -> None:
            # A new function/class scope resets the condition: the branch
            # guards the *definition*, not the call.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                in_rank_branch = False
            if isinstance(node, ast.Call) and in_rank_branch:
                name = _call_name(node)
                if name in COLLECTIVE_NAMES:
                    findings.append(self.node_finding(
                        ctx, node,
                        f"collective '{name}' called inside a "
                        f"rank-conditional branch: ranks on the other path "
                        f"never reach it (deadlock); hoist it above the "
                        f"branch"))
            if isinstance(node, ast.If) and _mentions_rank(node.test):
                visit(node.test, in_rank_branch)
                for child in node.body + node.orelse:
                    visit(child, True)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, in_rank_branch)

        visit(ctx.tree, False)
        return findings


# ---------------------------------------------------------------------------
# RPR002 — bare / broad except
# ---------------------------------------------------------------------------

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


class BroadExcept(Rule):
    id = "RPR002"
    name = "broad-except"
    severity = "warning"
    autofix = True
    description = ("A bare 'except:' or 'except Exception:' swallows "
                   "ReproError and FaultInjected, hiding injected faults and "
                   "protocol bugs. Catch the concrete exception (handlers "
                   "that re-raise are exempt). Autofix rewrites bare "
                   "'except:' to 'except Exception:'.")

    def _broad_name(self, type_node: ast.AST | None) -> str | None:
        if type_node is None:
            return ""
        nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        for n in nodes:
            if isinstance(n, ast.Name) and n.id in _BROAD_TYPES:
                return n.id
        return None

    def _bare_fix(self, ctx: FileContext,
                  handler: ast.ExceptHandler) -> tuple[Edit, ...]:
        line = ctx.lines[handler.lineno - 1]
        head = line[handler.col_offset:]
        colon = head.find(":")
        if colon < 0 or head[:colon].strip() != "except":
            return ()
        return (Edit(handler.lineno, handler.col_offset,
                     handler.lineno, handler.col_offset + colon + 1,
                     "except Exception:"),)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or _reraises(node):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if broad == "":
                findings.append(self.node_finding(
                    ctx, node,
                    "bare 'except:' swallows ReproError/FaultInjected (and "
                    "KeyboardInterrupt); catch a concrete exception",
                    edits=self._bare_fix(ctx, node)))
            else:
                findings.append(self.node_finding(
                    ctx, node,
                    f"'except {broad}:' swallows ReproError/FaultInjected; "
                    f"catch the concrete exception or re-raise"))
        return findings


# ---------------------------------------------------------------------------
# RPR003 — unseeded RNG
# ---------------------------------------------------------------------------

#: Global-state functions of the stdlib ``random`` module.
_STDLIB_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
})

#: np.random attributes that are fine to touch.
_NP_RANDOM_OK = frozenset({"Generator", "SeedSequence", "BitGenerator",
                           "PCG64", "Philox", "SFC64", "MT19937"})


class UnseededRng(Rule):
    id = "RPR003"
    name = "unseeded-rng"
    severity = "warning"
    description = ("Module-level RNG state (random.* / np.random.*) draws a "
                   "different stream on every rank and run, breaking the "
                   "deterministic seeded staging the paper's scaling relies "
                   "on. Construct numpy.random.default_rng(seed) (or "
                   "random.Random(seed)) and thread it through.")

    def _module_aliases(self, ctx: FileContext) -> tuple[set, set, set]:
        random_mods, numpy_mods, from_random = set(), set(), set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_mods.add(alias.asname or "random")
                    elif alias.name == "numpy":
                        numpy_mods.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random" and alias.asname:
                        random_mods.add(alias.asname)  # treated like np.random
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _STDLIB_RANDOM_FUNCS | {"Random"}:
                        from_random.add((alias.asname or alias.name,
                                         alias.name))
        return random_mods, numpy_mods, from_random

    def check(self, ctx: FileContext) -> list[Finding]:
        random_mods, numpy_mods, from_random = self._module_aliases(ctx)
        from_names = dict(from_random)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.<fn>(...) or <np.random alias>.<fn>(...)
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_mods):
                if func.attr == "Random" and node.args:
                    continue        # random.Random(seed) is the sanctioned API
                if func.attr == "default_rng" and node.args:
                    continue
                if (func.attr in _STDLIB_RANDOM_FUNCS
                        or func.attr in {"Random", "default_rng"}
                        or func.attr == "RandomState"):
                    findings.append(self.node_finding(
                        ctx, node,
                        f"'{func.value.id}.{func.attr}' uses module-global "
                        f"RNG state; use numpy.random.default_rng(seed) / "
                        f"random.Random(seed) so every rank draws a "
                        f"deterministic stream"))
                continue
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in (numpy_mods | {"np", "numpy"})):
                if func.attr in _NP_RANDOM_OK:
                    continue
                if func.attr == "default_rng":
                    if not node.args:
                        findings.append(self.node_finding(
                            ctx, node,
                            "numpy.random.default_rng() without a seed is "
                            "entropy-seeded: every rank diverges; pass an "
                            "explicit seed"))
                    continue
                if func.attr == "RandomState" and node.args:
                    message = (f"legacy 'np.random.{func.attr}' API; "
                               f"construct numpy.random.default_rng(seed)")
                else:
                    message = (f"'np.random.{func.attr}' uses module-global "
                               f"RNG state; construct "
                               f"numpy.random.default_rng(seed)")
                findings.append(self.node_finding(ctx, node, message))
                continue
            # from random import shuffle; shuffle(...)
            if isinstance(func, ast.Name) and func.id in from_names:
                original = from_names[func.id]
                if original == "Random" and node.args:
                    continue
                findings.append(self.node_finding(
                    ctx, node,
                    f"'{original}' (from random) uses module-global RNG "
                    f"state; use random.Random(seed) / "
                    f"numpy.random.default_rng(seed)"))
        return findings


# ---------------------------------------------------------------------------
# RPR004 — deprecated checkpoint free functions
# ---------------------------------------------------------------------------

_DEPRECATED_CKPT = {"save_checkpoint": "CheckpointManager.save",
                    "load_checkpoint": "CheckpointManager.load"}


class DeprecatedCheckpointApi(Rule):
    id = "RPR004"
    name = "deprecated-checkpoint-api"
    severity = "warning"
    description = ("save_checkpoint/load_checkpoint free functions are "
                   "deprecated: they bypass CheckpointManager's step naming, "
                   "latest-resolution, and rotation that resilience "
                   "autoresume depends on.")

    #: The module that defines (and may self-reference) the wrappers.
    exempt_suffixes = ("core/checkpoint.py",)

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.rel_path.endswith(self.exempt_suffixes):
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _DEPRECATED_CKPT:
                findings.append(self.node_finding(
                    ctx, node,
                    f"'{name}' is deprecated; use "
                    f"{_DEPRECATED_CKPT[name]}"))
        return findings


# ---------------------------------------------------------------------------
# RPR005 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict",
                            "deque", "Counter", "OrderedDict"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name in _MUTABLE_CALLS
    return False


def _safe_to_autofix(node: ast.AST) -> bool:
    """Only literals/no-arg constructors are safe to re-create per call."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return not (getattr(node, "elts", None)
                    or getattr(node, "keys", None)
                    or getattr(node, "values", None))
    if isinstance(node, ast.Call):
        return (not node.args and not node.keywords
                and _call_name(node) in {"list", "dict", "set"})
    return False


class MutableDefaultArg(Rule):
    id = "RPR005"
    name = "mutable-default-arg"
    severity = "warning"
    autofix = True
    description = ("A mutable default argument is created once at def time "
                   "and shared across every call (and every rank stepping "
                   "through the same code object). Autofix rewrites "
                   "'x=[]' to 'x=None' plus an 'if x is None:' guard.")

    def _guard_edits(self, ctx: FileContext, fn: ast.AST, arg_name: str,
                     default: ast.AST) -> tuple[Edit, ...]:
        if not _safe_to_autofix(default):
            return ()
        body = fn.body
        insert_at = body[0]
        if (len(body) > 1 and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            insert_at = body[1]         # keep the docstring first
        if insert_at.lineno == fn.lineno:
            return ()                   # one-line def: punt to the human
        literal = ctx.segment(default) or "[]"
        indent = " " * insert_at.col_offset
        guard = (f"{indent}if {arg_name} is None:\n"
                 f"{indent}    {arg_name} = {literal}\n")
        return (
            Edit(default.lineno, default.col_offset,
                 default.end_lineno, default.end_col_offset, "None"),
            Edit(insert_at.lineno, 0, insert_at.lineno, 0, guard),
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = fn.args
            pos = args.posonlyargs + args.args
            pairs = list(zip(pos[len(pos) - len(args.defaults):],
                             args.defaults))
            pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                      if d is not None]
            for arg, default in pairs:
                if _is_mutable_default(default):
                    findings.append(self.node_finding(
                        ctx, default,
                        f"mutable default for '{arg.arg}' is shared across "
                        f"calls; default to None and construct inside the "
                        f"body",
                        edits=self._guard_edits(ctx, fn, arg.arg, default)))
        return findings


# ---------------------------------------------------------------------------
# RPR006 — float16 outside the precision layer
# ---------------------------------------------------------------------------

class Float16OutsidePrecision(Rule):
    id = "RPR006"
    name = "float16-outside-precision"
    severity = "warning"
    description = ("A raw float16 literal/cast outside repro.framework's "
                   "precision layer bypasses FP32 master weights and loss "
                   "scaling (§IV-B): small gradients silently flush to "
                   "zero. Go through framework.dtypes.FP16 / "
                   "framework.precision instead.")

    #: The precision layer itself, its dedicated test surface, and the
    #: analyzer (whose rules must be able to *name* the hazard).
    exempt = ("framework/precision.py", "framework/dtypes.py")
    exempt_dirs = ("tests/framework/", "repro/analysis/", "tests/analysis/")

    def _exempt(self, rel_path: str) -> bool:
        return (rel_path.endswith(self.exempt)
                or any(d in rel_path for d in self.exempt_dirs))

    def check(self, ctx: FileContext) -> list[Finding]:
        if self._exempt(ctx.rel_path):
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute) and node.attr == "float16"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")):
                findings.append(self.node_finding(
                    ctx, node,
                    "raw np.float16 outside the precision layer bypasses "
                    "loss scaling; use framework.dtypes.FP16 or "
                    "framework.precision"))
            elif isinstance(node, ast.Constant) and node.value == "float16":
                findings.append(self.node_finding(
                    ctx, node,
                    "'float16' dtype string outside the precision layer "
                    "bypasses loss scaling; use framework.dtypes.FP16 or "
                    "framework.precision"))
        return findings


# ---------------------------------------------------------------------------
# RPR007 — stale suppression (emitted by the walker, catalogued here)
# ---------------------------------------------------------------------------

class StaleSuppression(Rule):
    id = "RPR007"
    name = "stale-suppression"
    severity = "info"
    autofix = True
    description = ("A '# repro-lint: disable=...' comment suppressed "
                   "nothing: the finding it silenced is gone. Autofix "
                   "removes the comment. (Emitted by the walker after "
                   "suppression matching, not by an AST pass.)")

    def check(self, ctx: FileContext) -> list[Finding]:
        return []       # the walker emits these after matching suppressions


# ---------------------------------------------------------------------------
# RPR008 — raw clock reads inside instrumented modules
# ---------------------------------------------------------------------------

#: ``time`` module functions that read a clock directly.
_RAW_TIME_FUNCS = frozenset({
    "time", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "process_time", "process_time_ns", "time_ns",
})


class RawTimeCall(Rule):
    id = "RPR008"
    name = "raw-time-call"
    severity = "warning"
    description = ("A direct time.time()/time.perf_counter() call inside an "
                   "instrumented repro module reads the wall clock behind "
                   "the telemetry session's back: under a SimulatedClock "
                   "the measurement is meaningless and virtual-time traces "
                   "skew. Route through the session clock "
                   "(telemetry.get_active().tracer.clock.now()) or take a "
                   "clock parameter.")

    #: The clock abstraction itself is the one sanctioned wall-clock reader.
    exempt_suffixes = ("telemetry/clock.py",)

    def _instrumented(self, rel_path: str) -> bool:
        return "src/repro/" in rel_path or rel_path.startswith("repro/")

    def _time_aliases(self, ctx: FileContext) -> tuple[set, dict]:
        mods: set[str] = set()
        from_funcs: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        mods.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _RAW_TIME_FUNCS:
                        from_funcs[alias.asname or alias.name] = alias.name
        return mods, from_funcs

    def check(self, ctx: FileContext) -> list[Finding]:
        if (not self._instrumented(ctx.rel_path)
                or ctx.rel_path.endswith(self.exempt_suffixes)):
            return []
        mods, from_funcs = self._time_aliases(ctx)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mods
                    and func.attr in _RAW_TIME_FUNCS):
                name = f"{func.value.id}.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in from_funcs:
                name = from_funcs[func.id]
            if name is not None:
                findings.append(self.node_finding(
                    ctx, node,
                    f"'{name}()' reads the wall clock directly in an "
                    f"instrumented module; use the telemetry session clock "
                    f"so simulated/virtual time stays coherent"))
        return findings


# ---------------------------------------------------------------------------
# RPR009 — deprecated free-function allreduce entrypoints
# ---------------------------------------------------------------------------

#: Deprecated free function -> facade strategy name.
_DEPRECATED_ALLREDUCE = {
    "naive_allreduce": "naive",
    "ring_allreduce": "ring",
    "tree_allreduce": "tree",
    "hierarchical_allreduce": "hierarchical",
}

#: Modules whose attribute access reaches the deprecated wrappers (all of
#: them also expose the ``allreduce`` facade, so rewriting just the
#: attribute is safe).
_COMM_MODULES = frozenset({"repro.comm", "repro.comm.reducer",
                           "repro.comm.api"})


def _dotted_prefix(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain ending in a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeprecatedAllreduceApi(Rule):
    id = "RPR009"
    name = "deprecated-allreduce-api"
    severity = "warning"
    description = ("The free-function allreduce entrypoints "
                   "(naive/ring/tree/hierarchical_allreduce) are deprecated: "
                   "they bypass the CommStrategy registry, so the adaptive "
                   "engine's cost models and autotuning never see the call. "
                   "Use repro.comm.allreduce(world, buffers, "
                   "strategy=...).")
    autofix = True
    version = 2             # v2: attribute-style call sites are fixable too

    #: The wrappers' home and the facade that re-exports the private impls.
    exempt_suffixes = ("comm/reducer.py", "comm/api.py")

    def _comm_aliases(self, ctx: FileContext) -> dict[str, str]:
        """Local names bound to a comm module in this file.

        Covers ``import repro.comm.reducer as red``, ``from repro.comm
        import reducer``, and relative forms (``from . import reducer``
        inside the comm package).
        """
        from .callgraph import _resolve_relative, module_name

        aliases: dict[str, str] = {}
        base_mod = module_name(ctx.rel_path)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name in _COMM_MODULES and a.asname:
                        aliases[a.asname] = a.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    base = _resolve_relative(base_mod, ctx.rel_path,
                                             node.level, base)
                for a in node.names:
                    target = f"{base}.{a.name}" if base else a.name
                    if target in _COMM_MODULES:
                        aliases[a.asname or a.name] = target
        return aliases

    def _attr_edit(self, ctx: FileContext, func: ast.Attribute,
                   aliases: dict[str, str]) -> Edit | None:
        """Rewrite only the attribute of ``reducer.ring_allreduce(...)``."""
        prefix = _dotted_prefix(func.value)
        if prefix is None:
            return None
        if prefix not in _COMM_MODULES:
            # Expand a leading alias: ``red.`` or ``rc.reducer.``.
            head, _, rest = prefix.partition(".")
            target = aliases.get(head)
            if target is None:
                return None
            if (f"{target}.{rest}" if rest else target) not in _COMM_MODULES:
                return None
        end_line, end_col = func.end_lineno, func.end_col_offset
        line = ctx.lines[end_line - 1] if end_line <= len(ctx.lines) else ""
        start = end_col - len(func.attr)
        if start < 0 or line[start:end_col] != func.attr:
            return None         # formatting we don't understand: report only
        return Edit(end_line, start, end_line, end_col, "allreduce")

    def _call_edits(self, ctx: FileContext, node: ast.Call, strategy: str,
                    aliases: dict[str, str]) -> tuple[Edit, ...]:
        """Rewrite a deprecated call to the facade.

        ``ring_allreduce(w, bufs)`` -> ``allreduce(w, bufs,
        strategy="ring")`` for plain names; for attribute calls whose base
        is a known comm module (``reducer.ring_allreduce(...)``) only the
        attribute is rewritten, keeping the receiver.  Only safe when every
        strategy knob is already a keyword (a positional third argument
        would land in the facade's keyword-only section and break).
        """
        func = node.func
        if len(node.args) > 2:
            return ()
        segment = ctx.segment(node)
        if segment is None or not segment.endswith(")"):
            return ()
        if isinstance(func, ast.Name):
            name_edit = Edit(func.lineno, func.col_offset,
                             func.end_lineno, func.end_col_offset,
                             "allreduce")
        elif isinstance(func, ast.Attribute):
            name_edit = self._attr_edit(ctx, func, aliases)
            if name_edit is None:
                return ()
        else:
            return ()
        inner = segment[:-1]
        insert = (f' strategy="{strategy}"' if inner.rstrip().endswith(",")
                  else f', strategy="{strategy}"')
        close = Edit(node.end_lineno, node.end_col_offset - 1,
                     node.end_lineno, node.end_col_offset - 1, insert)
        return (name_edit, close)

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.rel_path.endswith(self.exempt_suffixes):
            return []
        findings = []
        aliases: dict[str, str] | None = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _DEPRECATED_ALLREDUCE:
                continue
            if aliases is None:
                aliases = self._comm_aliases(ctx)
            strategy = _DEPRECATED_ALLREDUCE[name]
            findings.append(self.node_finding(
                ctx, node,
                f"'{name}' is deprecated; use repro.comm.allreduce(world, "
                f"buffers, strategy=\"{strategy}\", ...)",
                edits=self._call_edits(ctx, node, strategy, aliases)))
        return findings


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

DEFAULT_RULES: tuple[type[Rule], ...] = (
    CollectiveInRankBranch,
    BroadExcept,
    UnseededRng,
    DeprecatedCheckpointApi,
    MutableDefaultArg,
    Float16OutsidePrecision,
    StaleSuppression,
    RawTimeCall,
    DeprecatedAllreduceApi,
)


def default_rules() -> list[Rule]:
    return [cls() for cls in DEFAULT_RULES]


def rule_catalog(rules: list[Rule] | None = None) -> list[dict]:
    rows = []
    for rule in rules or default_rules():
        rows.append({"id": rule.id, "name": rule.name,
                     "severity": rule.severity, "autofix": rule.autofix,
                     "description": rule.description})
    return rows


def rules_signature(rules: list[Rule]) -> str:
    """Cache key component: changes whenever the rule set changes."""
    blob = ";".join(f"{r.id}:{r.name}:v{r.version}"
                    for r in sorted(rules, key=lambda r: r.id))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]
