"""Findings and text edits: the analyzer's currency.

A :class:`Finding` is one diagnostic — rule ID, severity, location, and
message — optionally carrying :class:`Edit` objects that rewrite the
offending source (the ``--fix`` path).  Edits use the same coordinate
convention as :mod:`ast` nodes (1-based line, 0-based column) so rules can
lift them straight off node attributes; :func:`apply_edits` converts to
absolute offsets and applies them right-to-left so earlier edits never
invalidate later spans.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEVERITIES", "Edit", "Finding", "apply_edits"]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Edit:
    """Replace source text in ``[start, end)`` with ``replacement``.

    Coordinates follow :mod:`ast`: ``line``/``end_line`` are 1-based,
    ``col``/``end_col`` are 0-based character offsets into the line.
    A zero-width span (start == end) is a pure insertion.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str

    def as_dict(self) -> dict:
        return {"line": self.line, "col": self.col,
                "end_line": self.end_line, "end_col": self.end_col,
                "replacement": self.replacement}

    @classmethod
    def from_dict(cls, d: dict) -> "Edit":
        return cls(d["line"], d["col"], d["end_line"], d["end_col"],
                   d["replacement"])


@dataclass
class Finding:
    """One diagnostic produced by a rule (or the walker itself)."""

    rule_id: str
    severity: str
    path: str               # root-relative posix path
    line: int               # 1-based
    col: int                # 0-based
    message: str
    line_text: str = ""     # stripped source line — the baseline fingerprint
    edits: tuple[Edit, ...] = ()
    suppressed: bool = False
    baselined: bool = False
    end_line: int = 0       # last line of the offending node (0 = unknown)

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            self.end_line = self.line

    @property
    def fixable(self) -> bool:
        return bool(self.edits)

    @property
    def new(self) -> bool:
        """True when this finding should gate CI (not suppressed/baselined)."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "message": self.message,
            "text": self.line_text,
            "fixable": self.fixable,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "edits": [e.as_dict() for e in self.edits],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(rule_id=d["rule"], severity=d["severity"], path=d["path"],
                   line=d["line"], col=d["col"], message=d["message"],
                   line_text=d.get("text", ""),
                   end_line=d.get("end_line", 0),
                   edits=tuple(Edit.from_dict(e) for e in d.get("edits", ())),
                   suppressed=d.get("suppressed", False),
                   baselined=d.get("baselined", False))


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def apply_edits(source: str, edits: list[Edit]) -> tuple[str, int]:
    """Apply ``edits`` to ``source``; returns ``(new_source, applied)``.

    Edits are applied from the end of the file backwards so offsets stay
    valid; overlapping edits are skipped (first writer wins) rather than
    producing corrupt output.
    """
    starts = _line_starts(source)

    def offset(line: int, col: int) -> int:
        idx = min(max(line - 1, 0), len(starts) - 1)
        return starts[idx] + col

    spans = sorted(
        ((offset(e.line, e.col), offset(e.end_line, e.end_col), e)
         for e in edits),
        key=lambda t: (t[0], t[1]))
    applied = []
    last_end = -1
    for start, end, e in spans:
        if start < last_end or end < start:
            continue            # overlap or inverted span: skip, don't corrupt
        applied.append((start, end, e))
        last_end = end
    out = source
    for start, end, e in reversed(applied):
        out = out[:start] + e.replacement + out[end:]
    return out, len(applied)
