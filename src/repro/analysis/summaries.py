"""Per-function summaries for the whole-program analyzer.

A :class:`FunctionSummary` is a *pure function of its file's content*: it
records everything the inter-procedural rules (RPR101–RPR104) need to know
about one function without ever looking at another file.  Cross-function
facts are kept **symbolic** — a call's result is the label ``call:<k>``,
a parameter's value is ``param:<i>`` — and resolved later by the global
fixpoint in :mod:`repro.analysis.deeprules`.  That split is what makes the
dependency-hash cache in :mod:`repro.analysis.project` sound: a file's
summaries only change when the file changes.

Concrete taint labels:

``fp16``
    A raw half-precision value: ``np.float16`` / ``np.half`` references,
    ``"float16"``/``"half"`` dtype strings, and casts thereof.  The
    sanctioned ``framework.dtypes.FP16`` channel is *not* a source.
``rng``
    An unseeded generator: ``default_rng()`` / ``Random()`` /
    ``RandomState()`` called with no seed argument.

Calls recorded per function carry their syntactic context — enclosing
rank-conditional branch (same semantics as RPR001, both arms, scope reset
at nested defs) and enclosing ``try`` whose handler broadly swallows
exceptions (same broad/re-raise semantics as RPR002).
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import FunctionInfo, call_ref
from .flow import TaintAnalysis, TaintPolicy, build_cfg, replay, solve_forward
from .rules import COLLECTIVE_NAMES, _mentions_rank

__all__ = [
    "CallSite",
    "SinkSite",
    "FunctionSummary",
    "summarize_function",
    "CHECKPOINT_NAMES",
    "ACCUMULATION_NAMES",
    "DRAW_NAMES",
]

#: Direct checkpoint entry points (module-level resolution into
#: ``repro.core.checkpoint`` is additionally applied by the global phase).
CHECKPOINT_NAMES = frozenset({"save_checkpoint", "load_checkpoint"})

#: Reduction-style calls where silent fp16 accumulation loses precision.
ACCUMULATION_NAMES = frozenset({
    "sum", "mean", "dot", "matmul", "einsum", "cumsum", "prod",
    "average", "tensordot",
})

#: Methods that draw from an RNG; a draw on an unseeded generator is the
#: RPR103 sink.
DRAW_NAMES = frozenset({
    "random", "normal", "uniform", "integers", "randint", "choice",
    "shuffle", "standard_normal", "rand", "randn", "sample", "permutation",
})

#: Calls that merely re-shape / re-type their input: result inherits the
#: argument labels (this is how an fp16 cast propagates).
_CAST_NAMES = frozenset({
    "astype", "asarray", "array", "ascontiguousarray", "cast", "copy",
    "reshape", "ravel", "view", "full", "zeros", "ones", "empty",
    "full_like", "zeros_like", "ones_like", "empty_like",
})

_RNG_FACTORIES = frozenset({"default_rng", "Random", "RandomState"})

_FP16_ATTRS = frozenset({"float16", "half"})
_FP16_STRINGS = frozenset({"float16", "half"})

_BROAD_HANDLER_TYPES = frozenset({"Exception", "BaseException"})


# ---------------------------------------------------------------------------
# Summary data model (JSON-serializable)
# ---------------------------------------------------------------------------

@dataclass
class CallSite:
    """One name-shaped call inside a function."""

    ref: str                     # dotted target as written (``self._sync``)
    line: int
    col: int
    end_line: int
    rank_guard: int | None = None      # line of the guarding rank-``if``
    broad_handler: int | None = None   # line of the swallowing handler
    arg_labels: list = field(default_factory=list)    # list[list[str]]
    kw_labels: dict = field(default_factory=dict)     # name -> list[str]

    def as_dict(self) -> dict:
        return {
            "ref": self.ref, "line": self.line, "col": self.col,
            "end_line": self.end_line, "rank_guard": self.rank_guard,
            "broad_handler": self.broad_handler,
            "arg_labels": self.arg_labels, "kw_labels": self.kw_labels,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(**data)


@dataclass
class SinkSite:
    """A site where tainted data would be a finding (kind decides which)."""

    kind: str                    # "acc" | "loss" | "draw"
    name: str                    # call name as written
    line: int
    col: int
    end_line: int
    labels: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "line": self.line,
                "col": self.col, "end_line": self.end_line,
                "labels": self.labels}

    @classmethod
    def from_dict(cls, data: dict) -> "SinkSite":
        return cls(**data)


@dataclass
class FunctionSummary:
    qname: str
    module: str
    params: list = field(default_factory=list)        # names, in order
    calls: list = field(default_factory=list)         # list[CallSite]
    #: (name, line, col, end_line) of direct collective calls.
    collectives: list = field(default_factory=list)
    #: (name, line, col, end_line) of direct checkpoint calls.
    checkpoints: list = field(default_factory=list)
    sinks: list = field(default_factory=list)         # list[SinkSite]
    return_labels: list = field(default_factory=list)
    #: param name -> concrete labels of its default expression.
    default_labels: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "qname": self.qname, "module": self.module,
            "params": self.params,
            "calls": [c.as_dict() for c in self.calls],
            "collectives": self.collectives,
            "checkpoints": self.checkpoints,
            "sinks": [s.as_dict() for s in self.sinks],
            "return_labels": self.return_labels,
            "default_labels": self.default_labels,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qname=data["qname"], module=data["module"],
            params=list(data.get("params", [])),
            calls=[CallSite.from_dict(c) for c in data.get("calls", [])],
            collectives=[tuple(c) for c in data.get("collectives", [])],
            checkpoints=[tuple(c) for c in data.get("checkpoints", [])],
            sinks=[SinkSite.from_dict(s) for s in data.get("sinks", [])],
            return_labels=list(data.get("return_labels", [])),
            default_labels={k: list(v) for k, v in
                            data.get("default_labels", {}).items()},
        )


# ---------------------------------------------------------------------------
# Syntactic context pass: rank guards, broad handlers, call index
# ---------------------------------------------------------------------------

def _is_broad_swallow(handler: ast.ExceptHandler) -> bool:
    """Bare/Exception/BaseException handler that never bare-re-raises."""
    typ = handler.type
    if typ is None:
        broad = True
    elif isinstance(typ, ast.Name):
        broad = typ.id in _BROAD_HANDLER_TYPES
    elif isinstance(typ, ast.Tuple):
        broad = any(isinstance(e, ast.Name) and e.id in _BROAD_HANDLER_TYPES
                    for e in typ.elts)
    else:
        broad = False
    if not broad:
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return False
    return True


class _ContextPass:
    """Walks a function body (not into nested defs — same scope-reset rule
    as RPR001) indexing every name-shaped call with its syntactic context."""

    def __init__(self):
        self.calls: list[CallSite] = []
        self.by_pos: dict[tuple[int, int], int] = {}
        self.collectives: list = []
        self.checkpoints: list = []
        self.sink_pos: dict[tuple[int, int], tuple[str, str]] = {}

    def run(self, fn) -> None:
        for stmt in fn.body:
            self._visit(stmt, None, None)

    def _visit(self, node, rank_guard, broad_handler) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            self._record(node, rank_guard, broad_handler)
        if isinstance(node, ast.If) and _mentions_rank(node.test):
            self._visit(node.test, rank_guard, broad_handler)
            for child in node.body + node.orelse:
                self._visit(child, node.lineno, broad_handler)
            return
        if isinstance(node, ast.Try):
            swallow = next((h.lineno for h in node.handlers
                            if _is_broad_swallow(h)), None)
            inner = swallow if swallow is not None else broad_handler
            for child in node.body + node.orelse:
                self._visit(child, rank_guard, inner)
            for h in node.handlers:
                for child in h.body:
                    self._visit(child, rank_guard, broad_handler)
            for child in node.finalbody:
                self._visit(child, rank_guard, broad_handler)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, rank_guard, broad_handler)

    def _record(self, call: ast.Call, rank_guard, broad_handler) -> None:
        ref = call_ref(call)
        if ref is None:
            return
        name = ref.rsplit(".", 1)[-1]
        pos = (call.lineno, call.col_offset)
        end_line = getattr(call, "end_lineno", call.lineno) or call.lineno
        if name in COLLECTIVE_NAMES:
            self.collectives.append(
                (name, call.lineno, call.col_offset, end_line,
                 rank_guard, broad_handler))
            return
        if name in CHECKPOINT_NAMES:
            self.checkpoints.append(
                (name, call.lineno, call.col_offset, end_line,
                 rank_guard, broad_handler))
            # fall through: checkpoint wrappers are also ordinary calls
        self.by_pos[pos] = len(self.calls)
        self.calls.append(CallSite(
            ref=ref, line=call.lineno, col=call.col_offset,
            end_line=end_line, rank_guard=rank_guard,
            broad_handler=broad_handler))
        if name in ACCUMULATION_NAMES:
            self.sink_pos[pos] = ("acc", name)
        elif "loss" in name or "cross_entropy" in name:
            self.sink_pos[pos] = ("loss", name)
        elif name in DRAW_NAMES:
            self.sink_pos[pos] = ("draw", name)


# ---------------------------------------------------------------------------
# Taint policy
# ---------------------------------------------------------------------------

def _dotted(node) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_fp16_expr(node) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FP16_STRINGS
    if isinstance(node, ast.Attribute) and node.attr in _FP16_ATTRS:
        return True
    if isinstance(node, ast.Name) and node.id in _FP16_ATTRS:
        return True
    return False


class _SummaryPolicy(TaintPolicy):
    def __init__(self, ctx: _ContextPass):
        self.ctx = ctx
        self.returns: set[str] = set()
        self.sinks: list[SinkSite] = []
        self._sink_seen: set[tuple[int, int]] = set()

    def call_result(self, node: ast.Call, base, args, kwargs) -> frozenset:
        out: set[str] = set()
        ref = call_ref(node)
        name = ref.rsplit(".", 1)[-1] if ref else None
        if ref is not None and ref.rsplit(".", 1)[-1] in _FP16_ATTRS:
            out.add("fp16")                     # np.float16(x) constructor
        if name in _RNG_FACTORIES and not node.args and not node.keywords:
            out.add("rng")                      # unseeded generator
        if name in _CAST_NAMES:
            out |= base
            for labels in args:
                out |= labels
            for labels in kwargs.values():
                out |= labels
        idx = self.ctx.by_pos.get((node.lineno, node.col_offset))
        if idx is not None:
            out.add(f"call:{idx}")
        return frozenset(out)

    def record_call(self, node: ast.Call, base, args, kwargs) -> None:
        pos = (node.lineno, node.col_offset)
        idx = self.ctx.by_pos.get(pos)
        if idx is not None:
            site = self.ctx.calls[idx]
            site.arg_labels = [sorted(a) for a in args]
            site.kw_labels = {k: sorted(v) for k, v in kwargs.items()}
        sink = self.ctx.sink_pos.get(pos)
        if sink is not None and pos not in self._sink_seen:
            self._sink_seen.add(pos)
            kind, name = sink
            labels: set[str] = set(base)
            if kind != "draw":
                # Data flows into an accumulation/loss through arguments
                # as well as the receiver; a draw only cares who it draws
                # *from* (the receiver).
                for a in args:
                    labels |= a
                for v in kwargs.values():
                    labels |= v
            call = self.ctx.calls[idx] if idx is not None else None
            end_line = call.end_line if call else node.lineno
            self.sinks.append(SinkSite(
                kind=kind, name=name, line=node.lineno,
                col=node.col_offset, end_line=end_line,
                labels=sorted(labels)))

    def record_return(self, node: ast.Return, labels) -> None:
        self.returns |= set(labels)


class _SummaryTaint(TaintAnalysis):
    """Adds the raw-fp16 sources on top of the generic evaluator."""

    def eval(self, node, state):
        if node is not None and _is_fp16_expr(node):
            return frozenset({"fp16"})
        return super().eval(node, state)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _param_names(fn) -> list[str]:
    a = fn.args
    names = [p.arg for p in (*a.posonlyargs, *a.args)]
    if a.vararg:
        names.append(a.vararg.arg)
    names.extend(p.arg for p in a.kwonlyargs)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


def _default_map(fn, taint: TaintAnalysis) -> dict[str, set]:
    """Concrete labels of each defaulted parameter's default expression."""
    a = fn.args
    out: dict[str, set] = {}
    positional = [*a.posonlyargs, *a.args]
    for param, default in zip(positional[len(positional) - len(a.defaults):],
                              a.defaults):
        labels = {l for l in taint.eval(default, {}) if ":" not in l}
        if labels:
            out[param.arg] = labels
    for param, default in zip(a.kwonlyargs, a.kw_defaults):
        if default is None:
            continue
        labels = {l for l in taint.eval(default, {}) if ":" not in l}
        if labels:
            out[param.arg] = labels
    return out


def summarize_function(info: FunctionInfo) -> FunctionSummary:
    fn = info.node
    ctx = _ContextPass()
    ctx.run(fn)
    policy = _SummaryPolicy(ctx)
    taint = _SummaryTaint(policy)

    params = _param_names(fn)
    # Defaults are evaluated with recording off: a call in a default is
    # outside the body's call index.
    defaults = _default_map(fn, taint)

    entry: dict[str, frozenset] = {}
    start = 1 if params and params[0] in ("self", "cls") else 0
    for i, name in enumerate(params):
        labels = {f"param:{i}"} if i >= start else set()
        labels |= defaults.get(name, set())
        entry[name] = frozenset(labels)

    cfg = build_cfg(fn)
    in_states = solve_forward(cfg, taint, entry)
    policy.recording = True
    for _stmt, _state in replay(cfg, taint, in_states):
        pass
    policy.recording = False

    return FunctionSummary(
        qname=info.qname, module=info.module, params=params,
        calls=ctx.calls,
        collectives=[tuple(c) for c in ctx.collectives],
        checkpoints=[tuple(c) for c in ctx.checkpoints],
        sinks=policy.sinks,
        return_labels=sorted(policy.returns),
        default_labels={k: sorted(v) for k, v in defaults.items()},
    )
