"""Project walker: files -> findings, with suppressions, cache, and fixes.

The :class:`Analyzer` turns paths into per-file finding lists:

* ``*.py`` files are discovered recursively (hidden directories and
  ``__pycache__`` are skipped);
* inline ``# repro-lint: disable=RPR001[,RPR002]`` comments suppress
  findings on their line, ``# repro-lint: disable-file=RPR004`` suppresses
  a rule for the whole file, and a disable that silences nothing becomes
  its own ``RPR007`` finding (with an autofix that deletes the comment);
* per-file results are cached keyed on the content hash and the rule-set
  signature, so unchanged files are never re-parsed — the cache file is
  what CI restores between runs;
* :func:`run_lint` composes the analyzer with the committed baseline and
  the ``--fix`` path, and emits telemetry counters per rule.

Comments are located with :mod:`tokenize`, not substring search, so a
disable pragma inside a string literal (e.g. in this package's own tests)
is never mistaken for a suppression.
"""
from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import Edit, Finding, apply_edits
from .rules import (FileContext, Rule, StaleSuppression, default_rules,
                    rules_signature)

__all__ = ["Analyzer", "AnalysisReport", "Suppression", "run_lint"]

_CACHE_VERSION = 2      # v2: findings carry end_line; deep-pragma semantics

#: Deep (inter-procedural) rule IDs live in the RPR1xx range.  The shallow
#: walker cannot see their findings, so pragmas mentioning them are exempt
#: from stale-suppression detection (the deep pass is what they silence).
_DEEP_ID_RE = re.compile(r"RPR1\d{2}$")

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_,\s]+?)\s*$")


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable[-file]=...`` comment."""

    line: int               # 1-based line of the comment
    col: int                # 0-based column where the comment starts
    end_col: int
    scope: str              # "line" | "file"
    rule_ids: tuple[str, ...]
    used: set = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        if finding.rule_id not in self.rule_ids and "all" not in self.rule_ids:
            return False
        if self.scope == "file":
            return True
        # A pragma anywhere on the offending expression counts, so a
        # multi-line call can carry its disable on any of its lines.
        last = max(finding.end_line, finding.line)
        return finding.line <= self.line <= last

    def removal_edit(self, source_line: str) -> Edit:
        """Delete the comment (and the spaces separating it from code)."""
        start = self.col
        while start > 0 and source_line[start - 1] in " \t":
            start -= 1
        return Edit(self.line, start, self.line, self.end_col, "")


def parse_suppressions(source: str) -> list[Suppression]:
    """Find disable pragmas via the token stream (never inside strings)."""
    out: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _DISABLE_RE.match(tok.string)
            if not m:
                continue
            ids = tuple(part.strip() for part in m.group("ids").split(",")
                        if part.strip())
            if not ids:
                continue
            scope = "file" if m.group("scope") == "disable-file" else "line"
            out.append(Suppression(
                line=tok.start[0], col=tok.start[1],
                end_col=tok.start[1] + len(tok.string),
                scope=scope, rule_ids=ids))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


@dataclass
class AnalysisReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    fixed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    pruned_entries: list[dict] = field(default_factory=list)
    deep_stats: dict | None = None      # set when run_lint(deep=True)

    @property
    def new_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.new]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def baselined_count(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def by_rule(self, new_only: bool = False) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in (self.new_findings if new_only else self.findings):
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))


class Analyzer:
    """Applies the rule pack file by file, with content-hash caching."""

    def __init__(self, rules: list[Rule] | None = None,
                 root: str | Path | None = None,
                 cache_path: str | Path | None = None):
        self.rules = list(rules) if rules is not None else default_rules()
        self.root = Path(root if root is not None else ".").resolve()
        self.cache_path = Path(cache_path) if cache_path else None
        self._signature = rules_signature(self.rules)
        self._cache = self._load_cache()
        self._stale_rule = next(
            (r for r in self.rules if isinstance(r, StaleSuppression)),
            StaleSuppression())

    # -- cache -------------------------------------------------------------

    def _load_cache(self) -> dict:
        empty = {"version": _CACHE_VERSION, "signature": self._signature,
                 "files": {}}
        if self.cache_path is None or not self.cache_path.exists():
            return empty
        try:
            doc = json.loads(self.cache_path.read_text())
        except (OSError, json.JSONDecodeError):
            return empty
        if (doc.get("version") != _CACHE_VERSION
                or doc.get("signature") != self._signature):
            return empty        # rule set changed: every entry is invalid
        doc.setdefault("files", {})
        return doc

    def save_cache(self) -> None:
        if self.cache_path is None:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        self.cache_path.write_text(json.dumps(self._cache, indent=1))

    # -- analysis ----------------------------------------------------------

    def rel_path(self, path: Path) -> str:
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def analyze_source(self, source: str, rel_path: str) -> list[Finding]:
        """Run every rule over one source blob; suppressions applied."""
        ctx = FileContext(rel_path, source)
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        suppressions = parse_suppressions(source)
        for f in findings:
            for sup in suppressions:
                if sup.matches(f):
                    f.suppressed = True
                    sup.used.add(f.rule_id)
        # Stale-disable detection: a pragma none of whose IDs silenced
        # anything is itself a finding (with a comment-removal autofix).
        for sup in suppressions:
            if sup.used or "all" in sup.rule_ids:
                continue
            if self._stale_rule.id in sup.rule_ids:
                continue        # suppressing RPR007 itself: honor it
            if any(_DEEP_ID_RE.match(rid) for rid in sup.rule_ids):
                continue        # deep-rule pragma: only --deep can use it
            line_text = ctx.line_text(sup.line)
            stale = Finding(
                rule_id=self._stale_rule.id,
                severity=self._stale_rule.severity,
                path=rel_path, line=sup.line, col=sup.col,
                message=(f"suppression "
                         f"'{', '.join(sup.rule_ids)}' matches no finding "
                         f"on this {'file' if sup.scope == 'file' else 'line'};"
                         f" remove the stale comment"),
                line_text=line_text,
                edits=(sup.removal_edit(ctx.lines[sup.line - 1]),))
            findings.append(stale)
        findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return findings

    def analyze_file(self, path: Path) -> tuple[list[Finding], bool]:
        """Findings for one file; returns ``(findings, from_cache)``."""
        rel = self.rel_path(path)
        source = Path(path).read_text()
        digest = hashlib.sha256(source.encode()).hexdigest()
        entry = self._cache["files"].get(rel)
        if entry is not None and entry.get("sha256") == digest:
            return [Finding.from_dict(d) for d in entry["findings"]], True
        findings = self.analyze_source(source, rel)
        self._cache["files"][rel] = {
            "sha256": digest,
            "findings": [f.as_dict() for f in findings],
        }
        return findings, False

    def discover(self, paths: list[str | Path]) -> list[Path]:
        files: list[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                files.extend(
                    f for f in sorted(p.rglob("*.py"))
                    if not any(part.startswith(".") or part == "__pycache__"
                               for part in f.parts))
            elif p.suffix == ".py":
                files.append(p)
        seen: set[Path] = set()
        unique = []
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                unique.append(f)
        return unique

    def run(self, paths: list[str | Path]) -> AnalysisReport:
        report = AnalysisReport()
        for path in self.discover(paths):
            try:
                findings, cached = self.analyze_file(path)
            except SyntaxError as exc:
                report.parse_errors.append(f"{self.rel_path(path)}: {exc}")
                continue
            report.files += 1
            report.cache_hits += int(cached)
            report.findings.extend(findings)
        self.save_cache()
        return report


def _apply_fixes(analyzer: Analyzer, report: AnalysisReport,
                 paths: list[str | Path]) -> AnalysisReport:
    """Apply every autofix, rewrite the files, then re-analyze."""
    by_path: dict[str, list[Edit]] = {}
    fixable = 0
    for f in report.findings:
        if f.edits and not f.suppressed:
            by_path.setdefault(f.path, []).extend(f.edits)
            fixable += 1
    if not by_path:
        return report
    for rel, edits in by_path.items():
        abs_path = analyzer.root / rel
        source = abs_path.read_text()
        fixed_source, _ = apply_edits(source, edits)
        if fixed_source != source:
            abs_path.write_text(fixed_source)
    fresh = analyzer.run(paths)
    fresh.fixed = fixable
    return fresh


def _emit_telemetry(report: AnalysisReport) -> None:
    try:
        from ..telemetry import get_active
    except ImportError:         # numpy-less environment: analyzer still works
        return
    metrics = get_active().metrics
    metrics.counter("analysis.files_scanned").inc(report.files)
    metrics.counter("analysis.cache_hits").inc(report.cache_hits)
    if report.fixed:
        metrics.counter("analysis.fixed").inc(report.fixed)
    for rule_id, count in report.by_rule().items():
        metrics.counter("analysis.findings", rule=rule_id).inc(count)
    for rule_id, count in report.by_rule(new_only=True).items():
        metrics.counter("analysis.new_findings", rule=rule_id).inc(count)


def _run_deep(analyzer: Analyzer, report: AnalysisReport,
              paths: list[str | Path],
              deep_cache: str | Path | None) -> None:
    """Run the whole-program pass and fold its findings into ``report``.

    Deep findings honor the same inline pragmas as shallow ones (a
    ``# repro-lint: disable=RPR101`` anywhere on the offending call), and
    flow through baseline matching with the rest of the report.
    """
    from .project import ProjectAnalyzer      # deferred: heavier import

    project = ProjectAnalyzer(root=analyzer.root, cache_path=deep_cache)
    deep = project.run(analyzer.discover(paths))
    by_path: dict[str, list[Finding]] = {}
    for f in deep.findings:
        by_path.setdefault(f.path, []).append(f)
    for rel, findings in by_path.items():
        try:
            source = (analyzer.root / rel).read_text()
        except OSError:
            continue
        for sup in parse_suppressions(source):
            for f in findings:
                if sup.matches(f):
                    f.suppressed = True
                    sup.used.add(f.rule_id)
    report.findings.extend(deep.findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.parse_errors.extend(
        e for e in deep.parse_errors if e not in report.parse_errors)
    report.deep_stats = deep.stats()


def run_lint(paths: list[str | Path],
             root: str | Path | None = None,
             baseline_path: str | Path | None = None,
             update_baseline: bool = False,
             prune_baseline: bool = False,
             fix: bool = False,
             cache_path: str | Path | None = None,
             rules: list[Rule] | None = None,
             deep: bool = False,
             deep_cache: str | Path | None = None) -> AnalysisReport:
    """One full lint run: analyze, (fix,) baseline-match, telemetry.

    Returns an :class:`AnalysisReport` whose ``exit_code`` is 0 iff every
    finding is suppressed or baselined (always 0 after
    ``update_baseline``, which rewrites the baseline to match).
    ``prune_baseline`` is the shrink-only counterpart: entries that no
    longer match any current finding are dropped (and reported in
    ``pruned_entries``) so the accepted-debt file tracks fixes without
    ever accepting new findings.  ``deep=True`` additionally runs the
    whole-program pass (RPR101–RPR104, see :mod:`repro.analysis.project`)
    with its own summary cache at ``deep_cache``.
    """
    analyzer = Analyzer(rules=rules, root=root, cache_path=cache_path)
    report = analyzer.run(paths)
    if fix:
        report = _apply_fixes(analyzer, report, paths)
    if deep:
        _run_deep(analyzer, report, paths, deep_cache)
    if baseline_path is not None:
        baseline_path = Path(baseline_path)
        if update_baseline:
            Baseline.from_findings(
                [f for f in report.findings if not f.suppressed]
            ).save(baseline_path)
        baseline = Baseline.load(baseline_path)
        if prune_baseline and not update_baseline:
            baseline, removed = baseline.prune(report.findings)
            report.pruned_entries = removed
            if removed:
                baseline.save(baseline_path)
        baseline.apply(report.findings)
    _emit_telemetry(report)
    return report
