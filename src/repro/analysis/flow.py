"""Per-function control-flow graphs and a small dataflow framework.

The deep analyzer (:mod:`repro.analysis.project`) needs to reason about
*values* inside a function — "does the fp16 cast on line 12 reach the
accumulation on line 40?", "is the object this RNG draw runs on seeded?" —
which is a dataflow question, not an AST-shape question.  This module
provides the substrate:

* :func:`build_cfg` — statement-level basic blocks for one function body,
  with edges for ``if``/``while``/``for``/``try``/``break``/``continue``/
  ``return``.  Branch statements appear as the *last* entry of their block
  so transfer functions can evaluate the test expression exactly once.
* :func:`solve_forward` — the classic worklist fixpoint for a forward
  may-analysis whose states are ``{var: frozenset[fact]}`` environments
  joined by per-variable union (a powerset lattice per variable, so the
  fixpoint terminates as long as the fact universe is finite).
* :class:`ReachingDefinitions` — textbook reaching-defs instance (facts
  are ``line`` numbers of assignments), used by tests and available to
  future rules.
* :class:`TaintAnalysis` — an abstract interpreter over expressions where
  facts are taint *labels* (strings).  What constitutes a source and what
  a call evaluates to is delegated to a :class:`TaintPolicy`, so the same
  engine serves fp16-flow and RNG-seeding questions; symbolic labels like
  ``param:0`` / ``call:3`` let :mod:`repro.analysis.summaries` defer
  inter-procedural resolution to the whole-program fixpoint.

Everything here is intentionally conservative in the *under*-approximate
direction: an unknown call produces only its own symbolic label, attribute
stores are not tracked, comparisons yield no taint.  Deep rules therefore
stay quiet rather than noisy when the code is too dynamic to follow.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "BasicBlock",
    "CFG",
    "build_cfg",
    "solve_forward",
    "replay",
    "ReachingDefinitions",
    "TaintPolicy",
    "TaintAnalysis",
]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

@dataclass
class BasicBlock:
    """A run of statements with a single entry; ``succs`` are block ids.

    For ``if``/``while``/``for``/``with`` the controlling statement is the
    last element of ``stmts``; its *body* lives in successor blocks.
    """

    bid: int
    stmts: list = field(default_factory=list)
    succs: list = field(default_factory=list)

    def add_succ(self, bid: int) -> None:
        if bid not in self.succs:
            self.succs.append(bid)


class CFG:
    """Blocks of one function; ``entry`` and a synthetic empty ``exit``."""

    def __init__(self):
        self.blocks: dict[int, BasicBlock] = {}
        self.entry = self._new().bid
        self.exit = self._new().bid

    def _new(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.bid] = block
        return block

    def preds(self, bid: int) -> list[int]:
        return [b.bid for b in self.blocks.values() if bid in b.succs]

    def reachable(self) -> set[int]:
        seen, stack = set(), [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succs)
        return seen


#: Statements that terminate their block unconditionally.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: Compound statements that open sub-blocks.
_BRANCHING = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try,
              ast.With, ast.AsyncWith, ast.Match)


class _Builder:
    def __init__(self):
        self.cfg = CFG()
        self.loops: list[tuple[int, int]] = []      # (header, after) stack

    def build(self, body: list) -> CFG:
        end = self._stmts(body, self.cfg.entry)
        if end is not None:
            self.cfg.blocks[end].add_succ(self.cfg.exit)
        return self.cfg

    def _block(self) -> int:
        return self.cfg._new().bid

    def _stmts(self, body: list, current: int | None) -> int | None:
        """Wire ``body`` starting at block ``current``; returns the open
        block falling out the bottom (None if all paths left)."""
        for stmt in body:
            if current is None:
                # Dead code after return/raise/break: still parse structure
                # (nested defs etc. are summarized separately) but keep it
                # disconnected so states never flow through it.
                current = self._block()
            if isinstance(stmt, ast.If):
                current = self._if(stmt, current)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current = self._loop(stmt, current)
            elif isinstance(stmt, ast.Try):
                current = self._try(stmt, current)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.cfg.blocks[current].stmts.append(stmt)
                body_block = self._block()
                self.cfg.blocks[current].add_succ(body_block)
                current = self._stmts(stmt.body, body_block)
            elif isinstance(stmt, ast.Match):
                current = self._match(stmt, current)
            else:
                self.cfg.blocks[current].stmts.append(stmt)
                if isinstance(stmt, _TERMINATORS):
                    blk = self.cfg.blocks[current]
                    if isinstance(stmt, ast.Return):
                        blk.add_succ(self.cfg.exit)
                    elif isinstance(stmt, ast.Break) and self.loops:
                        blk.add_succ(self.loops[-1][1])
                    elif isinstance(stmt, ast.Continue) and self.loops:
                        blk.add_succ(self.loops[-1][0])
                    # Raise: no intra-function successor (handlers are
                    # approximated in _try below).
                    current = None
        return current

    def _if(self, stmt: ast.If, current: int) -> int | None:
        self.cfg.blocks[current].stmts.append(stmt)     # test eval point
        then_b, else_b = self._block(), self._block()
        self.cfg.blocks[current].add_succ(then_b)
        self.cfg.blocks[current].add_succ(else_b)
        then_end = self._stmts(stmt.body, then_b)
        else_end = self._stmts(stmt.orelse, else_b)
        if then_end is None and else_end is None:
            return None
        join = self._block()
        for end in (then_end, else_end):
            if end is not None:
                self.cfg.blocks[end].add_succ(join)
        return join

    def _loop(self, stmt, current: int) -> int:
        header = self._block()
        self.cfg.blocks[current].add_succ(header)
        self.cfg.blocks[header].stmts.append(stmt)      # test / iter point
        body_b, after = self._block(), self._block()
        self.cfg.blocks[header].add_succ(body_b)
        self.cfg.blocks[header].add_succ(after)          # zero-trip / exit
        self.loops.append((header, after))
        body_end = self._stmts(stmt.body, body_b)
        self.loops.pop()
        if body_end is not None:
            self.cfg.blocks[body_end].add_succ(header)   # back edge
        if stmt.orelse:
            # ``else`` runs on normal exit; approximation: between the
            # header exit and ``after``.
            else_b = self._block()
            self.cfg.blocks[header].add_succ(else_b)
            else_end = self._stmts(stmt.orelse, else_b)
            if else_end is not None:
                self.cfg.blocks[else_end].add_succ(after)
        return after

    def _try(self, stmt: ast.Try, current: int) -> int | None:
        body_b = self._block()
        self.cfg.blocks[current].add_succ(body_b)
        body_start = body_b
        body_end = self._stmts(stmt.body, body_b)
        if stmt.orelse and body_end is not None:
            body_end = self._stmts(stmt.orelse, body_end)
        join = self._block()
        if body_end is not None:
            self.cfg.blocks[body_end].add_succ(join)
        # Exceptions may leave the body at any point: edge from every block
        # the body created to every handler (coarse but sound for a
        # may-analysis).
        body_blocks = [b for b in range(body_start, join)
                       if b in self.cfg.blocks]
        for handler in stmt.handlers:
            h_b = self._block()
            for b in body_blocks:
                self.cfg.blocks[b].add_succ(h_b)
            h_end = self._stmts(handler.body, h_b)
            if h_end is not None:
                self.cfg.blocks[h_end].add_succ(join)
        if stmt.finalbody:
            fin_b = self._block()
            self.cfg.blocks[join].add_succ(fin_b)
            return self._stmts(stmt.finalbody, fin_b)
        return join

    def _match(self, stmt: ast.Match, current: int) -> int | None:
        self.cfg.blocks[current].stmts.append(stmt)
        join = self._block()
        any_open = False
        for case in stmt.cases:
            c_b = self._block()
            self.cfg.blocks[current].add_succ(c_b)
            c_end = self._stmts(case.body, c_b)
            if c_end is not None:
                self.cfg.blocks[c_end].add_succ(join)
                any_open = True
        self.cfg.blocks[current].add_succ(join)          # no case matched
        return join if True else (join if any_open else None)


def build_cfg(fn) -> CFG:
    """CFG for an ``ast.FunctionDef`` / ``AsyncFunctionDef`` body."""
    return _Builder().build(fn.body)


# ---------------------------------------------------------------------------
# Worklist solver
# ---------------------------------------------------------------------------

def _join(states: list[dict]) -> dict:
    out: dict[str, frozenset] = {}
    for state in states:
        for var, facts in state.items():
            out[var] = out.get(var, frozenset()) | facts
    return out


def solve_forward(cfg: CFG, analysis, entry_state: dict | None = None,
                  max_passes: int = 64) -> dict[int, dict]:
    """Forward may-analysis fixpoint; returns the in-state of every block.

    ``analysis.transfer_stmt(stmt, state) -> state`` must be monotone in
    the per-variable union lattice; ``entry_state`` seeds the entry block
    (parameter taints, for instance).
    """
    in_states: dict[int, dict] = {cfg.entry: dict(entry_state or {})}
    worklist = [cfg.entry]
    passes = 0
    while worklist and passes < max_passes * max(len(cfg.blocks), 1):
        passes += 1
        bid = worklist.pop(0)
        state = dict(in_states.get(bid, {}))
        for stmt in cfg.blocks[bid].stmts:
            state = analysis.transfer_stmt(stmt, state)
        for succ in cfg.blocks[bid].succs:
            merged = _join([in_states.get(succ, {}), state])
            if merged != in_states.get(succ):
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    return in_states


def replay(cfg: CFG, analysis, in_states: dict[int, dict]):
    """Re-run every reachable block once from its fixpoint in-state.

    Yields ``(stmt, state_before)`` pairs; used by policies that record
    facts (call-argument labels, sink labels) once states have converged.
    """
    for bid in sorted(cfg.reachable()):
        state = dict(in_states.get(bid, {}))
        for stmt in cfg.blocks[bid].stmts:
            yield stmt, state
            state = analysis.transfer_stmt(stmt, state)


# ---------------------------------------------------------------------------
# Assignment-target helpers (shared by both analyses)
# ---------------------------------------------------------------------------

def _bind(target, facts: frozenset, state: dict) -> None:
    if isinstance(target, ast.Name):
        state[target.id] = facts
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind(elt, facts, state)
    elif isinstance(target, ast.Starred):
        _bind(target.value, facts, state)
    # Attribute/Subscript stores are not tracked (see module docstring).


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

class ReachingDefinitions:
    """Facts are definition line numbers; ``state[var]`` = lines whose
    assignment to ``var`` may reach this point."""

    def transfer_stmt(self, stmt, state: dict) -> dict:
        state = dict(state)
        fact = frozenset({getattr(stmt, "lineno", 0)})
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                _bind(t, fact, state)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                return state
            _bind(stmt.target, fact, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _bind(stmt.target, fact, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    _bind(item.optional_vars, fact, state)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    state.pop(t.id, None)
        return state

    def definitions_at(self, in_states: dict[int, dict], var: str) -> set:
        out = set()
        for state in in_states.values():
            out |= state.get(var, frozenset())
        return out


# ---------------------------------------------------------------------------
# Taint analysis
# ---------------------------------------------------------------------------

class TaintPolicy:
    """Hooks the taint interpreter consults; override per client.

    ``call_result`` decides what a call expression evaluates to (its taint
    labels); ``record_call`` / ``record_return`` / ``record_sink`` fire
    only during :func:`replay` (``recording`` is flipped by the caller).
    """

    recording = False

    def call_result(self, node: ast.Call, base_labels: frozenset,
                    arg_labels: list, kw_labels: dict) -> frozenset:
        return frozenset()

    def record_call(self, node: ast.Call, base_labels: frozenset,
                    arg_labels: list, kw_labels: dict) -> None:
        pass

    def record_return(self, node: ast.Return, labels: frozenset) -> None:
        pass


class TaintAnalysis:
    """Label-propagation over expressions; sources/calls via ``policy``."""

    def __init__(self, policy: TaintPolicy):
        self.policy = policy

    # -- expressions ---------------------------------------------------------

    def eval(self, node, state: dict) -> frozenset:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return state.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            base = frozenset()
            func = node.func
            if isinstance(func, ast.Attribute):
                base = self.eval(func.value, state)
            args = [self.eval(a, state) for a in node.args]
            kwargs = {kw.arg: self.eval(kw.value, state)
                      for kw in node.keywords if kw.arg is not None}
            if self.policy.recording:
                self.policy.record_call(node, base, args, kwargs)
            return self.policy.call_result(node, base, args, kwargs)
        if isinstance(node, ast.Attribute):
            return self.eval(node.value, state)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, state)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, state) | self.eval(node.right, state)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, state)
        if isinstance(node, ast.BoolOp):
            out = frozenset()
            for v in node.values:
                out |= self.eval(v, state)
            return out
        if isinstance(node, ast.Compare):
            # A comparison yields a bool: dtype checks like
            # ``x.dtype == np.float16`` must not taint.
            for comp in [node.left, *node.comparators]:
                self.eval(comp, state)      # still visit for call recording
            return frozenset()
        if isinstance(node, ast.IfExp):
            self.eval(node.test, state)
            return self.eval(node.body, state) | self.eval(node.orelse, state)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in node.elts:
                out |= self.eval(elt, state)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for v in node.values:
                if v is not None:
                    out |= self.eval(v, state)
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value, state)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = frozenset()
            for gen in node.generators:
                out |= self.eval(gen.iter, state)
            return out | self.eval(node.elt, state)
        if isinstance(node, ast.DictComp):
            out = frozenset()
            for gen in node.generators:
                out |= self.eval(gen.iter, state)
            return out | self.eval(node.value, state)
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value, state)
            _bind(node.target, labels, state)
            return labels
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, state)
        if isinstance(node, ast.Yield):
            return self.eval(node.value, state) if node.value else frozenset()
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, state)
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                self.eval(v, state)
            return frozenset()
        return frozenset()      # Constant, Lambda, ...

    # -- statements ----------------------------------------------------------

    def transfer_stmt(self, stmt, state: dict) -> dict:
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            labels = self.eval(stmt.value, state)
            for t in stmt.targets:
                _bind(t, labels, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                _bind(stmt.target, self.eval(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.eval(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                labels |= state.get(stmt.target.id, frozenset())
            _bind(stmt.target, labels, state)
        elif isinstance(stmt, ast.Return):
            labels = self.eval(stmt.value, state)
            if self.policy.recording:
                self.policy.record_return(stmt, labels)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _bind(stmt.target, self.eval(stmt.iter, state), state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr, state)
                if item.optional_vars is not None:
                    _bind(item.optional_vars, labels, state)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, state)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.eval(sub, state)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    state.pop(t.id, None)
        return state
