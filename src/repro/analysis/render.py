"""Rendering: findings as a terminal report or a machine-readable document.

Text output is one ``path:line:col: RPRxxx [severity] message`` line per
*new* finding (the ones that gate CI) plus a summary; JSON carries every
finding with its suppression/baseline flags so downstream tooling — the
CI gate, ``examples/lint_report.py`` — never has to re-parse text.
"""
from __future__ import annotations

import json

from .walker import AnalysisReport

__all__ = ["render_text", "render_json", "json_document"]


def render_text(report: AnalysisReport, show_all: bool = False) -> str:
    lines = []
    for f in report.findings:
        if not (show_all or f.new):
            continue
        tag = ""
        if f.baselined:
            tag = " (baselined)"
        elif f.suppressed:
            tag = " (suppressed)"
        lines.append(f"{f.location()}: {f.rule_id} [{f.severity}] "
                     f"{f.message}{tag}")
    for err in report.parse_errors:
        lines.append(f"parse error: {err}")
    new = report.new_findings
    by_rule = report.by_rule(new_only=True)
    rule_part = (" (" + ", ".join(f"{k}: {v}" for k, v in by_rule.items())
                 + ")") if by_rule else ""
    summary = (f"{len(report.findings)} finding"
               f"{'s' if len(report.findings) != 1 else ''} in "
               f"{report.files} files: {len(new)} new{rule_part}, "
               f"{report.baselined_count} baselined, "
               f"{report.suppressed_count} suppressed")
    if report.cache_hits:
        summary += f" [{report.cache_hits} cached]"
    if report.fixed:
        summary += f" [{report.fixed} fixed]"
    if report.deep_stats is not None:
        summary += (f" [deep: {report.deep_stats['functions']} functions, "
                    f"{report.deep_stats['reanalyzed']} re-analyzed]")
    lines.append(summary)
    return "\n".join(lines)


def json_document(report: AnalysisReport) -> dict:
    return {
        "findings": [f.as_dict() for f in report.findings],
        "summary": {
            "files": report.files,
            "findings": len(report.findings),
            "new": len(report.new_findings),
            "baselined": report.baselined_count,
            "suppressed": report.suppressed_count,
            "cache_hits": report.cache_hits,
            "fixed": report.fixed,
            "by_rule": report.by_rule(),
            "new_by_rule": report.by_rule(new_only=True),
        },
        "parse_errors": report.parse_errors,
        "exit_code": report.exit_code,
        **({"deep": report.deep_stats}
           if report.deep_stats is not None else {}),
    }


def render_json(report: AnalysisReport, indent: int = 2) -> str:
    return json.dumps(json_document(report), indent=indent)
