"""The committed findings baseline: legacy debt doesn't gate CI, new does.

``.repro-lint-baseline.json`` records every finding the team has accepted
(typically pre-existing debt at the moment a rule landed).  Matching is
*content*-based, not line-number-based: an entry is
``(rule, path, stripped source line)``, kept as a multiset, so findings
survive unrelated edits that shift line numbers but stop matching the
moment the offending line itself changes — exactly when a human should
look again.

``repro lint --update-baseline`` rewrites the file from the current
findings; the diff of the baseline in review *is* the list of newly
accepted debt.
"""
from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_VERSION = 1


def _key(rule_id: str, path: str, text: str) -> tuple[str, str, str]:
    return (rule_id, path, text.strip())


class Baseline:
    """A multiset of accepted findings keyed on (rule, path, line text)."""

    def __init__(self, entries: list[dict] | None = None):
        self.entries = list(entries or [])
        self._counts = Counter(
            _key(e["rule"], e["path"], e.get("text", ""))
            for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return self._counts[_key(finding.rule_id, finding.path,
                                 finding.line_text)] > 0

    # -- io ----------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        doc = json.loads(path.read_text())
        if doc.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {doc.get('version')!r} "
                f"in {path}")
        return cls(doc.get("entries", []))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        doc = {
            "version": _VERSION,
            "comment": ("Accepted repro-lint findings. Regenerate with "
                        "`repro lint --update-baseline`; matching is by "
                        "(rule, path, line text), so line numbers are "
                        "informational only."),
            "entries": self.entries,
        }
        path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
        return path

    # -- construction / matching -------------------------------------------

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = [
            {"rule": f.rule_id, "path": f.path, "line": f.line,
             "text": f.line_text}
            for f in sorted(findings,
                            key=lambda f: (f.path, f.line, f.rule_id))
        ]
        return cls(entries)

    def prune(self, findings: list[Finding]
              ) -> tuple["Baseline", list[dict]]:
        """Drop entries that no current finding matches.

        Multiset-aware: with two accepted copies of the same (rule, path,
        text) and one surviving finding, exactly one entry is kept.
        Returns ``(pruned_baseline, removed_entries)``; never adds
        entries, so pruning can only shrink the accepted-debt set.
        """
        budget = Counter(
            _key(f.rule_id, f.path, f.line_text)
            for f in findings if not f.suppressed)
        kept: list[dict] = []
        removed: list[dict] = []
        for entry in self.entries:
            k = _key(entry["rule"], entry["path"], entry.get("text", ""))
            if budget[k] > 0:
                budget[k] -= 1
                kept.append(entry)
            else:
                removed.append(entry)
        return Baseline(kept), removed

    def apply(self, findings: list[Finding]) -> int:
        """Mark baselined findings in place (consuming multiset entries);
        returns how many matched."""
        budget = Counter(self._counts)
        matched = 0
        for f in findings:
            if f.suppressed:
                continue
            k = _key(f.rule_id, f.path, f.line_text)
            if budget[k] > 0:
                budget[k] -= 1
                f.baselined = True
                matched += 1
        return matched
