"""Inter-procedural rule pack RPR101–RPR104.

Consumes the per-function :class:`~repro.analysis.summaries.FunctionSummary`
records plus the :class:`~repro.analysis.callgraph.SymbolTable` and runs the
whole-program phase:

1. resolve every recorded call ref to a project qname (or None);
2. fixpoint *reachability*: which functions transitively reach a collective
   or checkpoint call (with a witness chain for messages);
3. fixpoint *taint resolution*: rewrite symbolic ``call:k`` / ``param:i``
   labels into concrete ``fp16`` / ``rng`` facts, function by function;
4. fixpoint *sink parameters*: which parameters of which functions flow
   into an accumulation/loss (fp16) or RNG-draw (rng) sink, so a caller
   passing tainted data is flagged at the call site.

The rules then read those tables:

RPR101  rank-guarded call whose callee transitively reaches a collective
        (the direct case is RPR001's; this closes the call-chain hole).
RPR102  raw fp16 values flowing into accumulation/loss sites outside the
        sanctioned precision modules.
RPR103  unseeded RNG taint reaching a draw, through returns/defaults/args.
RPR104  broad exception handler swallowing errors on the path of a
        collective or checkpoint call.

All four stay deliberately quiet on anything unresolvable — see the
module docstrings of :mod:`repro.analysis.flow` and
:mod:`repro.analysis.callgraph` for the under-approximation stance.
"""
from __future__ import annotations

from .callgraph import SymbolTable, split_qname
from .findings import Finding
from .summaries import FunctionSummary

__all__ = [
    "DeepRule",
    "DEEP_RULES",
    "deep_rules",
    "deep_rules_signature",
    "run_deep_rules",
]

#: Module whose functions count as checkpoint entry points when a call
#: resolves into it (in addition to the name-based CHECKPOINT_NAMES).
_CHECKPOINT_MODULE = "repro.core.checkpoint"

#: Modules where raw-fp16 flow into accumulations is sanctioned (the
#: precision machinery itself) or meaningless (the analyzer's own tests).
_FP16_EXEMPT_PREFIXES = (
    "repro.framework.precision", "repro.framework.dtypes",
    "repro.analysis", "tests.framework", "tests.analysis",
)

_RNG_EXEMPT_PREFIXES = ("repro.analysis", "tests.analysis")

_MAX_ROUNDS = 50
_CHAIN_LIMIT = 5


class DeepRule:
    """Catalog entry for an inter-procedural rule (reporting metadata only;
    the logic lives in :func:`run_deep_rules`)."""

    id = "RPR1xx"
    name = ""
    severity = "error"
    version = 1
    autofix = False
    description = ""


class CollectiveBehindRankBranch(DeepRule):
    id = "RPR101"
    name = "collective-behind-rank-branch"
    severity = "error"
    description = ("A call made under a rank-conditional branch resolves to "
                   "a function that (transitively) performs a collective: "
                   "ranks on the other path never enter it and the job "
                   "deadlocks. RPR001 catches the direct case; this closes "
                   "the call-chain hole.")


class Fp16IntoAccumulation(DeepRule):
    id = "RPR102"
    name = "fp16-into-accumulation"
    severity = "warning"
    description = ("A raw float16 value flows (possibly through calls and "
                   "returns) into an accumulation or loss computation "
                   "outside framework.precision. Accumulate in fp32 "
                   "(dtypes.compute_dtype) or route through the loss "
                   "scaler.")


class UnseededRngFlow(DeepRule):
    id = "RPR103"
    name = "unseeded-rng-flow"
    severity = "warning"
    description = ("An unseeded RNG (default_rng()/Random()/RandomState() "
                   "with no seed), possibly obtained through a return value "
                   "or default argument, is drawn from: runs are not "
                   "reproducible. Thread a seeded generator instead.")


class SwallowedErrorOnCollectivePath(DeepRule):
    id = "RPR104"
    name = "swallowed-error-on-collective-path"
    severity = "error"
    description = ("A broad exception handler swallows errors around a call "
                   "that (transitively) performs a collective or checkpoint: "
                   "one rank eats the failure, its peers block in the "
                   "collective forever or the checkpoint silently rots. "
                   "Catch concrete exceptions or re-raise.")


DEEP_RULES = (CollectiveBehindRankBranch, Fp16IntoAccumulation,
              UnseededRngFlow, SwallowedErrorOnCollectivePath)


def deep_rules() -> list[DeepRule]:
    return [cls() for cls in DEEP_RULES]


def deep_rules_signature() -> str:
    """Stable signature of the deep rule pack (cache invalidation key)."""
    return ";".join(f"{r.id}:{r.name}:{r.version}" for r in deep_rules())


def _short(qname_str: str) -> str:
    module, dotted = split_qname(qname_str)
    leaf = module.rsplit(".", 1)[-1]
    return f"{leaf}.{dotted}"


class _Program:
    """Resolved tables shared by all four rules."""

    def __init__(self, summaries: dict, symtab: SymbolTable):
        self.summaries = summaries
        self.symtab = symtab
        # call target resolution: qname -> [callee qname | None per CallSite]
        self.targets: dict[str, list] = {}
        for q, summ in summaries.items():
            module, dotted = split_qname(q)
            cls = dotted.rsplit(".", 1)[0] if "." in dotted else None
            resolved = [symtab.resolve(site.ref, module, cls)
                        for site in summ.calls]
            self.targets[q] = [c if c in summaries else None
                               for c in resolved]
        self.reach_coll: dict[str, tuple] = {}
        self.reach_ckpt: dict[str, tuple] = {}
        self._reachability()
        self.resolved_labels: dict[str, dict] = {}
        self._resolve_taint()
        self.sink_params: dict[str, set] = {}
        self._sink_params()

    # -- checkpoint classification -------------------------------------------

    def _is_checkpoint_call(self, caller: str, k: int) -> bool:
        callee = self.targets[caller][k]
        if callee is None:
            return False
        module, _ = split_qname(callee)
        return module == _CHECKPOINT_MODULE

    # -- reachability --------------------------------------------------------

    def _reachability(self) -> None:
        """Fill ``reach_coll``/``reach_ckpt``: qname -> witness, where a
        witness is ("direct", name, line) or ("call", k, callee)."""
        for q, summ in self.summaries.items():
            if summ.collectives:
                name, line = summ.collectives[0][0], summ.collectives[0][1]
                self.reach_coll[q] = ("direct", name, line)
            if summ.checkpoints:
                name, line = summ.checkpoints[0][0], summ.checkpoints[0][1]
                self.reach_ckpt[q] = ("direct", name, line)
            else:
                for k in range(len(summ.calls)):
                    if self._is_checkpoint_call(q, k):
                        self.reach_ckpt[q] = (
                            "direct", summ.calls[k].ref, summ.calls[k].line)
                        break
        for table in (self.reach_coll, self.reach_ckpt):
            for _ in range(_MAX_ROUNDS):
                changed = False
                for q, summ in self.summaries.items():
                    if q in table:
                        continue
                    for k, callee in enumerate(self.targets[q]):
                        if callee is not None and callee in table:
                            table[q] = ("call", k, callee)
                            changed = True
                            break
                if not changed:
                    break

    def chain(self, table: dict, start: str) -> str:
        """Human-readable witness chain from ``start`` to the terminal."""
        parts, q = [], start
        for _ in range(_CHAIN_LIMIT):
            witness = table.get(q)
            if witness is None:
                break
            if witness[0] == "direct":
                parts.append(f"{_short(q)} -> {witness[1]}()")
                return " -> ".join(parts)
            _, _k, callee = witness
            parts.append(_short(q))
            q = callee
        parts.append("...")
        return " -> ".join(parts)

    # -- taint label resolution ----------------------------------------------

    def _param_offset(self, qname_str: str) -> int:
        params = self.summaries[qname_str].params
        return 1 if params and params[0] in ("self", "cls") else 0

    def _arg_labels(self, caller: str, k: int, callee: str,
                    param_index: int) -> set:
        """Caller-side labels feeding ``callee``'s ``param:<param_index>``
        at call ``k`` (positional + keyword, best effort)."""
        site = self.summaries[caller].calls[k]
        callee_summ = self.summaries[callee]
        offset = self._param_offset(callee)
        pos = param_index - offset
        out: set = set()
        if 0 <= pos < len(site.arg_labels):
            out |= set(site.arg_labels[pos])
        if 0 <= param_index < len(callee_summ.params):
            pname = callee_summ.params[param_index]
            out |= set(site.kw_labels.get(pname, ()))
        return out

    def _resolve_in(self, caller: str, labels, ret: dict,
                    memo: dict, guard: set) -> set:
        """Concrete+param facts for ``labels`` seen inside ``caller``."""
        out: set = set()
        for label in labels:
            if label.startswith("call:"):
                key = (caller, label)
                if key in memo:
                    out |= memo[key]
                    continue
                if key in guard:      # cycle (e.g. x = f(x) in a loop)
                    continue
                guard.add(key)
                k = int(label.split(":", 1)[1])
                callee = self.targets[caller][k]
                facts: set = set()
                if callee is not None:
                    for m in ret.get(callee, set()):
                        if m.startswith("param:"):
                            j = int(m.split(":", 1)[1])
                            facts |= self._resolve_in(
                                caller, self._arg_labels(caller, k, callee, j),
                                ret, memo, guard)
                        else:
                            facts.add(m)
                guard.discard(key)
                memo[key] = facts
                out |= facts
            else:
                out.add(label)
        return out

    def _resolve_taint(self) -> None:
        """Fixpoint for return-label resolution, then materialize resolved
        labels for every call argument and sink."""
        ret: dict[str, set] = {q: set() for q in self.summaries}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for q, summ in self.summaries.items():
                resolved = self._resolve_in(q, summ.return_labels, ret,
                                            {}, set())
                # Keep only concrete facts and this function's own params.
                resolved = {m for m in resolved
                            if not m.startswith("call:")}
                if resolved != ret[q]:
                    ret[q] = resolved
                    changed = True
            if not changed:
                break
        self.ret = ret
        for q, summ in self.summaries.items():
            memo: dict = {}
            per_fn = {"sinks": [], "calls": []}
            for sink in summ.sinks:
                per_fn["sinks"].append(
                    self._resolve_in(q, sink.labels, ret, memo, set()))
            for k, site in enumerate(summ.calls):
                per_fn["calls"].append(
                    [self._resolve_in(q, labels, ret, memo, set())
                     for labels in site.arg_labels])
            self.resolved_labels[q] = per_fn

    # -- sink parameters -----------------------------------------------------

    def _sink_params(self) -> None:
        """(kind, param index) pairs per function whose parameter feeds a
        sink of that kind, transitively."""
        kinds = {"acc": "fp16", "loss": "fp16", "draw": "rng"}
        table: dict[str, set] = {q: set() for q in self.summaries}
        for q, summ in self.summaries.items():
            for sink, resolved in zip(summ.sinks,
                                      self.resolved_labels[q]["sinks"]):
                concrete_kind = kinds[sink.kind]
                for m in resolved:
                    if m.startswith("param:"):
                        table[q].add((concrete_kind, int(m.split(":", 1)[1])))
        for _ in range(_MAX_ROUNDS):
            changed = False
            for q, summ in self.summaries.items():
                for k, callee in enumerate(self.targets[q]):
                    if callee is None or not table.get(callee):
                        continue
                    for kind, j in table[callee]:
                        labels = self._arg_labels(q, k, callee, j)
                        resolved = self._resolve_in(q, labels, self.ret,
                                                    {}, set())
                        for m in resolved:
                            if m.startswith("param:"):
                                pair = (kind, int(m.split(":", 1)[1]))
                                if pair not in table[q]:
                                    table[q].add(pair)
                                    changed = True
            if not changed:
                break
        self.sink_params = table


def _make_finding(rule: DeepRule, rel_path: str, lines: list,
                  line: int, col: int, end_line: int,
                  message: str) -> Finding:
    text = lines[line - 1].rstrip("\n") if 0 < line <= len(lines) else ""
    return Finding(rule_id=rule.id, severity=rule.severity, path=rel_path,
                   line=line, col=col, message=message, line_text=text,
                   end_line=end_line)


def run_deep_rules(summaries: dict, symtab: SymbolTable,
                   sources: dict) -> list[Finding]:
    """Run RPR101–RPR104 over the whole program.

    ``summaries``: qname -> :class:`FunctionSummary`;
    ``sources``: module name -> ``(rel_path, list_of_source_lines)``.
    """
    program = _Program(summaries, symtab)
    r101, r102, r103, r104 = (CollectiveBehindRankBranch(),
                              Fp16IntoAccumulation(), UnseededRngFlow(),
                              SwallowedErrorOnCollectivePath())
    findings: list[Finding] = []

    for q, summ in sorted(summaries.items()):
        if summ.module not in sources:
            continue
        rel_path, lines = sources[summ.module]
        targets = program.targets[q]
        resolved = program.resolved_labels[q]
        fp16_exempt = summ.module.startswith(_FP16_EXEMPT_PREFIXES)
        rng_exempt = summ.module.startswith(_RNG_EXEMPT_PREFIXES)

        # -- RPR101 / RPR104 on resolved calls -------------------------------
        for k, site in enumerate(summ.calls):
            callee = targets[k]
            if callee is not None:
                if site.rank_guard is not None and \
                        callee in program.reach_coll:
                    chain = program.chain(program.reach_coll, callee)
                    findings.append(_make_finding(
                        r101, rel_path, lines, site.line, site.col,
                        site.end_line,
                        f"'{site.ref}' is called under a rank-conditional "
                        f"branch (line {site.rank_guard}) and reaches a "
                        f"collective via {chain}; ranks on the other path "
                        f"deadlock"))
                if site.broad_handler is not None:
                    for table, what in ((program.reach_coll, "collective"),
                                        (program.reach_ckpt, "checkpoint")):
                        if callee in table:
                            chain = program.chain(table, callee)
                            findings.append(_make_finding(
                                r104, rel_path, lines, site.line, site.col,
                                site.end_line,
                                f"broad handler (line {site.broad_handler}) "
                                f"swallows errors around '{site.ref}', which "
                                f"reaches a {what} via {chain}; peers hang "
                                f"or state rots silently"))
                            break

            # fp16/rng flowing into a sink parameter of the callee.
            if callee is not None and program.sink_params.get(callee):
                for kind, j in sorted(program.sink_params[callee]):
                    if kind == "fp16" and fp16_exempt:
                        continue
                    if kind == "rng" and rng_exempt:
                        continue
                    offset = program._param_offset(callee)
                    pos = j - offset
                    if not (0 <= pos < len(resolved["calls"][k])):
                        continue
                    if kind in resolved["calls"][k][pos]:
                        rule = r102 if kind == "fp16" else r103
                        noun = ("a raw-float16 value"
                                if kind == "fp16" else "an unseeded RNG")
                        findings.append(_make_finding(
                            rule, rel_path, lines, site.line, site.col,
                            site.end_line,
                            f"{noun} is passed to '{site.ref}' "
                            f"(parameter '{program.summaries[callee].params[j]}'"
                            f") which feeds it into a "
                            f"{'precision-sensitive accumulation' if kind == 'fp16' else 'random draw'}"
                            f" inside {_short(callee)}"))
                        break

        # -- RPR104 on direct collectives/checkpoints under broad handlers ---
        for name, line, col, end_line, _rank, broad in summ.collectives:
            if broad is not None:
                findings.append(_make_finding(
                    r104, rel_path, lines, line, col, end_line,
                    f"broad handler (line {broad}) swallows errors around "
                    f"collective '{name}'; a rank that fails here leaves "
                    f"its peers blocked in the collective"))
        for name, line, col, end_line, _rank, broad in summ.checkpoints:
            if broad is not None:
                findings.append(_make_finding(
                    r104, rel_path, lines, line, col, end_line,
                    f"broad handler (line {broad}) swallows errors around "
                    f"checkpoint call '{name}'; failed saves/restores go "
                    f"unnoticed"))

        # -- RPR102 / RPR103 on local sinks ----------------------------------
        for sink, sink_labels in zip(summ.sinks, resolved["sinks"]):
            if sink.kind in ("acc", "loss"):
                if fp16_exempt or "fp16" not in sink_labels:
                    continue
                findings.append(_make_finding(
                    r102, rel_path, lines, sink.line, sink.col,
                    sink.end_line,
                    f"a raw-float16 value flows into "
                    f"{'loss computation' if sink.kind == 'loss' else 'accumulation'}"
                    f" '{sink.name}'; accumulate in fp32 "
                    f"(framework.dtypes.compute_dtype) or use the loss "
                    f"scaler"))
            elif sink.kind == "draw":
                if rng_exempt or "rng" not in sink_labels:
                    continue
                findings.append(_make_finding(
                    r103, rel_path, lines, sink.line, sink.col,
                    sink.end_line,
                    f"draw '{sink.name}' uses an unseeded RNG (created "
                    f"without a seed, possibly via a return value or "
                    f"default argument); runs are not reproducible"))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
