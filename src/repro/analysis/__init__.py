"""Static analysis for distributed correctness (``repro lint``).

A stdlib-``ast`` analyzer purpose-built for this codebase's hazard
classes: collectives inside rank-conditional branches (deadlock),
broad ``except`` clauses that swallow :class:`repro.errors.ReproError`,
unseeded module-global RNG (rank divergence), the deprecated checkpoint
free functions, mutable default arguments, and raw ``float16`` outside
the loss-scaled precision layer.

The moving parts:

* :class:`~.rules.Rule` — pluggable rule base class; the pack lives in
  :mod:`repro.analysis.rules` (``RPR001``–``RPR007``).
* :class:`~.walker.Analyzer` — project walker with per-file caching keyed
  on content hash + rule-set signature, inline
  ``# repro-lint: disable=RPRxxx`` suppressions (plus ``disable-file=``),
  and stale-suppression detection.
* :class:`~.baseline.Baseline` — the committed
  ``.repro-lint-baseline.json``: legacy findings don't gate CI, new ones
  do.
* :func:`~.walker.run_lint` — one-call programmatic entry point, the same
  path the ``repro lint`` CLI takes.
* The **deep** (whole-program) pass behind ``repro lint --deep``:
  :mod:`~repro.analysis.callgraph` (symbol table + import/call resolution),
  :mod:`~repro.analysis.flow` (per-function CFGs + taint/reaching-defs
  dataflow), :mod:`~repro.analysis.summaries` (cacheable per-function
  summaries), :mod:`~repro.analysis.deeprules` (inter-procedural rules
  RPR101–RPR104), and :class:`~.project.ProjectAnalyzer` (the
  dependency-hash project cache that re-analyzes only changed files).

Typical programmatic use::

    from repro.analysis import run_lint
    report = run_lint(["src/repro"], baseline_path=".repro-lint-baseline.json")
    for f in report.new_findings:
        print(f.location(), f.rule_id, f.message)
"""
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .callgraph import SymbolTable, module_name, parse_module
from .deeprules import DEEP_RULES, deep_rules, deep_rules_signature
from .findings import Edit, Finding, apply_edits
from .flow import CFG, ReachingDefinitions, build_cfg, solve_forward
from .project import DeepReport, ProjectAnalyzer
from .render import json_document, render_json, render_text
from .rules import (DEFAULT_RULES, FileContext, Rule, default_rules,
                    rule_catalog, rules_signature)
from .summaries import FunctionSummary, summarize_function
from .walker import Analyzer, AnalysisReport, Suppression, run_lint

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Baseline",
    "CFG",
    "DEEP_RULES",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_RULES",
    "DeepReport",
    "Edit",
    "FileContext",
    "Finding",
    "FunctionSummary",
    "ProjectAnalyzer",
    "ReachingDefinitions",
    "Rule",
    "Suppression",
    "SymbolTable",
    "apply_edits",
    "build_cfg",
    "deep_rules",
    "deep_rules_signature",
    "default_rules",
    "json_document",
    "module_name",
    "parse_module",
    "render_json",
    "render_text",
    "rule_catalog",
    "rules_signature",
    "run_lint",
    "solve_forward",
    "summarize_function",
]
