"""Static analysis for distributed correctness (``repro lint``).

A stdlib-``ast`` analyzer purpose-built for this codebase's hazard
classes: collectives inside rank-conditional branches (deadlock),
broad ``except`` clauses that swallow :class:`repro.errors.ReproError`,
unseeded module-global RNG (rank divergence), the deprecated checkpoint
free functions, mutable default arguments, and raw ``float16`` outside
the loss-scaled precision layer.

The moving parts:

* :class:`~.rules.Rule` — pluggable rule base class; the pack lives in
  :mod:`repro.analysis.rules` (``RPR001``–``RPR007``).
* :class:`~.walker.Analyzer` — project walker with per-file caching keyed
  on content hash + rule-set signature, inline
  ``# repro-lint: disable=RPRxxx`` suppressions (plus ``disable-file=``),
  and stale-suppression detection.
* :class:`~.baseline.Baseline` — the committed
  ``.repro-lint-baseline.json``: legacy findings don't gate CI, new ones
  do.
* :func:`~.walker.run_lint` — one-call programmatic entry point, the same
  path the ``repro lint`` CLI takes.

Typical programmatic use::

    from repro.analysis import run_lint
    report = run_lint(["src/repro"], baseline_path=".repro-lint-baseline.json")
    for f in report.new_findings:
        print(f.location(), f.rule_id, f.message)
"""
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .findings import Edit, Finding, apply_edits
from .render import json_document, render_json, render_text
from .rules import (DEFAULT_RULES, FileContext, Rule, default_rules,
                    rule_catalog, rules_signature)
from .walker import Analyzer, AnalysisReport, Suppression, run_lint

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_RULES",
    "Edit",
    "FileContext",
    "Finding",
    "Rule",
    "Suppression",
    "apply_edits",
    "default_rules",
    "json_document",
    "render_json",
    "render_text",
    "rule_catalog",
    "rules_signature",
    "run_lint",
]
