"""Whole-program analyzer: files -> summaries -> deep findings, cached.

:class:`ProjectAnalyzer` drives the deep (``--deep``) pipeline:

1. discover the same ``*.py`` set the shallow walker lints;
2. per file, either load the cached :class:`FunctionSummary` records (hit:
   the file's sha256 and the deep-rule signature are unchanged) or re-parse
   and re-summarize (**this is the only per-file cost that scales with
   project size** — the count is reported as ``reanalyzed``);
3. assemble the project :class:`~repro.analysis.callgraph.SymbolTable`
   and run the global fixpoint rules (:func:`~repro.analysis.deeprules
   .run_deep_rules`).

Because summaries are a pure function of file content (symbolic labels,
see :mod:`repro.analysis.summaries`), the dependency-hash story is simple
and sound: a file's summary entry is invalidated **only** by its own
content hash; callee changes are picked up by the (cheap, always-run)
global phase, whose result is additionally memoized under a digest of all
summaries so a fully-warm rerun does zero rule work.  Editing one leaf
module therefore re-analyzes exactly one file.
"""
from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import ModuleInfo, SymbolTable, parse_module
from .deeprules import deep_rules_signature, run_deep_rules
from .findings import Finding
from .summaries import FunctionSummary, summarize_function

__all__ = ["DeepReport", "ProjectAnalyzer"]

_DEEP_CACHE_VERSION = 1


@dataclass
class DeepReport:
    """What one deep pass produced (merged into the walker's report)."""

    findings: list = field(default_factory=list)
    files: int = 0
    reanalyzed: int = 0             # files whose summaries were recomputed
    cache_hits: int = 0
    functions: int = 0
    parse_errors: list = field(default_factory=list)
    findings_cached: bool = False   # global phase skipped (digest match)

    def stats(self) -> dict:
        return {"files": self.files, "reanalyzed": self.reanalyzed,
                "cache_hits": self.cache_hits, "functions": self.functions,
                "findings_cached": self.findings_cached}


def _module_to_dict(info: ModuleInfo) -> dict:
    return {
        "name": info.name,
        "rel_path": info.rel_path,
        "imports": info.imports,
        "defs": info.defs,
        "functions": sorted(info.functions),
    }


def _module_from_dict(data: dict) -> ModuleInfo:
    info = ModuleInfo(name=data["name"], rel_path=data["rel_path"],
                      imports=dict(data.get("imports", {})),
                      defs=dict(data.get("defs", {})))
    # Cached modules carry no AST nodes; the symbol table only needs key
    # membership for resolution, so a placeholder is enough.
    info.functions = {q: None for q in data.get("functions", [])}
    return info


class ProjectAnalyzer:
    """Summarize every file once, then run the inter-procedural rules."""

    def __init__(self, root: str | Path | None = None,
                 cache_path: str | Path | None = None):
        self.root = Path(root if root is not None else ".").resolve()
        self.cache_path = Path(cache_path) if cache_path else None
        self._signature = deep_rules_signature()
        self._cache = self._load_cache()

    # -- cache ---------------------------------------------------------------

    def _load_cache(self) -> dict:
        empty = {"version": _DEEP_CACHE_VERSION,
                 "signature": self._signature, "files": {}, "findings": {}}
        if self.cache_path is None or not self.cache_path.exists():
            return empty
        try:
            doc = json.loads(self.cache_path.read_text())
        except (OSError, json.JSONDecodeError):
            return empty
        if (doc.get("version") != _DEEP_CACHE_VERSION
                or doc.get("signature") != self._signature):
            return empty            # deep rule pack changed: start over
        doc.setdefault("files", {})
        doc.setdefault("findings", {})
        return doc

    def save_cache(self) -> None:
        if self.cache_path is None:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        self.cache_path.write_text(json.dumps(self._cache, indent=1))

    # -- helpers -------------------------------------------------------------

    def rel_path(self, path: Path) -> str:
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _summarize_file(self, rel: str, source: str) -> dict:
        tree = ast.parse(source)
        info = parse_module(rel, tree)
        summaries = [summarize_function(fn)
                     for fn in info.functions.values()]
        return {"module": _module_to_dict(info),
                "summaries": [s.as_dict() for s in summaries]}

    # -- main entry ----------------------------------------------------------

    def run(self, files: list[Path]) -> DeepReport:
        """Deep-analyze ``files`` (already discovered by the walker)."""
        report = DeepReport()
        sources: dict[str, tuple[str, list[str]]] = {}
        symtab = SymbolTable()
        summaries: dict[str, FunctionSummary] = {}
        fresh_files: dict[str, dict] = {}

        for path in files:
            rel = self.rel_path(path)
            try:
                source = Path(path).read_text()
            except OSError as exc:
                report.parse_errors.append(f"{rel}: {exc}")
                continue
            digest = hashlib.sha256(source.encode()).hexdigest()
            entry = self._cache["files"].get(rel)
            if entry is not None and entry.get("sha256") == digest:
                report.cache_hits += 1
                payload = entry
            else:
                try:
                    payload = self._summarize_file(rel, source)
                except SyntaxError as exc:
                    report.parse_errors.append(f"{rel}: {exc}")
                    continue
                payload["sha256"] = digest
                report.reanalyzed += 1
            fresh_files[rel] = payload
            report.files += 1
            info = _module_from_dict(payload["module"])
            symtab.add(info)
            sources[info.name] = (rel, source.splitlines())
            for data in payload["summaries"]:
                summ = FunctionSummary.from_dict(data)
                summaries[summ.qname] = summ

        report.functions = len(summaries)
        self._cache["files"] = fresh_files

        # Global phase: memoized under a digest of every summary + the
        # rule signature, so a fully-warm run skips the fixpoints too.
        global_digest = hashlib.sha256(json.dumps(
            [self._signature] +
            [fresh_files[rel].get("sha256", "") for rel in sorted(fresh_files)]
        ).encode()).hexdigest()
        cached = self._cache.get("findings", {})
        if cached.get("digest") == global_digest:
            report.findings = [Finding.from_dict(d)
                               for d in cached.get("items", [])]
            report.findings_cached = True
        else:
            report.findings = run_deep_rules(summaries, symtab, sources)
            self._cache["findings"] = {
                "digest": global_digest,
                "items": [f.as_dict() for f in report.findings],
            }
        self.save_cache()
        return report
