"""Project symbol table, import resolution, and call-edge extraction.

The deep analyzer works on *qualified names* (qnames) of the form
``"repro.comm.api:allreduce"`` or ``"repro.comm.engine:GradientExchangeEngine.exchange"``
— ``module:dotted.path`` — so that a function is identified the same way
regardless of which file mentions it.  This module turns per-file ASTs into:

* a :class:`ModuleInfo` per file — its import-alias map, its top-level
  definitions (functions, classes, methods), and the raw *call refs* each
  function makes (dotted strings like ``helper``, ``reducer.ring_allreduce``,
  ``self._sync``);
* a :class:`SymbolTable` over all modules, able to resolve a call ref seen
  inside a given function to a qname, following import aliases (including
  relative ``from . import x`` forms) and ``self.``/``cls.`` method calls.

Resolution is deliberately best-effort and *under*-approximate: a ref that
cannot be pinned to a project symbol resolves to ``None`` and contributes
no call edge.  Dynamic dispatch through arbitrary objects, star imports,
and monkey-patching are out of scope — the deep rules prefer silence over
speculation there.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "module_name",
    "qname",
    "split_qname",
    "FunctionInfo",
    "ModuleInfo",
    "parse_module",
    "SymbolTable",
]


def module_name(rel_path: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` stripped)."""
    path = rel_path.replace("\\", "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[:-len(".py")]
    if path.endswith("/__init__"):
        path = path[:-len("/__init__")]
    return path.replace("/", ".")


def qname(module: str, dotted: str) -> str:
    return f"{module}:{dotted}"


def split_qname(name: str) -> tuple[str, str]:
    module, _, dotted = name.partition(":")
    return module, dotted


@dataclass
class FunctionInfo:
    """One function or method definition inside a module."""

    qname: str
    module: str
    dotted: str                       # path within the module (Cls.meth)
    node: object                      # ast.FunctionDef | AsyncFunctionDef
    cls: str | None = None            # enclosing class dotted path, if any


@dataclass
class ModuleInfo:
    name: str
    rel_path: str
    #: local alias -> fully-dotted target ("repro.comm.api" for module
    #: imports, "repro.comm.api.allreduce" for from-imports).
    imports: dict = field(default_factory=dict)
    #: dotted path -> "func" | "class"
    defs: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)   # qname -> FunctionInfo

    @property
    def package(self) -> str:
        """Package containing this module (itself if it is a package)."""
        return self.name.rsplit(".", 1)[0] if "." in self.name else self.name


def _resolve_relative(base_module: str, rel_path: str, level: int,
                      target: str) -> str:
    """Absolute dotted target for ``from .[..]target import ...``."""
    is_pkg = rel_path.replace("\\", "/").endswith("__init__.py")
    parts = base_module.split(".")
    # level 1 = current package: drop nothing for a package __init__,
    # drop the module leaf otherwise; each extra level climbs once more.
    drop = level - (1 if is_pkg else 0)
    if drop > 0:
        parts = parts[:-drop] if drop < len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


class _ModuleVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo):
        self.info = info
        self._class_stack: list[str] = []
        self._depth = 0

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            base = _resolve_relative(self.info.name, self.info.rel_path,
                                     node.level, base)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._depth > 0:
            return                    # classes inside functions: skip
        dotted = ".".join([*self._class_stack, node.name])
        self.info.defs[dotted] = "class"
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        if self._depth > 0:
            return                    # nested defs: not addressable
        dotted = ".".join([*self._class_stack, node.name])
        self.info.defs[dotted] = "func"
        q = qname(self.info.name, dotted)
        cls = ".".join(self._class_stack) if self._class_stack else None
        self.info.functions[q] = FunctionInfo(
            qname=q, module=self.info.name, dotted=dotted, node=node, cls=cls)
        self._depth += 1
        for child in node.body:
            self.visit(child)
        self._depth -= 1

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


def parse_module(rel_path: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(name=module_name(rel_path), rel_path=rel_path)
    _ModuleVisitor(info).visit(tree)
    return info


def call_ref(call: ast.Call) -> str | None:
    """Dotted string for a call's target, or None if not name-shaped."""
    parts: list[str] = []
    node = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SymbolTable:
    """All modules of the project plus cross-module call-ref resolution."""

    def __init__(self, modules: dict[str, ModuleInfo] | None = None):
        self.modules: dict[str, ModuleInfo] = dict(modules or {})

    def add(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info

    def functions(self) -> dict[str, FunctionInfo]:
        out: dict[str, FunctionInfo] = {}
        for mod in self.modules.values():
            out.update(mod.functions)
        return out

    # -- resolution ----------------------------------------------------------

    def _lookup(self, module: str, dotted: str) -> str | None:
        """qname if ``module:dotted`` names a known function, else None."""
        info = self.modules.get(module)
        if info is None:
            return None
        q = qname(module, dotted)
        if q in info.functions:
            return q
        # Class instantiation resolves to __init__ when we have it; the
        # class itself is otherwise an acceptable terminal (no edge).
        if info.defs.get(dotted) == "class":
            init = qname(module, f"{dotted}.__init__")
            if init in info.functions:
                return init
        return None

    def _resolve_dotted(self, target: str) -> str | None:
        """Resolve an absolute dotted path ("pkg.mod.Cls.meth") to a qname.

        Tries every module/attribute split from longest module prefix down,
        then follows one level of re-export aliasing (``from .api import
        allreduce`` in a package ``__init__``).
        """
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            dotted = ".".join(parts[cut:])
            found = self._lookup(module, dotted)
            if found is not None:
                return found
            # Re-export: the first attribute may itself be an import alias
            # inside ``module`` (common for package __init__ files).
            info = self.modules[module]
            alias = info.imports.get(parts[cut])
            if alias is not None:
                rest = parts[cut + 1:]
                return self._resolve_dotted(".".join([alias, *rest])
                                            if rest else alias)
            return None
        return None

    def resolve(self, ref: str, module: str,
                cls: str | None = None) -> str | None:
        """Resolve a call ref seen inside ``module`` (and class ``cls``).

        ``ref`` is the dotted string from :func:`call_ref`; returns a
        project qname or None.
        """
        if not ref:
            return None
        parts = ref.split(".")
        head = parts[0]
        if head in ("self", "cls") and cls is not None:
            # Method call on the enclosing class.
            dotted = ".".join([cls, *parts[1:]])
            return self._lookup(module, dotted)
        info = self.modules.get(module)
        if info is not None:
            # Local definition in the same module?
            found = self._lookup(module, ref)
            if found is not None:
                return found
            if ref in info.defs and info.defs[ref] == "class":
                return self._lookup(module, ref)
            # Import alias?
            alias = info.imports.get(head)
            if alias is not None:
                return self._resolve_dotted(".".join([alias, *parts[1:]]))
        return None
