"""Loss functions: per-pixel weighted softmax cross-entropy.

The class-imbalance problem (Section V-B1) is the reason this module exists:
98.2% of pixels are background, so an unweighted loss lets the network win by
predicting BG everywhere.  ``weighted_cross_entropy`` takes a per-pixel
weight map — computed by the input pipeline from the label class, exactly as
in the paper — and the weighting *strategies* (inverse frequency vs inverse
square root) live in :mod:`repro.core.losses`.

All reductions are computed in float32 even for FP16 activations; the
gradient is cast back to the logits dtype, which is where half-precision
training feels large weight magnitudes (the instability the paper reports
for inverse-frequency weights).
"""
from __future__ import annotations

import numpy as np

from .graph import ShapeProbe
from .tensor import Tensor

__all__ = ["log_softmax", "softmax", "weighted_cross_entropy", "softmax_probs"]


def softmax_probs(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax on a raw array (FP32 accumulation)."""
    acc = np.float64 if logits.dtype == np.float64 else np.float32
    z = logits.astype(acc, copy=False)
    z = z - z.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable log-softmax on a raw array."""
    acc = np.float64 if logits.dtype == np.float64 else np.float32
    z = logits.astype(acc, copy=False)
    z = z - z.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = 1) -> Tensor:
    """Differentiable softmax along ``axis``."""
    p = softmax_probs(x.data, axis=axis)

    def backward(g: np.ndarray) -> None:
        ga = np.asarray(g, dtype=p.dtype)
        dot = (ga * p).sum(axis=axis, keepdims=True)
        x.accumulate_grad((p * (ga - dot)).astype(x.dtype, copy=False))

    return Tensor.from_op(p.astype(x.dtype, copy=False), (x,), backward, "softmax")


def weighted_cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    pixel_weights: np.ndarray | None = None,
    normalization: str = "weighted_mean",
) -> Tensor:
    """Per-pixel weighted softmax cross-entropy for segmentation.

    Parameters
    ----------
    logits:
        (N, K, H, W) class scores.
    labels:
        (N, H, W) integer class ids in [0, K).
    pixel_weights:
        (N, H, W) per-pixel loss weights (``None`` = unweighted).  The paper
        computes these in the input pipeline from the label class and ships
        them to the GPU alongside the image (Section V-B1).
    normalization:
        ``"weighted_mean"`` divides by the total weight (keeps the loss scale
        independent of the weighting strategy); ``"mean"`` divides by the
        pixel count (paper-style: weights directly scale the loss magnitude,
        which is what made inverse-frequency weights unstable in FP16).
    """
    if isinstance(logits, ShapeProbe):
        return _trace_loss(logits)
    n, k, h, w = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (n, h, w):
        raise ValueError(f"labels shape {labels.shape} != {(n, h, w)}")
    if labels.min() < 0 or labels.max() >= k:
        raise ValueError(f"labels out of range [0, {k})")
    if pixel_weights is None:
        weights = np.ones((n, h, w), dtype=np.float32)
    else:
        weights = np.asarray(pixel_weights, dtype=np.float32)
        if weights.shape != (n, h, w):
            raise ValueError(f"pixel_weights shape {weights.shape} != {(n, h, w)}")
    if normalization == "weighted_mean":
        denom = max(float(weights.sum()), np.finfo(np.float32).tiny)
    elif normalization == "mean":
        denom = float(n * h * w)
    else:
        raise ValueError(f"unknown normalization {normalization!r}")

    logp = log_softmax(logits.data, axis=1)  # (N,K,H,W) float32+
    ni, hi, wi = np.ogrid[:n, :h, :w]
    nll = -logp[ni, labels, hi, wi]  # (N,H,W)
    loss_value = float((weights * nll).sum() / denom)

    probs = np.exp(logp)

    def backward(g: np.ndarray) -> None:
        scale = float(np.asarray(g)) / denom
        grad = probs.copy()
        grad[ni, labels, hi, wi] -= 1.0
        grad *= (weights * scale)[:, None, :, :]
        logits.accumulate_grad(grad.astype(logits.dtype, copy=False))

    return Tensor.from_op(
        np.asarray(loss_value, dtype=logp.dtype), (logits,), backward, "weighted_xent"
    )


def _trace_loss(logits: ShapeProbe) -> ShapeProbe:
    """Symbolic kernel records for the loss (tiny next to the convs)."""
    tr = logits.tracer
    nbytes = tr.tensor_bytes(logits.shape)
    tr.emit("softmax_xent_fwd", "pointwise_fwd", 6 * logits.size, 2 * nbytes)
    if tr.include_backward:
        tr.emit("softmax_xent_bwd", "pointwise_bwd", 3 * logits.size, 2 * nbytes)
    return ShapeProbe((1,), tr)
