"""Bilinear upsampling layer (the stock DeepLabv3+ decoder's resize)."""
from __future__ import annotations

import numpy as np

from ..graph import ShapeProbe
from ..module import Module
from ..ops.shape import bilinear_upsample_backward, bilinear_upsample_forward
from ..tensor import Tensor

__all__ = ["BilinearUpsample2D"]


class BilinearUpsample2D(Module):
    """Resize spatial dims by an integer ``scale`` with bilinear blending.

    The paper's modified decoder replaces this with learned deconvolutions;
    keeping it lets us build the *stock* quarter-resolution DeepLabv3+ as an
    ablation baseline.
    """

    def __init__(self, scale: int = 2, align_corners: bool = False):
        super().__init__()
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.scale = int(scale)
        self.align_corners = bool(align_corners)

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return h * self.scale, w * self.scale

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            tr = x.tracer
            n, c, h, w = x.shape
            oh, ow = self.output_hw(h, w)
            out_shape = (n, c, oh, ow)
            flops = 8 * n * c * oh * ow  # 4 taps, lerp in 2 dims
            tr.emit("bilinear_fwd", "pointwise_fwd", flops,
                    tr.tensor_bytes(x.shape) + tr.tensor_bytes(out_shape))
            tr.note_activation(out_shape)
            if tr.include_backward:
                tr.emit("bilinear_bwd", "pointwise_bwd", flops,
                        tr.tensor_bytes(x.shape) + tr.tensor_bytes(out_shape))
            return ShapeProbe(out_shape, tr)
        n, c, h, w = x.data.shape
        oh, ow = self.output_hw(h, w)
        y = bilinear_upsample_forward(x.data, oh, ow, self.align_corners)
        x_shape = x.data.shape
        align = self.align_corners

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(bilinear_upsample_backward(g, x_shape, align))

        return Tensor.from_op(y, (x,), backward, f"bilinear[x{self.scale}]")
