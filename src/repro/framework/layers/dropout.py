"""Inverted dropout (Tiramisu dense layers use p=0.2 in the original)."""
from __future__ import annotations

import numpy as np

from ..graph import ShapeProbe
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            tr = x.tracer
            nbytes = tr.tensor_bytes(x.shape)
            tr.emit("dropout_fwd", "pointwise_fwd", 2 * x.size, 2 * nbytes)
            tr.note_activation(x.shape)  # the dropout mask
            if tr.include_backward:
                tr.emit("dropout_bwd", "pointwise_bwd", x.size, 2 * nbytes)
            return x
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / np.asarray(
            keep, dtype=x.dtype
        )

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(g * mask)

        return Tensor.from_op(x.data * mask, (x,), backward, f"dropout[{self.p}]")
