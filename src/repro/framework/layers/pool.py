"""Pooling layers."""
from __future__ import annotations

import numpy as np

from ..graph import ShapeProbe
from ..module import Module
from ..ops.conv import conv_output_size
from ..ops.pool import (
    avgpool2d_backward,
    avgpool2d_forward,
    maxpool2d_backward,
    maxpool2d_forward,
)
from ..tensor import Tensor

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Module):
    def __init__(self, kernel: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)
        self.padding = int(padding)

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_output_size(h, self.kernel, self.stride, self.padding, 1),
            conv_output_size(w, self.kernel, self.stride, self.padding, 1),
        )

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        n, c, h, w = x.shape
        oh, ow = self.output_hw(h, w)
        out_shape = (n, c, oh, ow)
        window = self.kernel * self.kernel
        flops = n * c * oh * ow * window
        nbytes = tr.tensor_bytes(x.shape) + tr.tensor_bytes(out_shape)
        tr.emit(f"{type(self).__name__.lower()}_fwd", "pointwise_fwd", flops, nbytes)
        tr.note_activation(out_shape)
        if tr.include_backward:
            tr.emit(f"{type(self).__name__.lower()}_bwd", "pointwise_bwd", flops, nbytes)
        return ShapeProbe(out_shape, tr)


class MaxPool2D(_Pool2D):
    """Max pool; the ResNet stem uses 3x3/2, Tiramisu transitions use 2x2/2."""

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        k, s, p = self.kernel, self.stride, self.padding
        y, arg = maxpool2d_forward(x.data, k, s, p)
        x_shape = x.data.shape

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(maxpool2d_backward(g, arg, x_shape, k, s, p))

        return Tensor.from_op(y, (x,), backward, f"maxpool[{k}/{s}]")


class AvgPool2D(_Pool2D):
    """Average pool."""

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        k, s, p = self.kernel, self.stride, self.padding
        y = avgpool2d_forward(x.data, k, s, p)
        x_shape = x.data.shape

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(avgpool2d_backward(g, x_shape, k, s, p))

        return Tensor.from_op(y, (x,), backward, f"avgpool[{k}/{s}]")


class GlobalAvgPool2D(Module):
    """Spatial mean to 1x1 (ASPP image-pooling branch in stock DeepLabv3+)."""

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            tr = x.tracer
            n, c, h, w = x.shape
            out_shape = (n, c, 1, 1)
            tr.emit("global_avgpool_fwd", "pointwise_fwd", x.size,
                    tr.tensor_bytes(x.shape) + tr.tensor_bytes(out_shape))
            if tr.include_backward:
                tr.emit("global_avgpool_bwd", "pointwise_bwd", x.size,
                        tr.tensor_bytes(x.shape))
            return ShapeProbe(out_shape, tr)
        return x.mean(axis=(2, 3), keepdims=True)
