"""Batch normalization layer (training + inference modes, running stats)."""
from __future__ import annotations

import numpy as np

from ..graph import ShapeProbe
from ..module import Module
from ..ops.norm import batchnorm_backward, batchnorm_forward, batchnorm_infer
from ..parameter import Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm2D"]


class BatchNorm2D(Module):
    """Per-channel batch norm over (N, H, W).

    Parameters stay FP32 even in mixed precision (the cuDNN convention);
    running statistics are tracked with momentum ``momentum``.
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1,
                 name: str = "bn"):
        super().__init__()
        self.channels = int(channels)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(channels, dtype=np.float32), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(channels, dtype=np.float32), name=f"{name}.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def buffers(self) -> dict[str, np.ndarray]:
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        if x.shape[1] != self.channels:
            raise ValueError(f"batchnorm expects {self.channels} channels, got {x.shape[1]}")
        if self.training:
            return self._eager_train(x)
        return self._eager_infer(x)

    def _eager_train(self, x: Tensor) -> Tensor:
        gamma, beta = self.gamma, self.beta
        y, cache = batchnorm_forward(x.data, gamma.data, beta.data, self.eps)
        # Update running stats (float32, regardless of activation dtype).
        xa = x.data.astype(np.float32, copy=False)
        batch_mean = xa.mean(axis=(0, 2, 3))
        batch_var = xa.var(axis=(0, 2, 3))
        m = self.momentum
        self.running_mean *= 1 - m
        self.running_mean += m * batch_mean
        self.running_var *= 1 - m
        self.running_var += m * batch_var

        def backward(g: np.ndarray) -> None:
            dx, dgamma, dbeta = batchnorm_backward(g, cache)
            if x.requires_grad:
                x.accumulate_grad(dx)
            gamma.accumulate_grad(dgamma)
            beta.accumulate_grad(dbeta)

        return Tensor.from_op(y, (x, gamma, beta), backward, "batchnorm")

    def _eager_infer(self, x: Tensor) -> Tensor:
        gamma, beta = self.gamma, self.beta
        y = batchnorm_infer(x.data, gamma.data, beta.data,
                            self.running_mean, self.running_var, self.eps)
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = (gamma.data * inv_std).reshape(1, -1, 1, 1)

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x.accumulate_grad(g * scale.astype(g.dtype))

        return Tensor.from_op(y, (x, gamma, beta), backward, "batchnorm_infer")

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        numel = x.size
        nbytes = tr.tensor_bytes(x.shape)
        # Two reduction passes plus the normalize pass.
        tr.emit("batchnorm_fwd", "pointwise_fwd", 8 * numel, 3 * nbytes)
        tr.note_activation(x.shape)  # xhat cache kept for backward
        if tr.include_backward:
            tr.emit("batchnorm_bwd", "pointwise_bwd", 11 * numel, 4 * nbytes)
        return x
