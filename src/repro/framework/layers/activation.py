"""Point-wise activation layers."""
from __future__ import annotations

from ..graph import ShapeProbe
from ..module import Module
from ..tensor import Tensor

__all__ = ["ReLU", "Sigmoid", "Tanh"]


class _Pointwise(Module):
    """Shared trace logic for unary point-wise layers."""

    op = "pointwise"
    flops_per_elem = 1

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            tr = x.tracer
            nbytes = tr.tensor_bytes(x.shape)
            tr.emit(f"{self.op}_fwd", "pointwise_fwd", self.flops_per_elem * x.size, 2 * nbytes)
            tr.note_activation(x.shape)
            if tr.include_backward:
                tr.emit(f"{self.op}_bwd", "pointwise_bwd",
                        self.flops_per_elem * x.size, 2 * nbytes)
            return x
        return self._eager(x)

    def _eager(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


class ReLU(_Pointwise):
    op = "relu"

    def _eager(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(_Pointwise):
    op = "sigmoid"
    flops_per_elem = 4

    def _eager(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(_Pointwise):
    op = "tanh"
    flops_per_elem = 4

    def _eager(self, x: Tensor) -> Tensor:
        return x.tanh()
