"""Convolution layers: standard, atrous (dilated) and transposed.

Each layer supports two execution modes through the same ``forward``:

* eager — NumPy compute with autodiff (inputs are :class:`Tensor`);
* symbolic — kernel-record emission for the Section-VI FLOP analysis
  (inputs are :class:`ShapeProbe`).

Atrous convolution is just ``dilation > 1``; :class:`AtrousConv2D` exists as
a named alias because the DeepLabv3+ architecture diagrams speak in those
terms.
"""
from __future__ import annotations

import numpy as np

from collections import OrderedDict

from .. import init as initializers
from ..graph import ShapeProbe
from ..module import Module
from ..ops.conv import (
    conv2d_backward_input,
    conv2d_backward_weight,
    conv2d_flops,
    conv2d_forward,
    conv_output_size,
    conv_transpose_output_size,
)
from ..ops.plan import ConvPlan
from ..parameter import Parameter
from ..tensor import Tensor

__all__ = ["Conv2D", "AtrousConv2D", "ConvTranspose2D"]

#: Distinct input signatures a single layer keeps live plans for.  Layers
#: normally see one shape per phase (training grid, serving tile); a small
#: bound keeps pathological callers from hoarding workspaces.
_LAYER_PLAN_SLOTS = 4


def _resolve_padding(padding, kernel: int, dilation: int) -> int:
    """Resolve ``'same'`` to the symmetric pad that preserves H/stride."""
    if padding == "same":
        if kernel % 2 == 0:
            raise ValueError("'same' padding requires an odd kernel size")
        return dilation * (kernel - 1) // 2
    if padding == "valid":
        return 0
    return int(padding)


class Conv2D(Module):
    """2-D convolution (cross-correlation), NCHW.

    Parameters
    ----------
    in_channels, out_channels, kernel:
        Filter geometry; ``kernel`` is the (square) spatial size.
    stride, dilation:
        Standard conv hyper-parameters; ``dilation > 1`` gives atrous conv.
    padding:
        ``'same'`` (default), ``'valid'`` or an explicit int.
    bias:
        Whether to add a per-channel bias (disabled before batch norm).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding="same",
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ):
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.dilation = int(dilation)
        self.padding = _resolve_padding(padding, self.kernel, self.dilation)
        rng = rng or np.random.default_rng(0)
        wshape = (self.out_channels, self.in_channels, self.kernel, self.kernel)
        self.weight = Parameter(initializers.he_normal(rng, wshape), name=f"{name}.weight")
        self.bias = (
            Parameter(initializers.zeros((self.out_channels,)), name=f"{name}.bias")
            if bias
            else None
        )
        # Layer-owned execution plans (input signature -> ConvPlan).  Owning
        # them (rather than using the process-wide cache) guarantees the
        # column workspace filled by this layer's forward is still intact at
        # its weight gradient — other same-shape layers cannot clobber it.
        self._plans: OrderedDict[tuple, ConvPlan] = OrderedDict()

    def _plan_for(self, x) -> ConvPlan:
        key = (x.shape, str(x.dtype))
        plan = self._plans.get(key)
        if plan is None:
            plan = ConvPlan(x.shape, self.weight.data.shape, self.stride,
                            self.padding, self.dilation, x.dtype)
            self._plans[key] = plan
            while len(self._plans) > _LAYER_PLAN_SLOTS:
                self._plans.popitem(last=False)
        else:
            self._plans.move_to_end(key)
        return plan

    # -- geometry ---------------------------------------------------------

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_output_size(h, self.kernel, self.stride, self.padding, self.dilation),
            conv_output_size(w, self.kernel, self.stride, self.padding, self.dilation),
        )

    # -- forward ----------------------------------------------------------

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        return self._eager(x)

    def _eager(self, x: Tensor) -> Tensor:
        w = self.weight
        plan = self._plan_for(x.data)
        token = plan.im2col(x.data)
        y = plan.forward_from_cols(plan.columns_for(token, x.data), w.data)
        x_data = x.data

        def backward(g: np.ndarray) -> None:
            if w.requires_grad:
                # The forward's column workspace (hence its padded input) is
                # reused here; the token only misses if this layer ran again
                # before backward, in which case columns_for refills safely.
                cols = plan.columns_for(token, x_data)
                w.accumulate_grad(plan.backward_weight_from_cols(g, cols))
            if x.requires_grad:
                x.accumulate_grad(plan.backward_input(g, w.data))

        out = Tensor.from_op(y, (x, w), backward, f"conv2d[{self.kernel}x{self.kernel}]")
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"conv expects {self.in_channels} input channels, probe has {c}"
            )
        oh, ow = self.output_hw(h, w)
        k = self.kernel
        fwd_flops = conv2d_flops(n, c, self.out_channels, oh, ow, k, k)
        in_bytes = tr.tensor_bytes(x.shape)
        w_bytes = tr.tensor_bytes(self.weight.shape)
        out_shape = (n, self.out_channels, oh, ow)
        out_bytes = tr.tensor_bytes(out_shape)
        tr.emit(f"conv{k}x{k}_fwd", "conv_fwd", fwd_flops,
                in_bytes + w_bytes + out_bytes, algorithm="im2col_gemm")
        tr.note_activation(out_shape)
        if tr.precision.is_half:
            # FP32 master weights are cast to the FP16 working copy each step.
            tr.emit(
                f"conv{k}x{k}_weight_cast", "cast", self.weight.size,
                self.weight.size * (4 + 2),
            )
        if self.bias is not None:
            bias_elems = n * self.out_channels * oh * ow
            tr.emit("bias_add", "pointwise_fwd", bias_elems, 2 * out_bytes)
        if tr.include_backward:
            # dgrad reads dy + w, writes dx; wgrad reads dy + x, writes dw (FP32).
            tr.emit(f"conv{k}x{k}_dgrad", "conv_bwd", fwd_flops,
                    out_bytes + w_bytes + in_bytes, algorithm="im2col_gemm")
            tr.emit(f"conv{k}x{k}_wgrad", "conv_bwd", fwd_flops,
                    out_bytes + in_bytes + self.weight.size * 4,
                    algorithm="im2col_gemm")
            if self.bias is not None:
                bias_elems = n * self.out_channels * oh * ow
                tr.emit("bias_grad", "pointwise_bwd", bias_elems, out_bytes)
        return ShapeProbe(out_shape, tr)


class AtrousConv2D(Conv2D):
    """Dilated convolution, the DeepLabv3+ building block (Section III-A1)."""

    def __init__(self, in_channels, out_channels, kernel, dilation, stride=1,
                 padding="same", bias=True, rng=None, name="atrous"):
        super().__init__(in_channels, out_channels, kernel, stride=stride,
                         padding=padding, dilation=dilation, bias=bias, rng=rng, name=name)


class ConvTranspose2D(Module):
    """Transposed (fractionally strided) convolution — 'deconvolution'.

    Used by the paper's full-resolution DeepLabv3+ decoder (3x3 deconv /2
    stages in Figure 1) and by Tiramisu's transition-up path.  Implemented
    as the exact adjoint of :class:`Conv2D`: forward is the conv input
    gradient, so conv/deconv round-trips are numerically consistent.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 2,
        padding: int = 1,
        output_padding: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "deconv",
    ):
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.padding = int(padding)
        self.output_padding = int(output_padding)
        rng = rng or np.random.default_rng(0)
        # Weight layout (C_in, C_out, KH, KW): the conv this transposes maps
        # out_channels -> in_channels.
        wshape = (self.in_channels, self.out_channels, self.kernel, self.kernel)
        self.weight = Parameter(initializers.he_normal(rng, wshape), name=f"{name}.weight")
        self.bias = (
            Parameter(initializers.zeros((self.out_channels,)), name=f"{name}.bias")
            if bias
            else None
        )

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_transpose_output_size(h, self.kernel, self.stride, self.padding,
                                       self.output_padding),
            conv_transpose_output_size(w, self.kernel, self.stride, self.padding,
                                       self.output_padding),
        )

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        return self._eager(x)

    def _eager(self, x: Tensor) -> Tensor:
        w = self.weight
        n, c, h, wi = x.data.shape
        oh, ow = self.output_hw(h, wi)
        stride, pad = self.stride, self.padding
        out_shape = (n, self.out_channels, oh, ow)
        y = conv2d_backward_input(x.data, w.data, out_shape, stride, pad, 1)
        x_data = x.data

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x.accumulate_grad(conv2d_forward(g, w.data, stride, pad, 1))
            if w.requires_grad:
                w.accumulate_grad(
                    conv2d_backward_weight(x_data, g, w.data.shape, stride, pad, 1)
                )

        out = Tensor.from_op(y, (x, w), backward, f"deconv[{self.kernel}x{self.kernel}]")
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"deconv expects {self.in_channels} input channels, probe has {c}"
            )
        oh, ow = self.output_hw(h, w)
        k = self.kernel
        # Work is proportional to the *input* (small) spatial extent times taps.
        flops = conv2d_flops(n, self.out_channels, c, h, w, k, k)
        in_bytes = tr.tensor_bytes(x.shape)
        w_bytes = tr.tensor_bytes(self.weight.shape)
        out_shape = (n, self.out_channels, oh, ow)
        out_bytes = tr.tensor_bytes(out_shape)
        tr.emit(f"deconv{k}x{k}_fwd", "conv_fwd", flops, in_bytes + w_bytes + out_bytes)
        tr.note_activation(out_shape)
        # TensorFlow inserts layout transposes around strided deconvolutions;
        # the paper's decoder re-layout removed ~10% of them, so we record the
        # copies explicitly to let the performance model account for them.
        tr.emit("deconv_layout_copy", "copy", 0, 2 * out_bytes)
        if tr.precision.is_half:
            tr.emit(f"deconv{k}x{k}_weight_cast", "cast", self.weight.size,
                    self.weight.size * (4 + 2))
        if self.bias is not None:
            tr.emit("bias_add", "pointwise_fwd", n * self.out_channels * oh * ow,
                    2 * out_bytes)
        if tr.include_backward:
            tr.emit(f"deconv{k}x{k}_dgrad", "conv_bwd", flops,
                    out_bytes + w_bytes + in_bytes)
            tr.emit(f"deconv{k}x{k}_wgrad", "conv_bwd", flops,
                    out_bytes + in_bytes + self.weight.size * 4)
            if self.bias is not None:
                tr.emit("bias_grad", "pointwise_bwd",
                        n * self.out_channels * oh * ow, out_bytes)
        return ShapeProbe(out_shape, tr)
