"""Layer library used by the segmentation networks."""
from ..module import Identity, Module, Sequential
from .activation import ReLU, Sigmoid, Tanh
from .conv import AtrousConv2D, Conv2D, ConvTranspose2D
from .dropout import Dropout
from .norm import BatchNorm2D
from .separable import DepthwiseConv2D, SeparableConv2D
from .pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .upsample import BilinearUpsample2D

__all__ = [
    "Module",
    "Sequential",
    "Identity",
    "Conv2D",
    "AtrousConv2D",
    "ConvTranspose2D",
    "BatchNorm2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Dropout",
    "DepthwiseConv2D",
    "SeparableConv2D",
    "BilinearUpsample2D",
]
