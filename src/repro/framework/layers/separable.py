"""Depthwise-separable (atrous) convolution layer.

Stock DeepLabv3+ factorizes its spatial convolutions; the SC18 network
keeps them dense for GPU efficiency.  :class:`SeparableConv2D` = depthwise
k x k (with optional dilation) + pointwise 1x1, with the ~k^2 FLOP saving
visible in the traced kernel records.
"""
from __future__ import annotations

import numpy as np

from .. import init as initializers
from ..graph import ShapeProbe
from ..module import Module
from ..ops.conv import conv_output_size
from ..ops.depthwise import (
    depthwise_conv2d_backward_input,
    depthwise_conv2d_backward_weight,
    depthwise_conv2d_flops,
    depthwise_conv2d_forward,
)
from ..parameter import Parameter
from ..tensor import Tensor
from .conv import Conv2D, _resolve_padding

__all__ = ["DepthwiseConv2D", "SeparableConv2D"]


class DepthwiseConv2D(Module):
    """Per-channel k x k convolution (one filter per input channel)."""

    def __init__(self, channels: int, kernel: int, stride: int = 1,
                 padding="same", dilation: int = 1,
                 rng: np.random.Generator | None = None, name: str = "dwconv"):
        super().__init__()
        self.channels = int(channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.dilation = int(dilation)
        self.padding = _resolve_padding(padding, self.kernel, self.dilation)
        rng = rng or np.random.default_rng(0)
        # He init with fan_in = k*k (one input channel per filter).
        std = np.sqrt(2.0 / (self.kernel * self.kernel))
        self.weight = Parameter(
            rng.normal(0.0, std, size=(channels, kernel, kernel)).astype(np.float32),
            name=f"{name}.weight",
        )

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_output_size(h, self.kernel, self.stride, self.padding, self.dilation),
            conv_output_size(w, self.kernel, self.stride, self.padding, self.dilation),
        )

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        w = self.weight
        stride, pad, dil = self.stride, self.padding, self.dilation
        y = depthwise_conv2d_forward(x.data, w.data, stride, pad, dil)
        x_shape, x_data = x.data.shape, x.data

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x.accumulate_grad(depthwise_conv2d_backward_input(
                    g, w.data, x_shape, stride, pad, dil))
            if w.requires_grad:
                w.accumulate_grad(depthwise_conv2d_backward_weight(
                    g, x_data, w.data.shape, stride, pad, dil))

        return Tensor.from_op(y, (x, w), backward,
                              f"dwconv[{self.kernel}x{self.kernel}]")

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        n, c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"depthwise conv expects {self.channels} channels, "
                             f"probe has {c}")
        oh, ow = self.output_hw(h, w)
        k = self.kernel
        flops = depthwise_conv2d_flops(n, c, oh, ow, k, k)
        out_shape = (n, c, oh, ow)
        nbytes = (tr.tensor_bytes(x.shape) + tr.tensor_bytes(self.weight.shape)
                  + tr.tensor_bytes(out_shape))
        tr.emit(f"dwconv{k}x{k}_fwd", "conv_fwd", flops, nbytes)
        tr.note_activation(out_shape)
        if tr.include_backward:
            tr.emit(f"dwconv{k}x{k}_dgrad", "conv_bwd", flops, nbytes)
            tr.emit(f"dwconv{k}x{k}_wgrad", "conv_bwd", flops, nbytes)
        return ShapeProbe(out_shape, tr)


class SeparableConv2D(Module):
    """Depthwise k x k + pointwise 1x1 ("atrous separable convolution")."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, padding="same", dilation: int = 1,
                 bias: bool = True, rng: np.random.Generator | None = None,
                 name: str = "sep"):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.depthwise = DepthwiseConv2D(in_channels, kernel, stride=stride,
                                         padding=padding, dilation=dilation,
                                         rng=rng, name=f"{name}.dw")
        self.pointwise = Conv2D(in_channels, out_channels, 1, bias=bias,
                                rng=rng, name=f"{name}.pw")
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward(self, x):
        return self.pointwise(self.depthwise(x))
