"""Weight initializers (He / Glorot variants used by the segmentation nets)."""
from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "he_uniform", "glorot_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/out for dense (out,in) or conv (F,C,KH,KW) weight shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        f, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, f * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    """He/Kaiming normal: std = sqrt(2/fan_in); the ReLU-network default."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def he_uniform(rng: np.random.Generator, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def glorot_uniform(rng: np.random.Generator, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def zeros(shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def ones(shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    return np.ones(shape, dtype=dtype)
