"""Module base class: parameter registration, modes, state, analysis."""
from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .dtypes import FP16
from .graph import GraphAnalysis, GraphTracer, ShapeProbe
from .parameter import Parameter
from .tensor import Tensor

__all__ = ["Module", "Sequential", "Identity"]


class Module:
    """Base class for layers and networks.

    Subclasses assign :class:`Parameter` and ``Module`` attributes in
    ``__init__``; registration happens automatically through
    ``__setattr__``.  ``forward`` must handle both :class:`Tensor` (eager)
    and :class:`ShapeProbe` (symbolic trace) inputs — primitive layers
    branch on the type, containers and networks are oblivious.
    """

    def __init__(self):
        object.__setattr__(self, "_params", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------------

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- forward ---------------------------------------------------------------

    def forward(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ---------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes -------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        if getattr(self, "_frozen", False):
            mode = False  # frozen graphs are inference-only, permanently
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def freeze_for_inference(self) -> "Module":
        """Return a fused, inference-frozen deep copy (see
        :func:`repro.framework.fusion.freeze`).  ``self`` is untouched."""
        from .fusion import freeze

        return freeze(self)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state --------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name->array mapping of parameter values (master precision)."""
        state = {}
        for name, p in self.named_parameters():
            state[name] = p.master_value().copy()
        for m, prefix in self._named_buffers():
            state.update({f"{prefix}{k}": v.copy() for k, v in m.items()})
        return state

    def _named_buffers(self):
        """Subclasses with non-parameter state (BN running stats) override
        ``buffers()`` returning a dict; collected here with dotted prefixes."""
        out = []

        def walk(mod: "Module", prefix: str):
            bufs = mod.buffers()
            if bufs:
                out.append((bufs, prefix))
            for name, child in mod._modules.items():
                walk(child, f"{prefix}{name}.")

        walk(self, "")
        return out

    def buffers(self) -> dict[str, np.ndarray]:
        """Non-parameter persistent state; overridden by e.g. BatchNorm."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name in params:
                p = params[name]
                p.data = np.asarray(value, dtype=p.data.dtype).copy()
                if p.master is not None:
                    p.master = np.asarray(value, dtype=np.float32).copy()
            else:
                self._load_buffer(name, value)

    def _load_buffer(self, name: str, value: np.ndarray) -> None:
        parts = name.split(".")
        mod: Module = self
        for part in parts[:-1]:
            if part in mod._modules:
                mod = mod._modules[part]
            else:
                raise KeyError(f"no module path for state entry {name!r}")
        bufs = mod.buffers()
        if parts[-1] not in bufs:
            raise KeyError(f"no buffer {name!r}")
        bufs[parts[-1]][...] = value

    # -- precision policy ------------------------------------------------------------

    def cast_parameters(self, dtype, keep_master: bool = True) -> "Module":
        """Cast working parameter copies (FP16 mode keeps FP32 masters)."""
        dtype = np.dtype(dtype)
        for p in self.parameters():
            if keep_master and dtype == FP16:
                p.enable_master_copy()
            p.cast_(dtype)
        return self

    # -- analysis ----------------------------------------------------------------------

    def analyze(
        self,
        input_shape: tuple[int, int, int],
        batch: int = 1,
        precision: str = "fp32",
        include_backward: bool = True,
    ) -> GraphAnalysis:
        """Symbolically trace a training step, returning kernel records.

        ``input_shape`` is (C, H, W).  No arithmetic is performed, so this
        works at the paper's full 1152x768 resolution.
        """
        tracer = GraphTracer(batch, precision, include_backward)
        probe = tracer.probe(*input_shape)
        out = self.forward(probe)
        if not isinstance(out, ShapeProbe):
            raise TypeError("forward() must propagate ShapeProbe inputs")
        return tracer.finish()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self.add_module(str(i), layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, layer: Module) -> "Sequential":
        self.add_module(str(len(self.layers)), layer)
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Identity(Module):
    """No-op module (placeholder for optional branches)."""

    def forward(self, x):
        return x
