"""A minimal NumPy deep-learning framework (the TensorFlow stand-in).

Provides tensors with reverse-mode autodiff, the layer zoo the segmentation
networks need (conv / atrous conv / deconv / batch norm / pooling / dropout),
mixed-precision emulation, and symbolic graph tracing for the paper's
FLOP-counting methodology.
"""
from . import functional, init, layers, ops
from . import fusion
from .dtypes import Precision
from .fusion import FusedConvBiasReLU, FusedScaleShiftReLU, fold_bn_into_conv, freeze
from .graph import CATEGORIES, GraphAnalysis, GraphTracer, KernelRecord, ShapeProbe
from .losses import softmax, softmax_probs, weighted_cross_entropy
from .module import Identity, Module, Sequential
from .parameter import Parameter
from .precision import LossScaler, apply_fp16_policy, grads_finite
from .tensor import Tensor, concatenate, no_grad, stack

__all__ = [
    "Tensor",
    "Parameter",
    "Module",
    "Sequential",
    "Identity",
    "Precision",
    "GraphTracer",
    "GraphAnalysis",
    "KernelRecord",
    "ShapeProbe",
    "CATEGORIES",
    "LossScaler",
    "apply_fp16_policy",
    "grads_finite",
    "weighted_cross_entropy",
    "softmax",
    "softmax_probs",
    "concatenate",
    "stack",
    "no_grad",
    "fusion",
    "freeze",
    "fold_bn_into_conv",
    "FusedConvBiasReLU",
    "FusedScaleShiftReLU",
    "functional",
    "layers",
    "ops",
    "init",
]
