"""Mixed-precision training utilities: loss scaling and the FP16 policy.

The paper's FP16 runs use V100 Tensor Cores with FP32 accumulations; on the
NumPy substrate the same numerics are achieved by storing activations and
working weights in ``float16`` (kernels accumulate in FP32, see
:mod:`repro.framework.ops.conv`) and keeping FP32 master weights in the
optimizer.  Loss scaling keeps small gradients above the FP16 denormal
threshold; *dynamic* loss scaling backs off when gradients overflow, which
is exactly the mechanism that exposes the inverse-frequency-weight
instability of Section V-B1.
"""
from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Module
from .parameter import Parameter

__all__ = ["LossScaler", "apply_fp16_policy", "grads_finite"]


def grads_finite(params: Iterable[Parameter]) -> bool:
    """True when every present gradient is finite (no inf/nan)."""
    for p in params:
        if p.grad is not None and not np.isfinite(p.grad).all():
            return False
    return True


class LossScaler:
    """Static or dynamic loss scaling for FP16 training.

    Usage::

        scaled = loss * scaler.scale
        scaled.backward()
        if scaler.step(params):   # unscales grads in place, True if finite
            optimizer.step()
    """

    def __init__(
        self,
        init_scale: float = 2.0**15,
        dynamic: bool = True,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        self.scale = float(init_scale)
        self.dynamic = bool(dynamic)
        self.growth_factor = float(growth_factor)
        self.backoff_factor = float(backoff_factor)
        self.growth_interval = int(growth_interval)
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self._good_steps = 0
        self.num_overflows = 0

    def scale_loss(self, loss):
        """Multiply the loss tensor by the current scale (autodiff-aware)."""
        return loss * self.scale

    def step(self, params: Iterable[Parameter]) -> bool:
        """Unscale gradients in place; returns False if the step must be skipped.

        On overflow (non-finite grads) the gradients are zeroed, the scale is
        reduced (dynamic mode), and False is returned so the caller skips the
        optimizer update — the standard mixed-precision recipe.
        """
        params = list(params)
        finite = grads_finite(params)
        if not finite:
            self.num_overflows += 1
            for p in params:
                p.grad = None
            if self.dynamic:
                self.scale = max(self.scale * self.backoff_factor, self.min_scale)
            self._good_steps = 0
            return False
        inv = 1.0 / self.scale
        for p in params:
            if p.grad is not None:
                # Unscale into FP32 so the master-weight update is precise.
                p.grad = p.grad.astype(np.float32) * inv
        if self.dynamic:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale = min(self.scale * self.growth_factor, self.max_scale)
                self._good_steps = 0
        return True


def apply_fp16_policy(model: Module) -> Module:
    """Convert a model to the paper's mixed-precision regime.

    Conv/deconv weights get FP16 working copies with FP32 masters; batch-norm
    parameters stay FP32 (the cuDNN convention — they are tiny and
    precision-sensitive).
    """
    for _, p in model.named_parameters():
        if p.data.ndim >= 2:  # conv / deconv kernels
            p.enable_master_copy()
            p.cast_(np.float16)
        # 1-D params (BN gamma/beta, biases) remain FP32.
    return model
