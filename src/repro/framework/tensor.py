"""A small reverse-mode autodiff tensor on top of NumPy.

This plays the role TensorFlow plays in the paper: networks are built from
differentiable operations recorded on a tape, and ``Tensor.backward`` runs the
reverse pass.  The tape doubles as the *operation graph* that the paper's
FLOP-counting methodology (Section VI) traverses; see
:mod:`repro.framework.graph` for the symbolic analysis counterpart.

Only the operations the segmentation networks need are implemented, but each
is implemented completely (forward + backward, with broadcasting) and is
validated against finite differences in the test-suite.
"""
from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concatenate", "stack", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling tape recording (like ``torch.no_grad``)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-d array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``np.ndarray`` (dtype preserved,
        Python floats become float64).
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op_name")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.op_name = "leaf"

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op_name: str,
    ) -> "Tensor":
        """Create a tensor produced by an op, wiring the tape.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`accumulate_grad` on each parent that requires grad.
        """
        req = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = req
        if req:
            out._backward = backward
            out._parents = tuple(parents)
            out.op_name = op_name
        return out

    # -- basic protocol ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def astype(self, dtype) -> "Tensor":
        dtype = np.dtype(dtype)
        src_dtype = self.data.dtype

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.astype(src_dtype))

        return Tensor.from_op(self.data.astype(dtype), (self,), backward, f"cast[{dtype}]")

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, op={self.op_name!r})"

    def __len__(self) -> int:
        return len(self.data)

    # -- autodiff ----------------------------------------------------------

    def accumulate_grad(self, g: np.ndarray) -> None:
        """Add ``g`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        g = np.asarray(g, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = g.copy() if g.base is not None or g is self.data else g
        else:
            self.grad = self.grad + g

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so ``loss.backward()`` works for scalars).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        # Topological order over the tape.
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in seen and p.requires_grad:
                    stack.append((p, False))
        self.accumulate_grad(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic --------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other))

    def __add__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(_unbroadcast(g, self.shape))
            other.accumulate_grad(_unbroadcast(g, other.shape))

        return Tensor.from_op(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(_unbroadcast(g, self.shape))
            other.accumulate_grad(_unbroadcast(-g, other.shape))

        return Tensor.from_op(out_data, (self, other), backward, "sub")

    def __rsub__(self, other):
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(_unbroadcast(g * other.data, self.shape))
            other.accumulate_grad(_unbroadcast(g * self.data, other.shape))

        return Tensor.from_op(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(_unbroadcast(g / other.data, self.shape))
            other.accumulate_grad(
                _unbroadcast(-g * self.data / (other.data * other.data), other.shape)
            )

        return Tensor.from_op(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other):
        return Tensor._coerce(other).__truediv__(self)

    def __neg__(self):
        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(-g)

        return Tensor.from_op(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float):
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * exponent * self.data ** (exponent - 1.0))

        return Tensor.from_op(out_data, (self,), backward, "pow")

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(other.data, -1, -2)
                self.accumulate_grad(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other.accumulate_grad(_unbroadcast(gb, other.shape))

        return Tensor.from_op(out_data, (self, other), backward, "matmul")

    # -- reductions / shape ------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            gg = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                gg = np.expand_dims(gg, axis=axes)
            self.accumulate_grad(np.broadcast_to(gg, self.shape))

        return Tensor.from_op(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.shape[a % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        src_shape = self.shape

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.reshape(src_shape))

        return Tensor.from_op(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inv = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(np.transpose(g, inv))

        return Tensor.from_op(np.transpose(self.data, axes), (self,), backward, "transpose")

    def __getitem__(self, idx):
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, g)
            self.accumulate_grad(full)

        return Tensor.from_op(out_data, (self,), backward, "getitem")

    # -- elementwise non-linearities ----------------------------------------

    def exp(self):
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data)

        return Tensor.from_op(out_data, (self,), backward, "exp")

    def log(self):
        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g / self.data)

        return Tensor.from_op(np.log(self.data), (self,), backward, "log")

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * 0.5 / out_data)

        return Tensor.from_op(out_data, (self,), backward, "sqrt")

    def relu(self):
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * mask)

        return Tensor.from_op(self.data * mask, (self,), backward, "relu")

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward, "sigmoid")

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * (1.0 - out_data * out_data))

        return Tensor.from_op(out_data, (self,), backward, "tanh")

    def clip(self, lo: float, hi: float):
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * mask)

        return Tensor.from_op(np.clip(self.data, lo, hi), (self,), backward, "clip")


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation (Tiramisu's skip connections use this)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(lo, hi)
            t.accumulate_grad(g[tuple(sl)])

    return Tensor.from_op(data, tensors, backward, "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t.accumulate_grad(np.take(g, i, axis=axis))

    return Tensor.from_op(data, tensors, backward, "stack")
