"""Dtype policy for mixed-precision emulation.

The paper trains in FP32 and in mixed precision (FP16 storage/compute with
FP32 master weights, exploiting V100 Tensor Cores).  On the NumPy substrate we
emulate the numerics of both modes: ``float16`` really is IEEE half precision,
so overflow/rounding pathologies the paper reports (e.g. inverse-frequency
loss weights destabilizing FP16 training, Section V-B1) reproduce faithfully.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "FP16",
    "FP32",
    "FP64",
    "Precision",
    "as_numpy_dtype",
    "bytes_per_element",
    "compute_dtype",
]

FP16 = np.dtype(np.float16)
FP32 = np.dtype(np.float32)
FP64 = np.dtype(np.float64)

_VALID = {"fp16", "fp32", "fp64"}

_NP = {"fp16": FP16, "fp32": FP32, "fp64": FP64}
_BYTES = {"fp16": 2, "fp32": 4, "fp64": 8}


class Precision:
    """A named precision mode (``"fp16"``, ``"fp32"`` or ``"fp64"``).

    ``fp16`` mode matches the paper's mixed-precision configuration: tensors
    are stored in half precision, while accumulations inside matmul/conv
    kernels happen in FP32 (as on Tensor Cores) before being rounded back.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if name not in _VALID:
            raise ValueError(f"unknown precision {name!r}; expected one of {sorted(_VALID)}")
        self.name = name

    @property
    def np_dtype(self) -> np.dtype:
        return _NP[self.name]

    @property
    def itemsize(self) -> int:
        return _BYTES[self.name]

    @property
    def is_half(self) -> bool:
        return self.name == "fp16"

    def __eq__(self, other) -> bool:
        if isinstance(other, Precision):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Precision({self.name!r})"


def as_numpy_dtype(precision: str | Precision) -> np.dtype:
    """Return the NumPy dtype used for *storage* in the given precision."""
    name = precision.name if isinstance(precision, Precision) else precision
    if name not in _NP:
        raise ValueError(f"unknown precision {name!r}")
    return _NP[name]


def bytes_per_element(precision: str | Precision) -> int:
    """Storage bytes per element in the given precision."""
    name = precision.name if isinstance(precision, Precision) else precision
    if name not in _BYTES:
        raise ValueError(f"unknown precision {name!r}")
    return _BYTES[name]


def compute_dtype(precision: str | Precision) -> np.dtype:
    """Return the dtype used for *accumulation* inside kernels.

    Tensor Cores accumulate FP16 products into FP32; we mirror that so that
    half-precision training has the same numerical character as the paper's.
    """
    name = precision.name if isinstance(precision, Precision) else precision
    return FP32 if name in ("fp16", "fp32") else FP64
