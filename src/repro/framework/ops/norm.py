"""Batch normalization kernels (per-channel, NCHW).

Batch norm appears in every ResNet bottleneck and Tiramisu dense layer; in
the paper's profiles it dominates the "point-wise" kernel category that is
memory- rather than math-bound (Figure 3).
"""
from __future__ import annotations

import numpy as np

__all__ = ["batchnorm_forward", "batchnorm_backward", "batchnorm_infer"]


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> tuple[np.ndarray, tuple]:
    """Training-mode batch norm over (N,H,W) per channel.

    Returns ``(out, cache)``; statistics are computed in float32 even for
    half inputs (matching cuDNN's CUDNN_BATCHNORM_SPATIAL with FP32 params).
    """
    acc = np.float64 if x.dtype == np.float64 else np.float32
    xa = x.astype(acc, copy=False)
    axes = (0, 2, 3)
    mean = xa.mean(axis=axes, keepdims=True)
    var = xa.var(axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (xa - mean) * inv_std
    g = gamma.reshape(1, -1, 1, 1).astype(acc, copy=False)
    b = beta.reshape(1, -1, 1, 1).astype(acc, copy=False)
    out = (g * xhat + b).astype(x.dtype, copy=False)
    cache = (xhat, inv_std, g, x.dtype)
    return out, cache


def batchnorm_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass; returns (dx, dgamma, dbeta)."""
    xhat, inv_std, g, in_dtype = cache
    acc = xhat.dtype
    go = grad_out.astype(acc, copy=False)
    axes = (0, 2, 3)
    m = go.shape[0] * go.shape[2] * go.shape[3]
    dbeta = go.sum(axis=axes)
    dgamma = (go * xhat).sum(axis=axes)
    # Standard batch-norm backward, fused form.
    dxhat = go * g
    dx = (
        inv_std
        * (dxhat - dxhat.mean(axis=axes, keepdims=True)
           - xhat * (dxhat * xhat).mean(axis=axes, keepdims=True))
    )
    # Parameter grads stay FP32 (the cuDNN convention) unless running in
    # double precision (gradient-check mode).
    param_dtype = np.float64 if acc == np.float64 else np.float32
    return (dx.astype(in_dtype, copy=False), dgamma.astype(param_dtype),
            dbeta.astype(param_dtype))


def batchnorm_infer(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch norm using running statistics."""
    acc = np.float64 if x.dtype == np.float64 else np.float32
    scale = (gamma / np.sqrt(running_var + eps)).astype(acc)
    shift = (beta - running_mean * scale).astype(acc)
    out = x.astype(acc, copy=False) * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
    return out.astype(x.dtype, copy=False)
