"""Alternative convolution algorithms and an autotuning selector.

Section VI of the paper: "there are multiple algorithmic formulations
available ... TensorFlow dynamically tunes the algorithm choice for best
performance", discovered via cuDNN API tracing (implicit GEMM and direct
convolution in their runs).  We mirror that structure on the NumPy
substrate with three interchangeable forward algorithms:

* ``plan`` — the default production path: cached
  :class:`~repro.framework.ops.plan.ConvPlan` (``as_strided`` im2col into a
  reusable workspace + one batched GEMM);
* ``tap_gemm`` — the legacy kernel: one GEMM-shaped contraction per kernel
  tap (our analogue of cuDNN's implicit GEMM); kept as the reference
  oracle;
* ``im2col`` — naive explicit patch-matrix materialization (fresh
  allocation per call) followed by a single large GEMM;
* ``fft`` — FFT-domain convolution; wins for large kernels at large
  spatial extents.

:class:`ConvAutotuner` times the candidates for each (shape, hyper-params)
signature once and caches the winner, like cuDNN's ``FindAlgorithm``.
All algorithms produce identical results (to float tolerance), which the
test-suite verifies.
"""
from __future__ import annotations

import numpy as np

from ...telemetry.clock import WallClock
from .conv import _acc_dtype
from .conv import conv2d_forward as _plan_forward
from .conv import conv2d_forward_reference as _tap_gemm_forward
from .conv import conv_output_size

__all__ = ["conv2d_im2col", "conv2d_fft", "CONV_BACKENDS", "ConvAutotuner"]


def conv2d_im2col(x: np.ndarray, w: np.ndarray, stride: int = 1,
                  padding: int = 0, dilation: int = 1) -> np.ndarray:
    """Explicit im2col + single GEMM."""
    n, c, h, wi = x.shape
    f, _, kh, kw = w.shape
    oh = conv_output_size(h, kh, stride, padding, dilation)
    ow = conv_output_size(wi, kw, stride, padding, dilation)
    acc = _acc_dtype(x.dtype)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
                ).astype(acc, copy=False)
    # Columns: (N, C*KH*KW, OH*OW)
    cols = np.empty((n, c * kh * kw, oh * ow), dtype=acc)
    idx = 0
    for ci in range(c):
        for u in range(kh):
            for v in range(kw):
                patch = xp[:, ci,
                           u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                           v * dilation : v * dilation + (ow - 1) * stride + 1 : stride]
                cols[:, idx] = patch.reshape(n, -1)
                idx += 1
    wmat = w.reshape(f, c * kh * kw).astype(acc, copy=False)
    out = np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)
    return out.reshape(n, f, oh, ow).astype(x.dtype, copy=False)


def conv2d_fft(x: np.ndarray, w: np.ndarray, stride: int = 1,
               padding: int = 0, dilation: int = 1) -> np.ndarray:
    """FFT-domain convolution (stride/dilation applied by subsampling).

    Correlation = convolution with the flipped kernel; computed per
    (output-channel, input-channel) pair in the frequency domain with real
    FFTs, then strided/subsampled to the requested geometry.
    """
    from scipy import fft as sfft

    n, c, h, wi = x.shape
    f, _, kh, kw = w.shape
    oh = conv_output_size(h, kh, stride, padding, dilation)
    ow = conv_output_size(wi, kw, stride, padding, dilation)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
                ).astype(np.float64, copy=False)
    hp, wp = xp.shape[2], xp.shape[3]
    # Embed the dilated kernel in a full-size zero canvas.
    eff_h = dilation * (kh - 1) + 1
    eff_w = dilation * (kw - 1) + 1
    kernel = np.zeros((f, c, eff_h, eff_w))
    kernel[:, :, ::dilation, ::dilation] = w.astype(np.float64, copy=False)
    fft_h, fft_w = hp, wp
    X = sfft.rfft2(xp, s=(fft_h, fft_w))              # (N, C, H, Wf)
    K = sfft.rfft2(kernel[:, :, ::-1, ::-1], s=(fft_h, fft_w))  # flipped
    # Sum over input channels in the frequency domain.
    Y = np.einsum("nchw,fchw->nfhw", X, K, optimize=True)
    y_full = sfft.irfft2(Y, s=(fft_h, fft_w))
    # 'full'-style alignment: valid outputs start at the kernel footprint.
    start_h = eff_h - 1
    start_w = eff_w - 1
    y = y_full[:, :, start_h : start_h + (oh - 1) * stride + 1 : stride,
               start_w : start_w + (ow - 1) * stride + 1 : stride]
    return y.astype(x.dtype, copy=False)


CONV_BACKENDS = {
    "plan": _plan_forward,
    "tap_gemm": _tap_gemm_forward,
    "im2col": conv2d_im2col,
    "fft": conv2d_fft,
}


class ConvAutotuner:
    """Times the candidate algorithms per problem signature, caches winners.

    Mirrors cuDNN's FindAlgorithm / TensorFlow's autotune: the first call for
    a given (input shape, weight shape, stride, padding, dilation) benchmarks
    every backend; later calls dispatch straight to the cached choice.
    """

    def __init__(self, backends: dict | None = None, warmup: int = 0,
                 repeats: int = 1, clock=None):
        self.backends = dict(CONV_BACKENDS if backends is None else backends)
        if not self.backends:
            raise ValueError("need at least one backend")
        self.warmup = int(warmup)
        self.repeats = max(int(repeats), 1)
        # Benchmark timing must be *real* elapsed time even when a
        # simulated telemetry clock is active, so the default is an
        # explicit WallClock rather than the session clock.
        self.clock = clock if clock is not None else WallClock()
        self.cache: dict[tuple, str] = {}
        self.timings: dict[tuple, dict[str, float]] = {}

    @staticmethod
    def _signature(x, w, stride, padding, dilation) -> tuple:
        return (x.shape, w.shape, stride, padding, dilation, str(x.dtype))

    def select(self, x: np.ndarray, w: np.ndarray, stride: int = 1,
               padding: int = 0, dilation: int = 1) -> str:
        """Return the fastest backend name for this problem (benchmarking
        on first sight)."""
        sig = self._signature(x, w, stride, padding, dilation)
        if sig in self.cache:
            return self.cache[sig]
        times: dict[str, float] = {}
        for name, fn in self.backends.items():
            for _ in range(self.warmup):
                fn(x, w, stride, padding, dilation)
            t0 = self.clock.now()
            for _ in range(self.repeats):
                fn(x, w, stride, padding, dilation)
            times[name] = (self.clock.now() - t0) / self.repeats
        winner = min(times, key=times.get)
        self.cache[sig] = winner
        self.timings[sig] = times
        return winner

    def __call__(self, x: np.ndarray, w: np.ndarray, stride: int = 1,
                 padding: int = 0, dilation: int = 1) -> np.ndarray:
        """Autotuned convolution forward."""
        name = self.select(x, w, stride, padding, dilation)
        return self.backends[name](x, w, stride, padding, dilation)
