"""Fused inference kernels: conv + bias + ReLU, and scale-shift + ReLU.

Inference has no autodiff bookkeeping to respect, so adjacent point-wise
epilogues can ride the convolution GEMM instead of making their own passes
over the activation tensor.  Two fusions cover the repo's networks:

* :func:`conv2d_bias_relu_forward` — the planned conv GEMM with the bias
  add and ReLU applied in the float32 accumulation buffer before the one
  round-trip back to the storage dtype (cuDNN's
  ``cudnnConvolutionBiasActivationForward``).  With BatchNorm folded into
  the weights (:mod:`repro.framework.fusion`), a Conv→BN→ReLU block
  collapses into this single kernel.
* :func:`scale_shift_relu` — per-channel ``relu(s * x + t)`` in one pass;
  the inference form of BatchNorm→ReLU chains that *cannot* be folded into
  a convolution (pre-activation blocks like Tiramisu's dense layers).
"""
from __future__ import annotations

import numpy as np

from .plan import get_conv_plan

__all__ = ["conv2d_bias_relu_forward", "scale_shift_relu"]


def conv2d_bias_relu_forward(
    x: np.ndarray,
    w: np.ndarray,
    bias: np.ndarray | None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    relu: bool = True,
) -> np.ndarray:
    """Planned conv with the bias/ReLU epilogue fused into the GEMM buffer."""
    plan = get_conv_plan(x.shape, w.shape, stride, padding, dilation, x.dtype)
    return plan.forward(x, w, bias=bias, relu=relu)


def scale_shift_relu(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                     relu: bool = True) -> np.ndarray:
    """Per-channel ``relu(scale * x + shift)`` over NCHW in one pass.

    ``scale``/``shift`` are (C,) float32; the result keeps ``x``'s dtype.
    """
    s = scale.reshape(1, -1, 1, 1)
    t = shift.reshape(1, -1, 1, 1)
    out = x * s
    out += t
    if relu:
        np.maximum(out, 0, out=out)
    return out.astype(x.dtype, copy=False)
