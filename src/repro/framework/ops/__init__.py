"""Raw NumPy kernels (forward + backward) used by the layer library."""
from .backends import CONV_BACKENDS, ConvAutotuner, conv2d_fft, conv2d_im2col
from .conv import (
    conv2d_backward_input,
    conv2d_backward_input_reference,
    conv2d_backward_weight,
    conv2d_backward_weight_reference,
    conv2d_flops,
    conv2d_forward,
    conv2d_forward_reference,
    conv_output_size,
    conv_transpose_output_size,
)
from .depthwise import (
    depthwise_conv2d_backward_input,
    depthwise_conv2d_backward_weight,
    depthwise_conv2d_flops,
    depthwise_conv2d_forward,
    depthwise_conv2d_forward_reference,
)
from .fused import conv2d_bias_relu_forward, scale_shift_relu
from .norm import batchnorm_backward, batchnorm_forward, batchnorm_infer
from .plan import (
    ConvPlan,
    DepthwiseConvPlan,
    PlanCache,
    clear_plan_cache,
    get_conv_plan,
    get_depthwise_plan,
    plan_cache_stats,
)
from .pool import (
    avgpool2d_backward,
    avgpool2d_forward,
    maxpool2d_backward,
    maxpool2d_forward,
)
from .shape import (
    bilinear_upsample_backward,
    bilinear_upsample_forward,
    crop2d,
    pad2d_backward,
    pad2d_forward,
)

__all__ = [
    "conv2d_forward",
    "conv2d_forward_reference",
    "conv2d_backward_input_reference",
    "conv2d_backward_weight_reference",
    "depthwise_conv2d_forward_reference",
    "conv2d_bias_relu_forward",
    "scale_shift_relu",
    "ConvPlan",
    "DepthwiseConvPlan",
    "PlanCache",
    "get_conv_plan",
    "get_depthwise_plan",
    "plan_cache_stats",
    "clear_plan_cache",
    "CONV_BACKENDS",
    "ConvAutotuner",
    "conv2d_im2col",
    "conv2d_fft",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward_input",
    "depthwise_conv2d_backward_weight",
    "depthwise_conv2d_flops",
    "conv2d_backward_input",
    "conv2d_backward_weight",
    "conv2d_flops",
    "conv_output_size",
    "conv_transpose_output_size",
    "batchnorm_forward",
    "batchnorm_backward",
    "batchnorm_infer",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "pad2d_forward",
    "pad2d_backward",
    "crop2d",
    "bilinear_upsample_forward",
    "bilinear_upsample_backward",
]
