"""Cached convolution execution plans: ``as_strided`` im2col + one GEMM.

The paper's single-GPU numbers (Section VI, Figures 2-3) are won at the
kernel level: cuDNN lowers every convolution to an implicit GEMM whose
geometry is *planned once* per problem shape (``cudnnFindConvolution...``)
and replayed every step.  The legacy NumPy kernels in :mod:`.conv` instead
re-derive everything per call and issue one small contraction per kernel
tap — K*K einsum round-trips over strided views, each too skinny for BLAS
to reach peak.

:class:`ConvPlan` is the cuDNN-style answer on the NumPy substrate.  For a
fixed problem signature (input shape, weight shape, stride, padding,
dilation, dtype) it precomputes:

* the output geometry and the padded-input geometry;
* the ``as_strided`` im2col view strides that expose every receptive field
  without copying;
* reusable workspace buffers — the zero-initialised padded input (only its
  interior is rewritten per step, so the pad is applied by *construction*,
  not by ``np.pad``) and the ``(N, C*KH*KW, OH*OW)`` column matrix.

All three conv derivatives then lower to a single batched GEMM:

* forward:          ``(F, CKK) @ (N, CKK, P)            -> (N, F, P)``
* weight gradient:  ``(N, F, P) @ (N, P, CKK)  summed N -> (F, CKK)``
* input gradient:   ``(CKK, F) @ (N, F, P)              -> (N, CKK, P)``
  followed by K*K cheap strided scatter-adds (col2im).

Plans are cached in a bounded LRU keyed on the problem signature
(:func:`get_conv_plan`); layers additionally hold their *own* plans so the
column workspace survives from a layer's forward to its weight gradient
within a step (see :meth:`ConvPlan.columns_for`), eliminating the double
pad + double im2col the legacy kernels performed.

Mixed precision follows the Tensor-Core contract of the legacy kernels:
half inputs are promoted once into the float32 workspace, every GEMM
accumulates in float32, and only the final result is rounded back.

Workspaces make plans stateful: they are *caches*, not model state — a
deep-copied plan starts cold (``__deepcopy__``), and the version token
returned by :meth:`im2col` lets a caller detect that its columns were
overwritten by a later fill and transparently recompute.
"""
from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..dtypes import FP16, FP32

__all__ = [
    "ConvPlan",
    "DepthwiseConvPlan",
    "PlanCache",
    "get_conv_plan",
    "get_depthwise_plan",
    "plan_cache_stats",
    "clear_plan_cache",
]


def _out_size(size: int, kernel: int, stride: int, padding: int, dilation: int) -> int:
    """Output extent along one spatial dim (floor convention)."""
    eff = dilation * (kernel - 1) + 1
    out = (size + 2 * padding - eff) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv produces empty output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding} dilation={dilation}"
        )
    return out


def _acc_dtype(dtype) -> np.dtype:
    """GEMM accumulation dtype: FP16 accumulates in FP32 (Tensor-Core style)."""
    dtype = np.dtype(dtype)
    return FP32 if dtype == FP16 else dtype


class _PlanBase:
    """Shared geometry + workspace logic for dense and depthwise plans."""

    def __init__(self, x_shape, kh, kw, stride, padding, dilation, dtype):
        self.x_shape = tuple(int(s) for s in x_shape)
        n, c, h, w = self.x_shape
        self.kh, self.kw = int(kh), int(kw)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dilation = int(dilation)
        self.dtype = np.dtype(dtype)
        self.acc = _acc_dtype(self.dtype)
        self.oh = _out_size(h, self.kh, self.stride, self.padding, self.dilation)
        self.ow = _out_size(w, self.kw, self.stride, self.padding, self.dilation)
        self.hp = h + 2 * self.padding
        self.wp = w + 2 * self.padding
        #: Observability: how many times this plan (re)applied its padding
        #: and how many times it filled the column workspace.  The pad-once
        #: invariant tests pin these down.
        self.pad_fills = 0
        self.col_fills = 0
        self.gemms = 0
        #: Monotonic token identifying the current contents of the column
        #: workspace; bumped on every :meth:`im2col` fill.
        self.version = 0
        self._xp: np.ndarray | None = None
        self._cols: np.ndarray | None = None
        self._dcols: np.ndarray | None = None
        self._tap: np.ndarray | None = None

    # -- copying ----------------------------------------------------------

    def __deepcopy__(self, memo):
        """Plans are pure caches: a copy starts cold (no workspaces)."""
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(
            {k: v for k, v in self.__dict__.items()
             if k not in ("_xp", "_cols", "_dcols", "_tap")})
        clone._xp = clone._cols = clone._dcols = clone._tap = None
        clone.version = 0
        return clone

    # -- padding ----------------------------------------------------------

    def padded_input(self, x: np.ndarray) -> np.ndarray:
        """Padded, accumulation-dtype view of ``x`` (workspace-backed).

        With padding the zero border is written once at workspace creation;
        each call only rewrites the interior, so padding costs one strided
        copy instead of an allocation + full copy per call (and per
        forward/backward pair, when the caller shares the fill through
        :meth:`columns_for`).
        """
        n, c, h, w = self.x_shape
        if x.shape != self.x_shape:
            raise ValueError(f"plan expects input {self.x_shape}, got {x.shape}")
        if self.padding == 0:
            if x.dtype == self.acc:
                return x
            if self._xp is None:
                self._xp = np.empty((n, c, h, w), dtype=self.acc)
            np.copyto(self._xp, x)
            return self._xp
        if self._xp is None:
            self._xp = np.zeros((n, c, self.hp, self.wp), dtype=self.acc)
        p = self.padding
        self._xp[:, :, p:p + h, p:p + w] = x
        self.pad_fills += 1
        return self._xp

    def _receptive_view(self, xp: np.ndarray) -> np.ndarray:
        """(N, C, KH, KW, OH, OW) read-only view of all receptive fields."""
        n, c = xp.shape[0], xp.shape[1]
        sn, sc, sh, sw = xp.strides
        return np.lib.stride_tricks.as_strided(
            xp,
            (n, c, self.kh, self.kw, self.oh, self.ow),
            (sn, sc, sh * self.dilation, sw * self.dilation,
             sh * self.stride, sw * self.stride),
            writeable=False,
        )

    def _fill_cols(self, x: np.ndarray, cols_6d_shape) -> int:
        xp = self.padded_input(x)
        view = self._receptive_view(xp)
        if self._cols is None:
            self._cols = np.empty(self.cols_shape, dtype=self.acc)
        np.copyto(self._cols.reshape(cols_6d_shape), view)
        self.col_fills += 1
        self.version += 1
        return self.version

    def columns_for(self, token: int, x: np.ndarray) -> np.ndarray:
        """Column matrix for ``x``, reusing the workspace when still valid.

        ``token`` is the version returned by the :meth:`im2col` call whose
        result the caller wants back.  If the workspace has since been
        refilled (same-shape layer re-run, interleaved inference), the
        columns are transparently recomputed from ``x`` — correctness never
        depends on the cache.
        """
        if self._cols is None or self.version != token:
            self.im2col(x)
        return self._cols

    def _col2im(self, d6: np.ndarray, dxp: np.ndarray) -> None:
        """Scatter-add (N,C,KH,KW,OH,OW) tap gradients into the padded grid."""
        s, d = self.stride, self.dilation
        for u in range(self.kh):
            for v in range(self.kw):
                dxp[:, :, u * d: u * d + (self.oh - 1) * s + 1: s,
                    v * d: v * d + (self.ow - 1) * s + 1: s] += d6[:, :, u, v]


class ConvPlan(_PlanBase):
    """Execution plan for a dense 2-D convolution problem signature."""

    def __init__(self, x_shape, w_shape, stride=1, padding=0, dilation=1,
                 dtype=FP32):
        f, cw, kh, kw = (int(s) for s in w_shape)
        super().__init__(x_shape, kh, kw, stride, padding, dilation, dtype)
        n, c, h, w = self.x_shape
        if cw != c:
            raise ValueError(f"channel mismatch: input has {c}, weight expects {cw}")
        self.w_shape = (f, cw, kh, kw)
        self.out_channels = f
        self.cols_shape = (n, c * kh * kw, self.oh * self.ow)

    @property
    def key(self) -> tuple:
        return (self.x_shape, self.w_shape, self.stride, self.padding,
                self.dilation, self.dtype.str)

    # -- im2col ------------------------------------------------------------

    def im2col(self, x: np.ndarray) -> int:
        """Fill the column workspace from ``x``; returns the version token."""
        n, c, _, _ = self.x_shape
        return self._fill_cols(x, (n, c, self.kh, self.kw, self.oh, self.ow))

    # -- the three GEMMs ---------------------------------------------------

    def forward_from_cols(self, cols: np.ndarray, w: np.ndarray,
                          bias: np.ndarray | None = None,
                          relu: bool = False) -> np.ndarray:
        """(F, CKK) @ cols -> output; optional fused bias-add + ReLU.

        The bias is added and the ReLU applied *in the accumulation buffer*
        before the single round-trip back to the storage dtype — the NumPy
        rendition of a fused conv+bias+activation kernel epilogue.
        """
        n = self.x_shape[0]
        f = self.out_channels
        wmat = w.astype(self.acc, copy=False).reshape(f, -1)
        out = np.matmul(wmat, cols)              # (N, F, P)
        if bias is not None:
            out += bias.astype(self.acc, copy=False).reshape(1, f, 1)
        if relu:
            np.maximum(out, 0, out=out)
        self.gemms += 1
        return out.reshape(n, f, self.oh, self.ow).astype(self.dtype, copy=False)

    def forward(self, x: np.ndarray, w: np.ndarray,
                bias: np.ndarray | None = None, relu: bool = False) -> np.ndarray:
        token = self.im2col(x)
        return self.forward_from_cols(self.columns_for(token, x), w,
                                      bias=bias, relu=relu)

    def backward_weight_from_cols(self, grad_out: np.ndarray,
                                  cols: np.ndarray) -> np.ndarray:
        """wgrad as one batched GEMM; accumulates (and returns) in FP32
        for half inputs, exactly like the legacy kernel."""
        n = self.x_shape[0]
        f = self.out_channels
        g = grad_out.astype(self.acc, copy=False).reshape(n, f, -1)
        dw = np.matmul(g, cols.transpose(0, 2, 1)).sum(axis=0)
        self.gemms += 1
        return dw.reshape(self.w_shape)

    def backward_weight(self, grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
        token = self.im2col(x)
        return self.backward_weight_from_cols(grad_out, self.columns_for(token, x))

    def backward_input(self, grad_out: np.ndarray, w: np.ndarray) -> np.ndarray:
        """dgrad: one GEMM into the column workspace, then K*K col2im adds."""
        n, c, h, wi = self.x_shape
        f = self.out_channels
        g = grad_out.astype(self.acc, copy=False).reshape(n, f, -1)
        wmat = w.astype(self.acc, copy=False).reshape(f, -1)
        if self._dcols is None:
            self._dcols = np.empty(self.cols_shape, dtype=self.acc)
        np.matmul(wmat.T, g, out=self._dcols)
        self.gemms += 1
        dxp = np.zeros((n, c, self.hp, self.wp), dtype=self.acc)
        self._col2im(self._dcols.reshape(n, c, self.kh, self.kw, self.oh, self.ow),
                     dxp)
        if self.padding:
            p = self.padding
            dxp = dxp[:, :, p:p + h, p:p + wi]
        return dxp.astype(grad_out.dtype, copy=False)


class DepthwiseConvPlan(_PlanBase):
    """Execution plan for per-channel (depthwise) convolution.

    The forward pass is a fused per-tap FMA over the strided receptive-field
    view of the padded workspace: the op is memory-bound (one multiply per
    element), so skipping the im2col materialization beats any GEMM
    formulation — the K*K column copy costs more than the arithmetic it
    feeds.  The weight/input gradients keep the batched per-channel GEMM
    over the tap axis (``(N, C, 1, P) @ (N, C, P, KK)``), where the column
    workspace pays for itself.
    """

    def __init__(self, x_shape, w_shape, stride=1, padding=0, dilation=1,
                 dtype=FP32):
        cw, kh, kw = (int(s) for s in w_shape)
        super().__init__(x_shape, kh, kw, stride, padding, dilation, dtype)
        n, c, h, w = self.x_shape
        if cw != c:
            raise ValueError(f"channel mismatch: input {c}, weight {cw}")
        self.w_shape = (cw, kh, kw)
        self.cols_shape = (n, c, kh * kw, self.oh * self.ow)

    @property
    def key(self) -> tuple:
        return (self.x_shape, self.w_shape, self.stride, self.padding,
                self.dilation, self.dtype.str)

    def im2col(self, x: np.ndarray) -> int:
        n, c, _, _ = self.x_shape
        return self._fill_cols(x, (n, c, self.kh, self.kw, self.oh, self.ow))

    def forward_from_cols(self, cols: np.ndarray, w: np.ndarray) -> np.ndarray:
        n, c, _, _ = self.x_shape
        wa = w.astype(self.acc, copy=False).reshape(1, c, 1, self.kh * self.kw)
        out = np.matmul(wa, cols)                # (N, C, 1, P)
        self.gemms += 1
        return out.reshape(n, c, self.oh, self.ow).astype(self.dtype, copy=False)

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Fused per-tap FMA over the receptive-field view (no im2col).

        The output is a fresh buffer (autograd holds it across the step);
        only the per-tap product scratch is workspace-reused.
        """
        n, c, _, _ = self.x_shape
        view = self._receptive_view(self.padded_input(x))
        wa = w.astype(self.acc, copy=False)
        out = np.empty((n, c, self.oh, self.ow), dtype=self.acc)
        np.multiply(view[:, :, 0, 0], wa[:, 0, 0].reshape(1, c, 1, 1), out=out)
        if self.kh * self.kw > 1:
            if self._tap is None:
                self._tap = np.empty_like(out)
            tmp = self._tap
            for u in range(self.kh):
                for v in range(self.kw):
                    if u == 0 and v == 0:
                        continue
                    np.multiply(view[:, :, u, v],
                                wa[:, u, v].reshape(1, c, 1, 1), out=tmp)
                    np.add(out, tmp, out=out)
        return out.astype(self.dtype, copy=False)

    def backward_weight_from_cols(self, grad_out: np.ndarray,
                                  cols: np.ndarray) -> np.ndarray:
        n, c, _, _ = self.x_shape
        g = grad_out.astype(self.acc, copy=False).reshape(n, c, 1, -1)
        dw = np.matmul(g, cols.transpose(0, 1, 3, 2)).sum(axis=0)
        self.gemms += 1
        return dw.reshape(self.w_shape)

    def backward_weight(self, grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
        token = self.im2col(x)
        return self.backward_weight_from_cols(grad_out, self.columns_for(token, x))

    def backward_input(self, grad_out: np.ndarray, w: np.ndarray) -> np.ndarray:
        n, c, h, wi = self.x_shape
        g = grad_out.astype(self.acc, copy=False).reshape(n, c, 1, -1)
        wa = w.astype(self.acc, copy=False).reshape(1, c, self.kh * self.kw, 1)
        dcols = wa * g                            # (N, C, KK, P)
        dxp = np.zeros((n, c, self.hp, self.wp), dtype=self.acc)
        self._col2im(dcols.reshape(n, c, self.kh, self.kw, self.oh, self.ow),
                     dxp)
        if self.padding:
            p = self.padding
            dxp = dxp[:, :, p:p + h, p:p + wi]
        return dxp.astype(grad_out.dtype, copy=False)


class PlanCache:
    """Bounded LRU of execution plans, keyed on the problem signature.

    Bounding matters because plans own workspaces proportional to
    ``C * K^2`` times the output extent; an unbounded cache on a workload
    with many distinct tile shapes would be a slow memory leak.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._plans: OrderedDict[tuple, _PlanBase] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: tuple, factory) -> _PlanBase:
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        plan = factory()
        self._plans[key] = plan
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan

    def clear(self) -> None:
        self._plans.clear()

    def stats(self) -> dict[str, int]:
        return {"size": len(self._plans), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}


#: Process-wide cache backing the functional conv API.  Layers hold their
#: own plans (so forward/backward workspace sharing cannot be disturbed by
#: other same-shape layers); this cache serves direct kernel calls.
_GLOBAL_PLANS = PlanCache(maxsize=32)


def get_conv_plan(x_shape, w_shape, stride=1, padding=0, dilation=1,
                  dtype=FP32) -> ConvPlan:
    """Fetch (or build) the dense-conv plan for a problem signature."""
    key = (tuple(x_shape), tuple(w_shape), int(stride), int(padding),
           int(dilation), np.dtype(dtype).str, "dense")
    return _GLOBAL_PLANS.get(
        key, lambda: ConvPlan(x_shape, w_shape, stride, padding, dilation, dtype))


def get_depthwise_plan(x_shape, w_shape, stride=1, padding=0, dilation=1,
                       dtype=FP32) -> DepthwiseConvPlan:
    """Fetch (or build) the depthwise-conv plan for a problem signature."""
    key = (tuple(x_shape), tuple(w_shape), int(stride), int(padding),
           int(dilation), np.dtype(dtype).str, "depthwise")
    return _GLOBAL_PLANS.get(
        key, lambda: DepthwiseConvPlan(x_shape, w_shape, stride, padding,
                                       dilation, dtype))


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the process-wide plan cache."""
    return _GLOBAL_PLANS.stats()


def clear_plan_cache() -> None:
    """Drop all cached plans (tests; frees workspace memory)."""
    _GLOBAL_PLANS.clear()
    _GLOBAL_PLANS.hits = _GLOBAL_PLANS.misses = _GLOBAL_PLANS.evictions = 0
