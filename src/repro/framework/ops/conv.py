"""2-D convolution kernels (forward and both backward passes).

Layout is NCHW throughout, matching the paper's cuDNN workloads.  The
public entry points (:func:`conv2d_forward` and both gradients) lower each
problem to a cached :class:`~repro.framework.ops.plan.ConvPlan`: an
``as_strided`` im2col into a reusable workspace followed by a *single*
batched GEMM — the NumPy analogue of cuDNN's implicit-GEMM algorithm that
the paper's API tracing found cuDNN selecting (Section VI).  Stride and
dilation (atrous convolution, the core of the DeepLabv3+ encoder/ASPP) are
both supported.

The pre-plan kernels — one GEMM-shaped contraction per kernel tap — are
kept as ``*_reference`` functions: they are the independent oracle the
equivalence test-suite checks plans against, and the ``tap_gemm`` backend
of the autotuner.

Mixed-precision semantics: inputs may be float16; contractions accumulate in
float32 (Tensor-Core style) and results are rounded back to the input dtype.
"""
from __future__ import annotations

import numpy as np

from ..dtypes import FP16, FP32
from .plan import get_conv_plan

__all__ = [
    "conv2d_forward",
    "conv2d_backward_input",
    "conv2d_backward_weight",
    "conv2d_forward_reference",
    "conv2d_backward_input_reference",
    "conv2d_backward_weight_reference",
    "conv_output_size",
    "conv_transpose_output_size",
    "conv2d_flops",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int, dilation: int) -> int:
    """Output length of a conv along one spatial dim (floor convention)."""
    eff = dilation * (kernel - 1) + 1
    out = (size + 2 * padding - eff) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv produces empty output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding} dilation={dilation}"
        )
    return out


def conv_transpose_output_size(
    size: int, kernel: int, stride: int, padding: int, output_padding: int = 0, dilation: int = 1
) -> int:
    """Output length of a transposed conv along one spatial dim."""
    return (size - 1) * stride - 2 * padding + dilation * (kernel - 1) + 1 + output_padding


def _acc_dtype(dtype: np.dtype) -> np.dtype:
    """Accumulation dtype: FP16 math accumulates in FP32 (Tensor Cores)."""
    return FP32 if dtype == FP16 else np.dtype(dtype)


def conv2d_forward(
    x: np.ndarray,
    w: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Convolve ``x`` (N,C,H,W) with ``w`` (F,C,KH,KW); cross-correlation.

    Returns (N,F,OH,OW) in the dtype of ``x``.  Lowered to a planned
    im2col + single GEMM via the process-wide plan cache.
    """
    plan = get_conv_plan(x.shape, w.shape, stride, padding, dilation, x.dtype)
    return plan.forward(x, w)


def conv2d_backward_input(
    grad_out: np.ndarray,
    w: np.ndarray,
    x_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Gradient of conv2d w.r.t. its input (cuDNN's *dgrad*); planned GEMM."""
    plan = get_conv_plan(x_shape, w.shape, stride, padding, dilation,
                         grad_out.dtype)
    return plan.backward_input(grad_out, w)


def conv2d_backward_weight(
    grad_out: np.ndarray,
    x: np.ndarray,
    w_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Gradient of conv2d w.r.t. the weight (cuDNN's *wgrad*); planned GEMM.

    The weight gradient is accumulated (and returned) in FP32 even for FP16
    activations — exactly what mixed-precision training does so that the
    gradient all-reduce and master-weight update see a usable dynamic range.
    """
    plan = get_conv_plan(x.shape, w_shape, stride, padding, dilation, x.dtype)
    return plan.backward_weight(grad_out, x)


def conv2d_forward_reference(
    x: np.ndarray,
    w: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Pre-plan forward: one GEMM-shaped contraction per kernel tap.

    Kept as the independent oracle for the plan equivalence suite and as
    the autotuner's ``tap_gemm`` backend.
    """
    n, c, h, wi = x.shape
    f, cw, kh, kw = w.shape
    if cw != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {cw}")
    oh = conv_output_size(h, kh, stride, padding, dilation)
    ow = conv_output_size(wi, kw, stride, padding, dilation)
    acc = _acc_dtype(x.dtype)
    if padding:
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xp = x
    xp = xp.astype(acc, copy=False)
    wa = w.astype(acc, copy=False)
    out = np.zeros((n, f, oh, ow), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            # Input window feeding output pixel (i,j) through tap (u,v).
            xs = xp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                    v * dilation : v * dilation + (ow - 1) * stride + 1 : stride]
            out += np.einsum("nchw,fc->nfhw", xs, wa[:, :, u, v], optimize=True)
    return out.astype(x.dtype, copy=False)


def conv2d_backward_input_reference(
    grad_out: np.ndarray,
    w: np.ndarray,
    x_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Pre-plan dgrad: per-tap contractions + scatter (reference oracle)."""
    n, c, h, wi = x_shape
    f, _, kh, kw = w.shape
    _, _, oh, ow = grad_out.shape
    acc = _acc_dtype(grad_out.dtype)
    g = grad_out.astype(acc, copy=False)
    wa = w.astype(acc, copy=False)
    dxp = np.zeros((n, c, h + 2 * padding, wi + 2 * padding), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            contrib = np.einsum("nfhw,fc->nchw", g, wa[:, :, u, v], optimize=True)
            dxp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                v * dilation : v * dilation + (ow - 1) * stride + 1 : stride] += contrib
    if padding:
        dxp = dxp[:, :, padding:-padding, padding:-padding]
    return dxp.astype(grad_out.dtype, copy=False)


def conv2d_backward_weight_reference(
    grad_out: np.ndarray,
    x: np.ndarray,
    w_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Pre-plan wgrad: per-tap contractions (reference oracle); FP32 out."""
    n, c, h, wi = x.shape
    f, cw, kh, kw = w_shape
    _, _, oh, ow = grad_out.shape
    acc = _acc_dtype(grad_out.dtype)
    if padding:
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xp = x
    xp = xp.astype(acc, copy=False)
    g = grad_out.astype(acc, copy=False)
    dw = np.zeros((f, c, kh, kw), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            xs = xp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                    v * dilation : v * dilation + (ow - 1) * stride + 1 : stride]
            dw[:, :, u, v] = np.einsum("nfhw,nchw->fc", g, xs, optimize=True)
    return dw


def conv2d_flops(
    batch: int,
    in_channels: int,
    out_channels: int,
    out_h: int,
    out_w: int,
    kernel_h: int,
    kernel_w: int,
) -> int:
    """FLOPs of one direct convolution, counting multiplies and adds.

    Matches the paper's worked example (Section VI): a 3x3 conv on 1152x768
    with 48 input / 32 output channels at batch 2 is
    ``3*3*1152*768*48*32*2*2 = 48.9e9`` FLOPs.
    """
    return 2 * batch * in_channels * out_channels * out_h * out_w * kernel_h * kernel_w
