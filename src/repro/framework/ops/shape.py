"""Shape-manipulating kernels: padding, cropping, bilinear interpolation.

Bilinear upsampling is the cheap alternative the standard DeepLabv3+ decoder
uses; the paper replaces it with learned full-resolution deconvolutions, but
we keep bilinear available so both decoder variants can be compared (an
ablation the modified architecture implies).
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "pad2d_forward",
    "pad2d_backward",
    "crop2d",
    "bilinear_upsample_forward",
    "bilinear_upsample_backward",
]


def pad2d_forward(x: np.ndarray, pad: tuple[int, int, int, int]) -> np.ndarray:
    """Zero-pad (N,C,H,W) by (top, bottom, left, right)."""
    t, b, l, r = pad
    return np.pad(x, ((0, 0), (0, 0), (t, b), (l, r)))


def pad2d_backward(grad_out: np.ndarray, pad: tuple[int, int, int, int]) -> np.ndarray:
    t, b, l, r = pad
    h, w = grad_out.shape[2], grad_out.shape[3]
    return grad_out[:, :, t : h - b, l : w - r]


def crop2d(x: np.ndarray, target_h: int, target_w: int) -> np.ndarray:
    """Center-crop spatial dims down to (target_h, target_w)."""
    h, w = x.shape[2], x.shape[3]
    if h < target_h or w < target_w:
        raise ValueError(f"cannot crop {h}x{w} to {target_h}x{target_w}")
    dt = (h - target_h) // 2
    dl = (w - target_w) // 2
    return x[:, :, dt : dt + target_h, dl : dl + target_w]


def _bilinear_weights(in_size: int, out_size: int, align_corners: bool):
    """Source indices and blend weights for 1-D bilinear resampling."""
    if out_size == 1:
        pos = np.zeros(1)
    elif align_corners:
        pos = np.linspace(0.0, in_size - 1, out_size)
    else:
        scale = in_size / out_size
        pos = np.maximum((np.arange(out_size) + 0.5) * scale - 0.5, 0.0)
    lo = np.floor(pos).astype(np.int64)
    lo = np.minimum(lo, in_size - 1)
    hi = np.minimum(lo + 1, in_size - 1)
    frac = (pos - lo).astype(np.float32)
    return lo, hi, frac


def bilinear_upsample_forward(
    x: np.ndarray, out_h: int, out_w: int, align_corners: bool = False
) -> np.ndarray:
    """Resize (N,C,H,W) to (N,C,out_h,out_w) with bilinear interpolation."""
    n, c, h, w = x.shape
    ylo, yhi, yf = _bilinear_weights(h, out_h, align_corners)
    xlo, xhi, xf = _bilinear_weights(w, out_w, align_corners)
    acc = np.float64 if x.dtype == np.float64 else np.float32
    xa = x.astype(acc, copy=False)
    yf2 = yf[:, None]
    xf2 = xf[None, :]
    top = xa[:, :, ylo][:, :, :, xlo] * (1 - xf2) + xa[:, :, ylo][:, :, :, xhi] * xf2
    bot = xa[:, :, yhi][:, :, :, xlo] * (1 - xf2) + xa[:, :, yhi][:, :, :, xhi] * xf2
    out = top * (1 - yf2) + bot * yf2
    return out.astype(x.dtype, copy=False)


def bilinear_upsample_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    align_corners: bool = False,
) -> np.ndarray:
    """Adjoint of bilinear resize: scatter-add the four blend contributions."""
    n, c, h, w = x_shape
    _, _, oh, ow = grad_out.shape
    ylo, yhi, yf = _bilinear_weights(h, oh, align_corners)
    xlo, xhi, xf = _bilinear_weights(w, ow, align_corners)
    acc = np.float64 if grad_out.dtype == np.float64 else np.float32
    g = grad_out.astype(acc, copy=False)
    dx = np.zeros((n, c, h, w), dtype=acc)
    yf2 = yf[:, None]
    xf2 = xf[None, :]
    for ys, ywt in ((ylo, 1 - yf2), (yhi, yf2)):
        for xs, xwt in ((xlo, 1 - xf2), (xhi, xf2)):
            contrib = g * (ywt * xwt)
            # Scatter along W then H via add.at on the flattened index grid.
            yy = np.repeat(ys, ow)
            xx = np.tile(xs, oh)
            flat = contrib.reshape(n, c, oh * ow)
            np.add.at(dx.reshape(n, c, h * w), (slice(None), slice(None), yy * w + xx), flat)
    return dx.astype(grad_out.dtype, copy=False)
