"""Pooling kernels (max pooling with overlap support, average pooling).

The DeepLabv3+ encoder uses a 3x3/2 max pool after the stem conv; Tiramisu's
transition-down blocks use 2x2/2 max pools.  Both are overlapping/ or
non-overlapping cases of the same windowed kernel implemented here.
"""
from __future__ import annotations

import numpy as np

from .conv import conv_output_size

__all__ = [
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
]


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, padding: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Max pool (N,C,H,W) -> (out, argmax_tap).

    ``argmax_tap`` holds, per output pixel, the flat tap index u*kernel+v of
    the window element that won, so the backward pass can route gradients to
    exactly one input (ties broken toward the first tap, as cuDNN does).
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, padding, 1)
    ow = conv_output_size(w, kernel, stride, padding, 1)
    if padding:
        fill = -np.inf if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                    constant_values=fill)
    else:
        xp = x
    out = np.full((n, c, oh, ow), -np.inf, dtype=xp.dtype)
    arg = np.zeros((n, c, oh, ow), dtype=np.int8)
    for u in range(kernel):
        for v in range(kernel):
            xs = xp[:, :, u : u + (oh - 1) * stride + 1 : stride,
                    v : v + (ow - 1) * stride + 1 : stride]
            better = xs > out
            out = np.where(better, xs, out)
            arg = np.where(better, np.int8(u * kernel + v), arg)
    return out.astype(x.dtype, copy=False), arg


def maxpool2d_backward(
    grad_out: np.ndarray,
    arg: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int = 0,
) -> np.ndarray:
    """Route each output gradient to the winning input position."""
    n, c, h, w = x_shape
    _, _, oh, ow = grad_out.shape
    dxp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_out.dtype)
    for u in range(kernel):
        for v in range(kernel):
            mask = arg == (u * kernel + v)
            if not mask.any():
                continue
            view = dxp[:, :, u : u + (oh - 1) * stride + 1 : stride,
                       v : v + (ow - 1) * stride + 1 : stride]
            # Overlapping windows may route several outputs to one input, so
            # accumulate rather than assign.
            view += np.where(mask, grad_out, 0)
    if padding:
        dxp = dxp[:, :, padding:-padding, padding:-padding]
    return dxp


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
    """Average pool (N,C,H,W); padded elements count toward the divisor."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, padding, 1)
    ow = conv_output_size(w, kernel, stride, padding, 1)
    if padding:
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xp = x
    acc = np.zeros((n, c, oh, ow), dtype=np.float64 if x.dtype == np.float64 else np.float32)
    for u in range(kernel):
        for v in range(kernel):
            acc += xp[:, :, u : u + (oh - 1) * stride + 1 : stride,
                      v : v + (ow - 1) * stride + 1 : stride]
    return (acc / (kernel * kernel)).astype(x.dtype, copy=False)


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int = 0,
) -> np.ndarray:
    """Spread each output gradient uniformly over its window."""
    n, c, h, w = x_shape
    _, _, oh, ow = grad_out.shape
    share = grad_out / (kernel * kernel)
    dxp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_out.dtype)
    for u in range(kernel):
        for v in range(kernel):
            dxp[:, :, u : u + (oh - 1) * stride + 1 : stride,
                v : v + (ow - 1) * stride + 1 : stride] += share
    if padding:
        dxp = dxp[:, :, padding:-padding, padding:-padding]
    return dxp
