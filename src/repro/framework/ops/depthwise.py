"""Depthwise convolution kernels.

The DeepLabv3+ paper the authors build on is titled "Encoder-Decoder with
Atrous *Separable* Convolution": its stock form factorizes 3x3 convs into a
per-channel (depthwise) spatial conv followed by a 1x1 pointwise conv,
cutting FLOPs by ~k^2.  The SC18 paper's modified network keeps dense convs
(better Tensor-Core utilization), making separable-vs-dense a natural
ablation — implemented here so the trade can be measured.
"""
from __future__ import annotations

import numpy as np

from ..dtypes import FP16, FP32
from .conv import conv_output_size
from .plan import get_depthwise_plan

__all__ = [
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward_input",
    "depthwise_conv2d_backward_weight",
    "depthwise_conv2d_forward_reference",
    "depthwise_conv2d_backward_input_reference",
    "depthwise_conv2d_backward_weight_reference",
    "depthwise_conv2d_flops",
]


def _acc_dtype(dtype: np.dtype) -> np.dtype:
    return FP32 if dtype == FP16 else np.dtype(dtype)


def depthwise_conv2d_forward(
    x: np.ndarray, w: np.ndarray, stride: int = 1, padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Per-channel convolution: x (N,C,H,W), w (C,KH,KW) -> (N,C,OH,OW).

    Lowered to a planned im2col + one batched per-channel GEMM.
    """
    plan = get_depthwise_plan(x.shape, w.shape, stride, padding, dilation,
                              x.dtype)
    return plan.forward(x, w)


def depthwise_conv2d_backward_input(
    grad_out: np.ndarray, w: np.ndarray, x_shape: tuple[int, int, int, int],
    stride: int = 1, padding: int = 0, dilation: int = 1,
) -> np.ndarray:
    """Planned depthwise dgrad (broadcast product + col2im scatter)."""
    plan = get_depthwise_plan(x_shape, w.shape, stride, padding, dilation,
                              grad_out.dtype)
    return plan.backward_input(grad_out, w)


def depthwise_conv2d_backward_weight(
    grad_out: np.ndarray, x: np.ndarray, w_shape: tuple[int, int, int],
    stride: int = 1, padding: int = 0, dilation: int = 1,
) -> np.ndarray:
    """Planned depthwise wgrad (single batched GEMM; FP32 accumulation)."""
    plan = get_depthwise_plan(x.shape, w_shape, stride, padding, dilation,
                              x.dtype)
    return plan.backward_weight(grad_out, x)


def depthwise_conv2d_forward_reference(
    x: np.ndarray, w: np.ndarray, stride: int = 1, padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Pre-plan per-tap loop, kept as the equivalence-suite oracle."""
    n, c, h, wi = x.shape
    cw, kh, kw = w.shape
    if cw != c:
        raise ValueError(f"channel mismatch: input {c}, weight {cw}")
    oh = conv_output_size(h, kh, stride, padding, dilation)
    ow = conv_output_size(wi, kw, stride, padding, dilation)
    acc = _acc_dtype(x.dtype)
    xp = (np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
          if padding else x).astype(acc, copy=False)
    wa = w.astype(acc, copy=False)
    out = np.zeros((n, c, oh, ow), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            xs = xp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                    v * dilation : v * dilation + (ow - 1) * stride + 1 : stride]
            out += xs * wa[:, u, v][None, :, None, None]
    return out.astype(x.dtype, copy=False)


def depthwise_conv2d_backward_input_reference(
    grad_out: np.ndarray, w: np.ndarray, x_shape: tuple[int, int, int, int],
    stride: int = 1, padding: int = 0, dilation: int = 1,
) -> np.ndarray:
    n, c, h, wi = x_shape
    cw, kh, kw = w.shape
    _, _, oh, ow = grad_out.shape
    acc = _acc_dtype(grad_out.dtype)
    g = grad_out.astype(acc, copy=False)
    wa = w.astype(acc, copy=False)
    dxp = np.zeros((n, c, h + 2 * padding, wi + 2 * padding), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            dxp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                v * dilation : v * dilation + (ow - 1) * stride + 1 : stride] += (
                g * wa[:, u, v][None, :, None, None]
            )
    if padding:
        dxp = dxp[:, :, padding:-padding, padding:-padding]
    return dxp.astype(grad_out.dtype, copy=False)


def depthwise_conv2d_backward_weight_reference(
    grad_out: np.ndarray, x: np.ndarray, w_shape: tuple[int, int, int],
    stride: int = 1, padding: int = 0, dilation: int = 1,
) -> np.ndarray:
    n, c, h, wi = x.shape
    cw, kh, kw = w_shape
    _, _, oh, ow = grad_out.shape
    acc = _acc_dtype(grad_out.dtype)
    xp = (np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
          if padding else x).astype(acc, copy=False)
    g = grad_out.astype(acc, copy=False)
    dw = np.zeros((c, kh, kw), dtype=acc)
    for u in range(kh):
        for v in range(kw):
            xs = xp[:, :, u * dilation : u * dilation + (oh - 1) * stride + 1 : stride,
                    v * dilation : v * dilation + (ow - 1) * stride + 1 : stride]
            dw[:, u, v] = (g * xs).sum(axis=(0, 2, 3))
    return dw


def depthwise_conv2d_flops(batch: int, channels: int, out_h: int, out_w: int,
                           kernel_h: int, kernel_w: int) -> int:
    """FLOPs: one multiply-add per tap per output element per channel."""
    return 2 * batch * channels * out_h * out_w * kernel_h * kernel_w
