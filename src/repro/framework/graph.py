"""Operation-graph capture for FLOP and memory-traffic analysis.

The paper (Section VI) computes FLOP/s by traversing the TensorFlow operation
graph, counting the floating-point work of every node, and combining it with
measured step times.  We reproduce the same methodology: every layer in
:mod:`repro.framework.layers` knows how to *trace* itself, emitting one
:class:`KernelRecord` per GPU kernel it would launch (forward convolution,
dgrad, wgrad, point-wise ops, copies, casts), with exact FLOP counts and
DRAM traffic estimates derived from tensor shapes.

Because networks are written against a probe-or-tensor polymorphic interface,
the *same* ``forward`` code produces either real activations (NumPy) or the
kernel inventory (symbolic), so the analysis can run at the paper's full
1152x768x16 resolution without doing any arithmetic.

Kernel categories follow the paper's Figure 3 grouping::

    conv_fwd        forward convolutions (incl. deconvolutions)
    pointwise_fwd   forward bias/BN/ReLU/dropout/pool/elementwise
    conv_bwd        backward convolutions (dgrad + wgrad)
    pointwise_bwd   backward point-wise kernels
    optimizer       per-parameter update kernels
    copy            copies and transposes (concat and layout changes)
    allreduce       gradient reduction kernels (NCCL)
    cast            FP16<->FP32 type conversions
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .dtypes import Precision, bytes_per_element

__all__ = ["KernelRecord", "GraphTracer", "ShapeProbe", "GraphAnalysis", "CATEGORIES"]

CATEGORIES = (
    "conv_fwd",
    "pointwise_fwd",
    "conv_bwd",
    "pointwise_bwd",
    "optimizer",
    "copy",
    "allreduce",
    "cast",
)


@dataclass
class KernelRecord:
    """One (class of) GPU kernel launch in a training step.

    ``algorithm`` names the lowering the eager kernels actually execute for
    this record (e.g. ``"im2col_gemm"`` for planned convolutions) — pure
    metadata for breakdown tables.  FLOP and byte counts are a property of
    the *operation*, never of the lowering, so plan caching and algorithm
    changes must leave them bit-for-bit identical.
    """

    name: str
    category: str
    flops: int
    bytes: int
    count: int = 1
    algorithm: str = ""

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown kernel category {self.category!r}")


class ShapeProbe:
    """A symbolic tensor: a shape flowing through layers, emitting kernels.

    Supports the minimal arithmetic networks perform outside layers
    (residual adds), mirroring the Tensor API closely enough that network
    ``forward`` methods need no type checks of their own.
    """

    __slots__ = ("shape", "tracer")

    def __init__(self, shape: tuple[int, ...], tracer: "GraphTracer"):
        self.shape = tuple(int(s) for s in shape)
        self.tracer = tracer

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def __repr__(self) -> str:
        return f"ShapeProbe(shape={self.shape})"


class GraphTracer:
    """Collects :class:`KernelRecord`\\ s while probes flow through a model."""

    def __init__(self, batch: int, precision: str | Precision = "fp32",
                 include_backward: bool = True):
        self.batch = int(batch)
        self.precision = precision if isinstance(precision, Precision) else Precision(precision)
        self.include_backward = bool(include_backward)
        self.records: list[KernelRecord] = []
        #: Bytes of every intermediate activation produced in the forward
        #: pass; training must keep them resident for backward, so their sum
        #: drives the memory-capacity model (why FP16 fits batch 2 on a
        #: 16 GB V100 and FP32 does not, Section VII-A).
        self.activation_bytes: list[int] = []

    @property
    def itemsize(self) -> int:
        return self.precision.itemsize

    def probe(self, channels: int, height: int, width: int) -> ShapeProbe:
        """Create the input probe for an NCHW model."""
        return ShapeProbe((self.batch, channels, height, width), self)

    def emit(self, name: str, category: str, flops: int, nbytes: int,
             count: int = 1, algorithm: str = "") -> None:
        self.records.append(
            KernelRecord(name, category, int(flops), int(nbytes), count,
                         algorithm=algorithm))

    def note_activation(self, shape: Iterable[int]) -> None:
        """Record one forward intermediate that backward will need."""
        self.activation_bytes.append(self.tensor_bytes(shape))

    def tensor_bytes(self, shape: Iterable[int]) -> int:
        n = 1
        for s in shape:
            n *= int(s)
        return n * self.itemsize

    def finish(self) -> "GraphAnalysis":
        return GraphAnalysis(self.records, self.batch, self.precision,
                             total_activation_bytes=sum(self.activation_bytes))


@dataclass
class GraphAnalysis:
    """Aggregated result of a trace: totals and per-category sums."""

    records: list[KernelRecord]
    batch: int
    precision: Precision
    total_activation_bytes: int = 0
    _by_category: dict[str, tuple[int, int, int]] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        agg: dict[str, list[int]] = {}
        for r in self.records:
            slot = agg.setdefault(r.category, [0, 0, 0])
            slot[0] += r.flops
            slot[1] += r.bytes
            slot[2] += r.count
        self._by_category = {k: tuple(v) for k, v in agg.items()}

    # -- totals --------------------------------------------------------------

    @property
    def total_flops(self) -> int:
        return sum(r.flops for r in self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    @property
    def kernel_count(self) -> int:
        return sum(r.count for r in self.records)

    def flops_per_sample(self) -> float:
        """TF/sample-style normalization used throughout the paper."""
        return self.total_flops / self.batch

    # -- per-category ----------------------------------------------------------

    def category_flops(self, category: str) -> int:
        return self._by_category.get(category, (0, 0, 0))[0]

    def category_bytes(self, category: str) -> int:
        return self._by_category.get(category, (0, 0, 0))[1]

    def category_kernels(self, category: str) -> int:
        return self._by_category.get(category, (0, 0, 0))[2]

    def categories(self) -> list[str]:
        return [c for c in CATEGORIES if c in self._by_category]

    def summary(self) -> dict[str, dict[str, int]]:
        return {
            c: {
                "flops": self.category_flops(c),
                "bytes": self.category_bytes(c),
                "kernels": self.category_kernels(c),
            }
            for c in self.categories()
        }
