"""Probe-aware functional ops used inside network ``forward`` methods.

Residual adds and skip concatenations happen outside layer objects, so these
helpers accept either eager :class:`Tensor` or symbolic :class:`ShapeProbe`
arguments and do the right thing for each.  Concatenation emits ``copy``
kernel records: TensorFlow materializes concats with copy kernels, which the
paper's Figure 3 accounts for under "Copies/Transposes".
"""
from __future__ import annotations

from typing import Sequence

from .graph import ShapeProbe
from .tensor import Tensor, concatenate

__all__ = ["add", "concat", "relu"]


def add(a, b):
    """Elementwise add (residual connections)."""
    if isinstance(a, ShapeProbe) or isinstance(b, ShapeProbe):
        probe = a if isinstance(a, ShapeProbe) else b
        other = b if probe is a else a
        if isinstance(other, ShapeProbe) and other.shape != probe.shape:
            raise ValueError(f"residual add shape mismatch: {probe.shape} vs {other.shape}")
        tr = probe.tracer
        nbytes = tr.tensor_bytes(probe.shape)
        tr.emit("residual_add_fwd", "pointwise_fwd", probe.size, 3 * nbytes)
        tr.note_activation(probe.shape)
        if tr.include_backward:
            # The add backward is pure fan-out (no kernel), but gradient
            # accumulation at the junction costs one pointwise pass.
            tr.emit("residual_add_bwd", "pointwise_bwd", probe.size, 2 * nbytes)
        return ShapeProbe(probe.shape, tr)
    return a + b


def concat(tensors: Sequence, axis: int = 1):
    """Channel concatenation (Tiramisu skips, ASPP branch merge)."""
    if any(isinstance(t, ShapeProbe) for t in tensors):
        probes = list(tensors)
        tr = probes[0].tracer
        base = probes[0].shape
        channels = 0
        total_bytes = 0
        for p in probes:
            if not isinstance(p, ShapeProbe):
                raise TypeError("cannot mix ShapeProbe and Tensor in concat")
            if p.shape[:axis] + p.shape[axis + 1 :] != base[:axis] + base[axis + 1 :]:
                raise ValueError(f"concat shape mismatch: {p.shape} vs {base}")
            channels += p.shape[axis]
            total_bytes += tr.tensor_bytes(p.shape)
        out_shape = list(base)
        out_shape[axis] = channels
        out_shape = tuple(out_shape)
        tr.emit("concat_copy", "copy", 0, 2 * total_bytes)
        tr.note_activation(out_shape)
        if tr.include_backward:
            tr.emit("concat_split_copy", "copy", 0, 2 * total_bytes)
        return ShapeProbe(out_shape, tr)
    return concatenate(list(tensors), axis=axis)


def relu(x):
    """Functional ReLU (for use at network junctions)."""
    if isinstance(x, ShapeProbe):
        tr = x.tracer
        nbytes = tr.tensor_bytes(x.shape)
        tr.emit("relu_fwd", "pointwise_fwd", x.size, 2 * nbytes)
        if tr.include_backward:
            tr.emit("relu_bwd", "pointwise_bwd", x.size, 2 * nbytes)
        return x
    return x.relu()
