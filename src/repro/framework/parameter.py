"""Trainable parameters with optional FP32 master copies.

In the paper's mixed-precision mode, the model computes in FP16 but the
optimizer updates an FP32 *master* copy of each weight; the FP16 working copy
is refreshed from the master after every step.  ``Parameter`` implements both
the plain-FP32 and the master-copy regimes.
"""
from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter"]


class Parameter(Tensor):
    """A leaf tensor that an optimizer updates.

    Parameters
    ----------
    data:
        Initial value (stored at the given ``dtype``).
    name:
        Dotted path assigned by the owning module tree; used by LARC (which
        needs per-layer norms) and by Horovod-style gradient negotiation
        (which needs stable tensor names across ranks).
    """

    __slots__ = ("name", "master")

    def __init__(self, data, name: str = "param"):
        super().__init__(np.asarray(data), requires_grad=True)
        self.name = name
        self.master: np.ndarray | None = None

    def enable_master_copy(self) -> None:
        """Keep an FP32 master copy for mixed-precision training."""
        if self.master is None:
            self.master = self.data.astype(np.float32)

    def apply_update(self, delta: np.ndarray) -> None:
        """Apply an additive update, routed through the master copy if any."""
        if self.master is not None:
            self.master = self.master + np.asarray(delta, dtype=np.float32)
            self.data = self.master.astype(self.data.dtype)
        else:
            self.data = self.data + np.asarray(delta, dtype=self.data.dtype)

    def master_value(self) -> np.ndarray:
        """The highest-precision view of the parameter value."""
        return self.master if self.master is not None else self.data

    def cast_(self, dtype) -> None:
        """In-place dtype change of the working copy (used by precision policy)."""
        self.data = self.data.astype(dtype)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape}, dtype={self.dtype})"
