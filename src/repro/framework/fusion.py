"""Inference-graph fusion: BatchNorm folding and fused epilogue modules.

At inference time BatchNorm is a fixed per-channel affine (its statistics
are frozen), so the graph can be rewritten before serving:

* Conv -> BN (-> ReLU) collapses into a single convolution with rescaled
  weights and a bias, executed by the fused conv+bias+ReLU kernel
  (:func:`repro.framework.ops.fused.conv2d_bias_relu_forward`) — the cuDNN
  ``ConvolutionBiasActivationForward`` pattern the paper's inference path
  relies on;
* BN -> ReLU chains that *precede* a convolution (Tiramisu's
  pre-activation dense layers) cannot be folded across the conv's padding,
  so they become one fused per-channel scale-shift-ReLU pass instead.

The rewrite is **opt-in and non-destructive**: :func:`freeze` deep-copies
the model, fuses the copy in place, and marks it ``_frozen`` so it can
never be flipped back into training mode.  The original model — including
its ``analyze()`` kernel inventory, which the Section-VI FLOP methodology
depends on — is untouched.  Composites opt in by defining a
``fuse_inference()`` hook that mutates their own attributes (never their
identity, so plain-list references like ``DenseBlock.layers_list`` stay
valid); bare ``Sequential`` chains are pattern-matched automatically.
"""
from __future__ import annotations

from copy import deepcopy

import numpy as np

from .graph import ShapeProbe
from .layers.activation import ReLU
from .layers.conv import Conv2D
from .layers.norm import BatchNorm2D
from .module import Identity, Module, Sequential
from .ops.conv import conv2d_flops, conv_output_size
from .ops.fused import conv2d_bias_relu_forward, scale_shift_relu
from .tensor import Tensor

__all__ = [
    "bn_scale_shift",
    "fold_bn_into_conv",
    "FusedConvBiasReLU",
    "FusedScaleShiftReLU",
    "fuse_sequential",
    "freeze",
]


def bn_scale_shift(bn: BatchNorm2D) -> tuple[np.ndarray, np.ndarray]:
    """The (scale, shift) float32 pair equal to ``bn`` in inference mode.

    ``bn(x) == scale * x + shift`` per channel, using the frozen running
    statistics.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var.astype(np.float64) + bn.eps)
    gamma = bn.gamma.master_value().astype(np.float64)
    beta = bn.beta.master_value().astype(np.float64)
    scale = gamma * inv_std
    shift = beta - scale * bn.running_mean.astype(np.float64)
    return scale.astype(np.float32), shift.astype(np.float32)


def fold_bn_into_conv(conv: Conv2D, bn: BatchNorm2D
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Fold ``conv -> bn`` into one ``(weight, bias)`` pair.

    ``bn(conv(x)) == conv'(x) + bias'`` exactly, because BN at inference is
    a per-output-channel affine applied *after* the convolution.  Folding
    runs in float64 and returns the weight in the conv's working dtype and
    the bias in float32 (bias adds happen in the GEMM accumulation buffer).
    """
    scale, shift = bn_scale_shift(bn)
    w = conv.weight.master_value().astype(np.float64)
    w = w * scale.astype(np.float64)[:, None, None, None]
    bias = shift.astype(np.float64).copy()
    if conv.bias is not None:
        bias += scale.astype(np.float64) * conv.bias.master_value()
    return (w.astype(conv.weight.data.dtype, copy=False),
            bias.astype(np.float32))


class FusedConvBiasReLU(Module):
    """Inference-only conv + bias + (optional) ReLU in one planned GEMM.

    Holds plain arrays, not :class:`Parameter`\\ s: frozen graphs are never
    trained or checkpointed, and keeping the folded weights out of
    ``parameters()`` means an optimizer can never touch them by accident.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 stride: int = 1, padding: int = 0, dilation: int = 1,
                 relu: bool = True):
        super().__init__()
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float32)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dilation = int(dilation)
        self.relu = bool(relu)
        self.out_channels = self.weight.shape[0]
        self.kernel = self.weight.shape[2]

    @classmethod
    def from_conv_bn(cls, conv: Conv2D, bn: BatchNorm2D,
                     relu: bool = True) -> "FusedConvBiasReLU":
        w, b = fold_bn_into_conv(conv, bn)
        return cls(w, b, conv.stride, conv.padding, conv.dilation, relu=relu)

    @classmethod
    def from_conv(cls, conv: Conv2D, relu: bool = False) -> "FusedConvBiasReLU":
        bias = None if conv.bias is None else conv.bias.master_value().astype(np.float32)
        return cls(conv.weight.data.copy(), bias,
                   conv.stride, conv.padding, conv.dilation, relu=relu)

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        k = self.kernel
        return (conv_output_size(h, k, self.stride, self.padding, self.dilation),
                conv_output_size(w, k, self.stride, self.padding, self.dilation))

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            return self._trace(x)
        y = conv2d_bias_relu_forward(x.data, self.weight, self.bias,
                                     self.stride, self.padding, self.dilation,
                                     relu=self.relu)
        return Tensor(y)

    def _trace(self, x: ShapeProbe) -> ShapeProbe:
        tr = x.tracer
        n, c, h, w = x.shape
        oh, ow = self.output_hw(h, w)
        k = self.kernel
        out_shape = (n, self.out_channels, oh, ow)
        flops = conv2d_flops(n, c, self.out_channels, oh, ow, k, k)
        nbytes = (tr.tensor_bytes(x.shape) + tr.tensor_bytes(self.weight.shape)
                  + tr.tensor_bytes(out_shape))
        tr.emit(f"conv{k}x{k}_bias_relu_fwd", "conv_fwd", flops, nbytes,
                algorithm="im2col_gemm_fused")
        return ShapeProbe(out_shape, tr)


class FusedScaleShiftReLU(Module):
    """Inference-only per-channel ``relu(scale * x + shift)`` in one pass.

    The fused form of BN (-> ReLU) chains that sit *before* a convolution
    and therefore cannot be folded into its weights.
    """

    def __init__(self, scale: np.ndarray, shift: np.ndarray, relu: bool = True):
        super().__init__()
        self.scale = np.asarray(scale, dtype=np.float32)
        self.shift = np.asarray(shift, dtype=np.float32)
        self.relu = bool(relu)

    @classmethod
    def from_bn(cls, bn: BatchNorm2D, relu: bool = True) -> "FusedScaleShiftReLU":
        scale, shift = bn_scale_shift(bn)
        return cls(scale, shift, relu=relu)

    def forward(self, x):
        if isinstance(x, ShapeProbe):
            tr = x.tracer
            numel = x.size
            tr.emit("scale_shift_relu_fwd", "pointwise_fwd", 3 * numel,
                    2 * tr.tensor_bytes(x.shape))
            return x
        return Tensor(scale_shift_relu(x.data, self.scale, self.shift,
                                       relu=self.relu))


def fuse_sequential(seq: Sequential) -> int:
    """Fuse Conv2D -> BatchNorm2D (-> ReLU) runs inside a bare Sequential.

    Returns the number of fusions performed.  Matched batchnorms (and the
    optional trailing ReLU) are replaced with :class:`Identity` so layer
    indices — and any external references into ``seq.layers`` — survive.
    """
    fused = 0
    layers = seq.layers
    i = 0
    while i < len(layers) - 1:
        conv, nxt = layers[i], layers[i + 1]
        if type(conv) is Conv2D and isinstance(nxt, BatchNorm2D):
            relu = i + 2 < len(layers) and isinstance(layers[i + 2], ReLU)
            replacement = FusedConvBiasReLU.from_conv_bn(conv, nxt, relu=relu)
            seq.add_module(str(i), replacement)
            layers[i] = replacement
            seq.add_module(str(i + 1), Identity())
            layers[i + 1] = Identity()
            if relu:
                seq.add_module(str(i + 2), Identity())
                layers[i + 2] = Identity()
            fused += 1
            i += 3 if relu else 2
        else:
            i += 1
    return fused


def _fuse_tree(mod: Module) -> int:
    fused = 0
    hook = getattr(mod, "fuse_inference", None)
    if callable(hook):
        fused += int(hook() or 0)
    elif isinstance(mod, Sequential):
        fused += fuse_sequential(mod)
    # Children are re-read after the hook ran: fused replacements (which
    # have no hooks of their own) are traversed harmlessly.
    for child in list(mod._modules.values()):
        fused += _fuse_tree(child)
    return fused


def freeze(model: Module) -> Module:
    """Return an inference-frozen, fused deep copy of ``model``.

    The copy runs the folded/fused graph in eval mode and refuses to
    re-enter training mode (``train(True)`` is a no-op that keeps eval
    semantics).  The original model — parameters, running stats, and its
    ``analyze()`` kernel records — is left bit-for-bit untouched.
    """
    frozen = deepcopy(model)
    _fuse_tree(frozen)
    frozen.eval()
    object.__setattr__(frozen, "_frozen", True)
    return frozen
