"""Hardware specifications for the paper's two systems.

Numbers come from Section VI-A of the paper and the cited TOP500 entries:

* **Piz Daint** (CSCS): 5320 XC50 nodes, one P100 each, Aries dragonfly,
  Lustre at 744 GB/s peak read (the paper measured an effective ~112 GB/s
  for the training read pattern), node-local staging only into tmpfs.
* **Summit** (ORNL): 4608 nodes, 6 V100s + 2 Power9s each, NVLink
  (300 GB/s bidirectional per GPU), dual-rail EDR InfiniBand virtualized as
  4 devices, 800 GB node-local burst-buffer SSD, Spectrum Scale (GPFS).

GPU peaks: V100 = 15.7 TF/s FP32 and 125 TF/s FP16 Tensor Core (750 TF/s
per node, as quoted in the paper); P100 = 9.5 TF/s FP32 (50.6 PF/s single
precision over 5320 nodes).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..comm.costmodel import Link

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "FileSystemSpec",
    "SystemSpec",
    "V100",
    "P100",
    "SUMMIT",
    "PIZ_DAINT",
]


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator's peak rates."""

    name: str
    fp32_peak: float        # FLOP/s
    fp16_peak: float        # FLOP/s (Tensor Core path for V100)
    mem_bandwidth: float    # bytes/s (HBM2)
    mem_bytes: float        # device memory

    def peak(self, precision: str) -> float:
        if precision in ("fp16",):
            return self.fp16_peak
        if precision in ("fp32", "fp64"):
            return self.fp32_peak
        raise ValueError(f"unknown precision {precision!r}")


@dataclass(frozen=True)
class FileSystemSpec:
    """A shared parallel file system."""

    name: str
    peak_read_bandwidth: float      # bytes/s, marketing/benchmark number
    effective_read_bandwidth: float  # bytes/s achievable by this workload
    capacity_bytes: float


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    name: str
    gpus: int
    gpu: GpuSpec
    nvlink: Link                     # intra-node GPU interconnect
    injection: Link                  # per-node network injection
    virtual_network_devices: int     # paper: dual-rail EDR looks like 4 devices
    local_storage_bytes: float       # node-local SSD / tmpfs usable capacity
    local_storage_read_bw: float     # bytes/s
    local_storage_write_bw: float    # bytes/s
    fs_read_bw_single_thread: float  # per-node GPFS read, 1 reader thread
    fs_read_bw_multi_thread: float   # per-node GPFS read, 8 reader threads


@dataclass(frozen=True)
class SystemSpec:
    """A full machine."""

    name: str
    nodes: int
    node: NodeSpec
    interconnect: Link               # inter-node link for collective models
    filesystem: FileSystemSpec

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.node.gpus

    def peak_flops(self, precision: str, gpus: int | None = None) -> float:
        g = self.total_gpus if gpus is None else gpus
        return g * self.node.gpu.peak(precision)


V100 = GpuSpec(
    name="V100",
    fp32_peak=15.7e12,
    fp16_peak=125.0e12,
    mem_bandwidth=900.0e9,
    mem_bytes=16.0e9,
)

P100 = GpuSpec(
    name="P100",
    fp32_peak=9.5e12,
    fp16_peak=18.7e12,  # P100 FP16 is 2x FP32 (no Tensor Cores)
    mem_bandwidth=732.0e9,
    mem_bytes=16.0e9,
)

_SUMMIT_NODE = NodeSpec(
    name="AC922",
    gpus=6,
    gpu=V100,
    nvlink=Link(alpha=3.0e-6, bandwidth=150.0e9),
    injection=Link(alpha=1.0e-6, bandwidth=25.0e9),  # dual-rail EDR
    virtual_network_devices=4,
    local_storage_bytes=800.0e9,  # burst-buffer half of the 1.6 TB NVMe
    local_storage_read_bw=6.0e9,
    local_storage_write_bw=2.1e9,
    fs_read_bw_single_thread=1.79e9,   # measured, Section V-A1
    fs_read_bw_multi_thread=11.98e9,   # measured with 8 threads, 6.7x
)

SUMMIT = SystemSpec(
    name="Summit",
    nodes=4608,
    node=_SUMMIT_NODE,
    interconnect=Link(alpha=1.5e-6, bandwidth=6.25e9),  # per virtual IB device
    filesystem=FileSystemSpec(
        name="Spectrum Scale (GPFS)",
        peak_read_bandwidth=2.5e12,       # design target ("twice the target")
        effective_read_bandwidth=100.0e9,  # achievable for this read pattern
        capacity_bytes=3.0e15,
    ),
)

_DAINT_NODE = NodeSpec(
    name="XC50",
    gpus=1,
    gpu=P100,
    nvlink=Link(alpha=3.0e-6, bandwidth=16.0e9),  # PCIe gen3 x16 (32 GB/s bidir)
    injection=Link(alpha=1.2e-6, bandwidth=10.2e9),  # Aries injection
    virtual_network_devices=1,
    local_storage_bytes=32.0e9,   # tmpfs slice of 64 GB DRAM
    local_storage_read_bw=40.0e9,
    local_storage_write_bw=20.0e9,
    fs_read_bw_single_thread=1.0e9,
    fs_read_bw_multi_thread=5.0e9,
)

PIZ_DAINT = SystemSpec(
    name="Piz Daint",
    nodes=5320,
    node=_DAINT_NODE,
    interconnect=Link(alpha=1.3e-6, bandwidth=10.2e9),
    filesystem=FileSystemSpec(
        name="Lustre",
        peak_read_bandwidth=744.0e9,
        effective_read_bandwidth=112.0e9,  # the limit the paper hit (Fig. 5)
        capacity_bytes=28.0e15,
    ),
)
