"""HPC substrate: machine specs, event simulation, storage/network models."""
from .events import EventQueue
from .filesystem import SharedFileSystem
from .network import FabricModel
from .specs import (
    P100,
    PIZ_DAINT,
    SUMMIT,
    V100,
    FileSystemSpec,
    GpuSpec,
    NodeSpec,
    SystemSpec,
)
from .storage import NodeLocalStorage, daint_tmpfs, summit_ssd
from .topology import TopologyStats, dragonfly, fat_tree, topology_stats

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "SystemSpec",
    "FileSystemSpec",
    "V100",
    "P100",
    "SUMMIT",
    "PIZ_DAINT",
    "EventQueue",
    "SharedFileSystem",
    "FabricModel",
    "NodeLocalStorage",
    "summit_ssd",
    "daint_tmpfs",
    "TopologyStats",
    "fat_tree",
    "dragonfly",
    "topology_stats",
]
