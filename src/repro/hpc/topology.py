"""Interconnect topologies: non-blocking fat-tree (Summit) and Dragonfly
(Piz Daint, diameter 5).

Built as explicit graphs (networkx) so hop counts, diameters and bisection
estimates come from structure rather than constants; the collective cost
models consume the average hop count as a latency multiplier.
"""
from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["TopologyStats", "fat_tree", "dragonfly", "topology_stats"]


@dataclass(frozen=True)
class TopologyStats:
    """Structural summary used by latency models."""

    nodes: int
    switches: int
    diameter: int
    avg_hops: float


def fat_tree(pods: int = 4, hosts_per_edge: int = 4) -> nx.Graph:
    """A k-ary-fat-tree-like, non-blocking two-tier Clos network.

    ``pods`` edge switches each serve ``hosts_per_edge`` hosts and connect to
    every core switch (``pods // 2`` cores), giving full bisection.
    """
    if pods < 2 or hosts_per_edge < 1:
        raise ValueError("need >= 2 pods and >= 1 host per edge switch")
    g = nx.Graph()
    cores = max(pods // 2, 1)
    for c in range(cores):
        g.add_node(("core", c), kind="switch")
    for p in range(pods):
        g.add_node(("edge", p), kind="switch")
        for c in range(cores):
            g.add_edge(("edge", p), ("core", c))
        for h in range(hosts_per_edge):
            g.add_node(("host", p, h), kind="host")
            g.add_edge(("host", p, h), ("edge", p))
    return g


def dragonfly(groups: int = 5, routers_per_group: int = 4,
              hosts_per_router: int = 2) -> nx.Graph:
    """A canonical Dragonfly: all-to-all routers inside a group, one global
    link between every pair of groups (spread over the routers)."""
    if groups < 2 or routers_per_group < 2:
        raise ValueError("need >= 2 groups and >= 2 routers per group")
    g = nx.Graph()
    for gr in range(groups):
        for r in range(routers_per_group):
            g.add_node(("router", gr, r), kind="switch")
            for h in range(hosts_per_router):
                g.add_node(("host", gr, r, h), kind="host")
                g.add_edge(("host", gr, r, h), ("router", gr, r))
        # intra-group all-to-all
        for a in range(routers_per_group):
            for b in range(a + 1, routers_per_group):
                g.add_edge(("router", gr, a), ("router", gr, b))
    # one global link per group pair, round-robin over routers
    for a in range(groups):
        for b in range(a + 1, groups):
            ra = (a + b) % routers_per_group
            rb = (a * b) % routers_per_group
            g.add_edge(("router", a, ra), ("router", b, rb))
    return g


def topology_stats(g: nx.Graph, sample: int = 64, seed: int = 0) -> TopologyStats:
    """Diameter and average host-to-host hop count (sampled for big graphs)."""
    hosts = [n for n, d in g.nodes(data=True) if d.get("kind") == "host"]
    switches = [n for n, d in g.nodes(data=True) if d.get("kind") == "switch"]
    rng = np.random.default_rng(seed)
    if len(hosts) < 2:
        raise ValueError("topology needs at least two hosts")
    pairs = []
    if len(hosts) * (len(hosts) - 1) // 2 <= sample:
        pairs = [(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1 :]]
    else:
        idx = rng.integers(0, len(hosts), size=(sample, 2))
        pairs = [(hosts[i], hosts[j]) for i, j in idx if i != j]
    lengths = [nx.shortest_path_length(g, a, b) for a, b in pairs]
    diameter = max(lengths)
    return TopologyStats(
        nodes=len(hosts),
        switches=len(switches),
        diameter=int(diameter),
        avg_hops=float(np.mean(lengths)),
    )
