"""A minimal discrete-event simulation engine.

Used by the input-pipeline and staging simulators to model producer/consumer
queues and bandwidth contention over time.  Deterministic: ties in event time
break by insertion order.

Fault injection (:mod:`repro.resilience`): an optional ``fault_injector``
with a ``perturb_delay(delay, rank=None)`` hook stretches scheduled delays,
so straggler faults show up in simulated timelines exactly where a slow
node would put them.
"""
from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of timed callbacks."""

    def __init__(self, fault_injector=None):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0
        self.fault_injector = fault_injector

    def schedule(self, delay: float, callback: Callable[[], None],
                 rank: int | None = None) -> None:
        """Run ``callback`` at ``now + delay`` (perturbed for stragglers)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if self.fault_injector is not None:
            delay = self.fault_injector.perturb_delay(delay, rank=rank)
            if delay < 0:
                raise ValueError(f"fault injector produced negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order; returns the final clock value.

        Boundary semantics (the campaign launcher relies on these):

        * ``until`` is **inclusive** — an event scheduled at exactly
          ``until`` is processed, including events a callback schedules
          at zero delay once the clock already sits at ``until``.
        * After a run bounded only by ``until``, the clock lands exactly
          on ``until`` even if no event reached it, so back-to-back
          ``run(until=...)`` windows tile time with no gaps.
        * A run stopped early by ``max_events`` does **not** advance the
          clock to ``until``: events at or before ``until`` may still be
          pending, and jumping past them would make the next ``run``
          appear to move time backwards.
        """
        while self._heap:
            if max_events is not None and self._processed >= max_events:
                return self.now
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            callback()
            self._processed += 1
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed
