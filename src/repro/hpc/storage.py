"""Node-local storage models (burst-buffer SSD, tmpfs).

Summit stages data onto 800 GB node-local NVMe; Piz Daint has no local disk,
so staging targets a tmpfs slice of DRAM — much faster but far smaller,
which is why per-node sample counts matter there (Section V-A1).
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeLocalStorage", "summit_ssd", "daint_tmpfs"]


@dataclass
class NodeLocalStorage:
    """Capacity/bandwidth model of one node's staging target."""

    kind: str             # "ssd" or "tmpfs"
    capacity_bytes: float
    read_bandwidth: float
    write_bandwidth: float

    def fits(self, nbytes: float) -> bool:
        return nbytes <= self.capacity_bytes

    def max_samples(self, sample_bytes: float) -> int:
        """How many staged samples fit."""
        if sample_bytes <= 0:
            raise ValueError("sample_bytes must be positive")
        return int(self.capacity_bytes // sample_bytes)

    def write_time(self, nbytes: float) -> float:
        return nbytes / self.write_bandwidth

    def read_time(self, nbytes: float) -> float:
        return nbytes / self.read_bandwidth

    def sustained_read_rate(self, demand: float) -> float:
        """Delivered read bandwidth for a given demand."""
        return min(demand, self.read_bandwidth)


def summit_ssd() -> NodeLocalStorage:
    """Summit's burst-buffer share of the node NVMe."""
    return NodeLocalStorage(kind="ssd", capacity_bytes=800.0e9,
                            read_bandwidth=6.0e9, write_bandwidth=2.1e9)


def daint_tmpfs(dram_bytes: float = 64.0e9, reserved_frac: float = 0.5) -> NodeLocalStorage:
    """Piz Daint's only staging option: a tmpfs slice of the 64 GB DRAM."""
    return NodeLocalStorage(kind="tmpfs",
                            capacity_bytes=dram_bytes * reserved_frac,
                            read_bandwidth=40.0e9, write_bandwidth=20.0e9)
