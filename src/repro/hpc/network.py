"""Inter-node network transfer models (point-to-point redistribution).

Used by the staging simulator: after the disjoint GPFS read, every file is
forwarded to the other nodes that need it over the InfiniBand/Aries fabric
(Section V-A1: "point-to-point MPI messages are used to distribute copies
... tak[ing] advantage of the significantly higher bandwidth of the
Infiniband network").
"""
from __future__ import annotations

from dataclasses import dataclass

from ..comm.costmodel import Link

__all__ = ["FabricModel"]


@dataclass(frozen=True)
class FabricModel:
    """All-to-all capable fabric with per-node injection limits."""

    injection: Link       # per-node NIC
    nodes: int
    bisection_fraction: float = 0.5  # usable fraction of full bisection

    @property
    def aggregate_bandwidth(self) -> float:
        """Sustainable all-to-all aggregate (bytes/s)."""
        full = self.nodes * self.injection.bandwidth
        return full * self.bisection_fraction

    def redistribution_time(self, total_bytes: float,
                            avg_message_bytes: float = 64e6) -> float:
        """Time to move ``total_bytes`` in a balanced all-to-all pattern."""
        if total_bytes <= 0:
            return 0.0
        messages = max(total_bytes / avg_message_bytes, 1.0)
        latency = messages / self.nodes * self.injection.alpha
        return total_bytes / self.aggregate_bandwidth + latency

    def point_to_point_time(self, nbytes: float) -> float:
        return self.injection.transfer_time(nbytes)
