"""Shared parallel file-system bandwidth model.

The key behaviour (visible in the paper's Figure 5): a shared file system
delivers each client its requested bandwidth until aggregate demand hits the
system limit, after which clients are throttled proportionally and
throughput develops heavy variability.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .specs import FileSystemSpec

__all__ = ["SharedFileSystem"]


@dataclass
class SharedFileSystem:
    """Analytic contention model over a :class:`FileSystemSpec`."""

    spec: FileSystemSpec

    def aggregate_read_bandwidth(self, demand: float) -> float:
        """Delivered aggregate bandwidth for a given aggregate demand (B/s)."""
        return min(demand, self.spec.effective_read_bandwidth)

    def client_bandwidth(self, clients: int, per_client_demand: float) -> float:
        """Per-client delivered bandwidth under fair-share throttling."""
        if clients <= 0:
            return 0.0
        total = clients * per_client_demand
        if total <= self.spec.effective_read_bandwidth:
            return per_client_demand
        return self.spec.effective_read_bandwidth / clients

    def saturation(self, clients: int, per_client_demand: float) -> float:
        """Demand / capacity; >= 1 means the file system is the bottleneck."""
        return clients * per_client_demand / self.spec.effective_read_bandwidth

    def read_time(self, total_bytes: float, clients: int, per_client_bw: float) -> float:
        """Time for ``clients`` to collectively read ``total_bytes``.

        Each client can pull at most ``per_client_bw``; the system caps the
        aggregate.  Assumes a balanced partition of the bytes.
        """
        if total_bytes <= 0:
            return 0.0
        agg = min(clients * per_client_bw, self.spec.effective_read_bandwidth)
        if agg <= 0:
            raise ValueError("no read bandwidth available")
        return total_bytes / agg

    def throughput_variability(self, saturation: float,
                               rng: np.random.Generator | None = None,
                               samples: int = 100) -> np.ndarray:
        """Relative delivered-bandwidth samples; variance grows as the FS
        saturates (the paper observed "larger variability" near the limit)."""
        rng = rng or np.random.default_rng(0)
        sat = min(max(saturation, 0.0), 4.0)
        # Below saturation: a few percent jitter.  Beyond: long-tailed slowdowns.
        sigma = 0.02 + 0.18 * max(sat - 0.8, 0.0)
        draw = rng.lognormal(mean=0.0, sigma=sigma, size=samples)
        cap = 1.0 / max(sat, 1.0)
        return np.minimum(cap, cap / draw)
