"""The persistent campaign job store: an append-only JSONL event log.

Balsam keeps its job database in PostgreSQL; at this reproduction's scale
a flat append-only log gives the same durability guarantees with none of
the dependencies.  Two record kinds, one JSON object per line::

    {"event": "job", "job": {...submit-time spec...}}
    {"event": "transition", "job_id": "...", "t": ..., "from": ..., "to": ...}

Writes are append-and-flush at the moment they happen, so a crashed
campaign leaves a prefix of the log and a restarted service resumes from
exactly the recorded states.  :meth:`JobStore.load` replays the log
through the *same* validated state machine live transitions use — a
corrupted or hand-edited log that encodes an illegal edge fails loudly
(:class:`~repro.errors.InvalidTransition`) instead of materializing a
state the machine forbids.
"""
from __future__ import annotations

import json
from pathlib import Path

from ..errors import CampaignStoreError
from .job import Job, Transition

__all__ = ["JobStore"]


class JobStore:
    """In-memory job table mirrored to an append-only JSONL log.

    ``path=None`` keeps the store purely in memory (unit tests, ad-hoc
    simulations); with a path every ``submit``/``transition`` is appended
    and flushed before returning.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []          # submit order, for determinism
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return (self._jobs[jid] for jid in self._order)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise CampaignStoreError(f"unknown job {job_id!r}") from None

    def jobs(self, state: str | None = None) -> list[Job]:
        """All jobs in submit order, optionally filtered by state."""
        out = [self._jobs[jid] for jid in self._order]
        if state is not None:
            out = [j for j in out if j.state == state]
        return out

    def submit_index(self, job_id: str) -> int:
        """Position of ``job_id`` in submit order (fault plans target it)."""
        try:
            return self._order.index(job_id)
        except ValueError:
            raise CampaignStoreError(f"unknown job {job_id!r}") from None

    # -- writes ------------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Register a new job and persist its spec line."""
        if job.job_id in self._jobs:
            raise CampaignStoreError(f"duplicate job id {job.job_id!r}")
        if job.transitions or job.state != "CREATED":
            raise CampaignStoreError(
                f"job {job.job_id!r} must be submitted in CREATED state")
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        self._append({"event": "job", "job": job.spec_dict()})
        return job

    def transition(self, job: Job, to: str, t: float, reason: str = "",
                   **fields) -> Transition:
        """Validated state change + persisted log line, in that order."""
        record = job.transition_to(to, t, reason=reason, **fields)
        doc = {"event": "transition", "job_id": job.job_id}
        doc.update(record.as_dict())
        self._append(doc)
        return record

    def _append(self, doc: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay ------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "JobStore":
        """Rebuild a store by replaying ``path``; reopens it for append.

        Every transition line is re-applied through
        :meth:`Job.transition_to`, so replay *is* validation: unknown
        jobs, illegal edges, or out-of-order timestamps raise instead of
        loading silently-wrong state.
        """
        path = Path(path)
        store = cls.__new__(cls)
        store.path = path
        store._jobs = {}
        store._order = []
        store._fh = None
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CampaignStoreError(
                        f"{path}:{lineno}: malformed JSON: {exc}") from exc
                kind = doc.get("event")
                if kind == "job":
                    job = Job.from_spec(doc["job"])
                    if job.job_id in store._jobs:
                        raise CampaignStoreError(
                            f"{path}:{lineno}: duplicate job {job.job_id!r}")
                    store._jobs[job.job_id] = job
                    store._order.append(job.job_id)
                elif kind == "transition":
                    jid = doc.get("job_id")
                    if jid not in store._jobs:
                        raise CampaignStoreError(
                            f"{path}:{lineno}: transition for unknown "
                            f"job {jid!r}")
                    tr = Transition.from_dict(doc)
                    store._jobs[jid].transition_to(
                        tr.to, tr.t, reason=tr.reason, **tr.fields)
                else:
                    raise CampaignStoreError(
                        f"{path}:{lineno}: unknown event kind {kind!r}")
        store._fh = open(path, "a", encoding="utf-8")
        return store
