"""Fair-share + priority scheduling across many concurrent users.

The multi-tenant control plane's core question: when free nodes open up,
*whose* job launches next?  The policy here is the classic HPC fair-share
triple, deterministic end to end:

* **Priority lanes** — jobs carry a lane (``urgent`` ahead of ``normal``
  ahead of ``backfill`` by default); higher lanes always drain first.
  This reuses the :mod:`repro.serve` admission idiom: a closed tuple of
  lane names, highest priority first.
* **Fair share with usage decay** — each user's consumed node-seconds
  decay exponentially (``half_life_s``); within a lane, the user with the
  least decayed usage goes first, so a tenant who just burned half the
  machine yields to one who has been waiting, but history is forgiven on
  the half-life horizon.
* **Starvation-free aging** — waiting erodes a job's effective usage at
  ``aging_node_s_per_s``; any job waiting longer than ``promote_after_s``
  is treated as top-lane, so even ``backfill`` work under a heavy-usage
  user eventually runs.  For any finite lane population every job's rank
  strictly improves with wait, which is the starvation-freedom argument.

Ordering ties break by submit index, never by dict order or object id, so
one (campaign, seed) pair always schedules identically.
"""
from __future__ import annotations

from dataclasses import dataclass

from .job import Job

__all__ = ["SchedulerConfig", "FairShareScheduler"]

DEFAULT_LANES = ("urgent", "normal", "backfill")


@dataclass(frozen=True)
class SchedulerConfig:
    """Fair-share policy knobs."""

    lanes: tuple[str, ...] = DEFAULT_LANES    # highest priority first
    half_life_s: float = 600.0                # usage decay half-life
    aging_node_s_per_s: float = 1.0           # usage forgiven per wait second
    promote_after_s: float = 1800.0           # waiting this long => top lane
    #: Optional per-user share weights, e.g. ``(("alice", 2.0),)``; a
    #: weight-2 user is entitled to twice the machine of a weight-1 user.
    weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self):
        if not self.lanes:
            raise ValueError("need at least one lane")
        if len(set(self.lanes)) != len(self.lanes):
            raise ValueError("duplicate lane names")
        if self.half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        if self.aging_node_s_per_s < 0:
            raise ValueError("aging_node_s_per_s must be >= 0")
        if self.promote_after_s <= 0:
            raise ValueError("promote_after_s must be positive")
        for user, w in self.weights:
            if w <= 0:
                raise ValueError(f"weight for {user!r} must be positive")

    def weight_for(self, user: str) -> float:
        for name, w in self.weights:
            if name == user:
                return w
        return 1.0

    def lane_index(self, lane: str) -> int:
        try:
            return self.lanes.index(lane)
        except ValueError:
            raise ValueError(f"unknown lane {lane!r}; "
                             f"expected one of {self.lanes}") from None


class FairShareScheduler:
    """Orders ready jobs; tracks decayed usage and lifetime allocation."""

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config or SchedulerConfig()
        self._usage: dict[str, float] = {}       # decayed node-seconds
        self._lifetime: dict[str, float] = {}    # undecayed, for reporting
        self._now = 0.0

    # -- usage accounting --------------------------------------------------

    def advance(self, now: float) -> None:
        """Decay every user's usage forward to virtual time ``now``."""
        dt = now - self._now
        if dt < 0:
            raise ValueError(f"scheduler time cannot move backwards "
                             f"({self._now} -> {now})")
        if dt > 0:
            decay = 0.5 ** (dt / self.config.half_life_s)
            for user in self._usage:
                self._usage[user] *= decay
        self._now = now

    def charge(self, user: str, node_seconds: float) -> None:
        """Bill ``node_seconds`` of machine to ``user`` (at current time)."""
        if node_seconds < 0:
            raise ValueError("node_seconds must be >= 0")
        self._usage[user] = self._usage.get(user, 0.0) + node_seconds
        self._lifetime[user] = self._lifetime.get(user, 0.0) + node_seconds

    def usage(self, user: str) -> float:
        return self._usage.get(user, 0.0)

    def lifetime_usage(self) -> dict[str, float]:
        """Undecayed node-seconds per user (the fair-share report input)."""
        return dict(self._lifetime)

    # -- ordering ----------------------------------------------------------

    def _key(self, job: Job, now: float, submit_index: int):
        wait = max(0.0, now - job.ready_s)
        lane = self.config.lane_index(job.lane)
        if wait >= self.config.promote_after_s:
            lane = 0  # starvation guard: long waiters outrank every lane
        effective_usage = (
            self.usage(job.user) / self.config.weight_for(job.user)
            - self.config.aging_node_s_per_s * wait)
        return (lane, effective_usage, submit_index)

    def order(self, jobs: list[Job], now: float,
              submit_index) -> list[Job]:
        """Launch order for ``jobs`` at ``now``.

        ``submit_index(job_id)`` supplies the deterministic tiebreak
        (the store's submit order).  Call :meth:`advance` first so usage
        decay reflects ``now``.
        """
        return sorted(jobs,
                      key=lambda j: self._key(j, now, submit_index(j.job_id)))

    # -- fairness metric ---------------------------------------------------

    def fair_share_error(self) -> float:
        """Max deviation between achieved and entitled machine share.

        Over users who consumed anything: ``max_u |share_u - entitle_u|``
        where shares are lifetime (undecayed) node-second fractions and
        entitlements follow the configured weights.  0 is perfectly fair;
        1 is one user monopolizing a machine entitled to others.
        """
        total = sum(self._lifetime.values())
        if total <= 0:
            return 0.0
        weight_total = sum(self.config.weight_for(u) for u in self._lifetime)
        worst = 0.0
        for user, used in self._lifetime.items():
            entitled = self.config.weight_for(user) / weight_total
            worst = max(worst, abs(used / total - entitled))
        return worst
