"""Job runtimes: the checkpoint/restart seam between campaign and trainer.

The orchestration loop never touches model state directly — it asks a
*runtime* to persist progress and to answer "where would this job resume
from?".  Two implementations:

* :class:`CheckpointedRuntime` — the real thing.  Each training job owns
  a :class:`repro.core.CheckpointManager` directory under the campaign
  workdir and a tiny seeded :class:`~repro.core.trainer.Trainer` whose
  state rides every checkpoint, so restart-from-checkpoint in a campaign
  drill exercises the same ``.npz`` save/load/rotate/``latest_step`` path
  production training uses.  Non-train jobs are stateless (they restart
  from step 0, like a serving replica rejoining a pool).
* :class:`MemoryRuntime` — an in-memory stand-in for unit tests of the
  scheduler/service logic, same duck type, no disk.

Progress "steps" are the job's own units (samples for training jobs); a
checkpoint at step *k* means *k* units are durable and a restart replays
from *k*, not from zero.
"""
from __future__ import annotations

from pathlib import Path

import numpy as np

from .job import Job

__all__ = ["CheckpointedRuntime", "MemoryRuntime"]


def _tiny_trainer(seed: int):
    """A minuscule real Trainer: enough state to make checkpoints honest."""
    from ..core.networks import Tiramisu, TiramisuConfig
    from ..core.trainer import TrainConfig, Trainer

    model = Tiramisu(
        TiramisuConfig(in_channels=4, base_filters=4, growth=4,
                       down_layers=(1,), bottleneck_layers=1,
                       kernel=3, dropout=0.0),
        rng=np.random.default_rng(seed))
    return Trainer(model, TrainConfig(lr=0.01, optimizer="sgd"))


class CheckpointedRuntime:
    """Real ``CheckpointManager``-backed progress for training jobs."""

    def __init__(self, workdir: str | Path, seed: int = 0,
                 keep_last: int = 3):
        self.workdir = Path(workdir)
        self.seed = int(seed)
        self.keep_last = keep_last
        self._managers: dict[str, object] = {}
        self._trainers: dict[str, object] = {}

    def _manager(self, job: Job):
        from ..core.checkpoint import CheckpointManager

        mgr = self._managers.get(job.job_id)
        if mgr is None:
            mgr = CheckpointManager(self.workdir / job.job_id / "ckpts",
                                    keep_last=self.keep_last)
            self._managers[job.job_id] = mgr
        return mgr

    def _trainer(self, job: Job):
        trainer = self._trainers.get(job.job_id)
        if trainer is None:
            trainer = _tiny_trainer(self.seed)
            self._trainers[job.job_id] = trainer
        return trainer

    def save(self, job: Job, step: int) -> None:
        """Checkpoint ``job`` at progress ``step`` (train jobs only)."""
        if job.kind != "train":
            return
        self._manager(job).save(self._trainer(job), step=step,
                                extra_meta={"job_id": job.job_id,
                                            "user": job.user})

    def resume_step(self, job: Job) -> int:
        """Progress step the next launch starts from (0 without history)."""
        if job.kind != "train":
            return 0
        latest = self._manager(job).latest_step()
        if latest is None:
            return 0
        # Restore the trainer so resumed state matches the step we claim;
        # in the simulation the trainer is static between checkpoints, so
        # this is exact.
        self._manager(job).load(self._trainer(job))
        return latest

    def has_checkpoint(self, job: Job, step: int) -> bool:
        return job.kind == "train" and self._manager(job).exists(step)


class MemoryRuntime:
    """Dict-backed runtime with the same duck type (unit tests)."""

    def __init__(self):
        self.saved: dict[str, list[int]] = {}

    def save(self, job: Job, step: int) -> None:
        self.saved.setdefault(job.job_id, []).append(int(step))

    def resume_step(self, job: Job) -> int:
        steps = self.saved.get(job.job_id)
        return max(steps) if steps else 0

    def has_checkpoint(self, job: Job, step: int) -> bool:
        return step in self.saved.get(job.job_id, [])
