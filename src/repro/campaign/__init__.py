"""Balsam-style multi-tenant campaign orchestration over virtual time.

The control plane that turns one training job into a *campaign*: a
persistent JSONL job store with a validated lifecycle state machine, a
fair-share + priority scheduler across concurrent users, a site launcher
packing jobs onto :mod:`repro.hpc` machine models with perf-model
wall-time estimates, and elastic checkpoint/restart on injected faults.
Exercised end to end by ``python -m repro.cli campaign``.
"""
from .job import (
    JOB_KINDS,
    LEGAL_TRANSITIONS,
    STATES,
    TERMINAL_STATES,
    Job,
    Transition,
)
from .launcher import SiteConfig, SiteLauncher
from .report import CampaignReport, summarize
from .runtime import CheckpointedRuntime, MemoryRuntime
from .scheduler import FairShareScheduler, SchedulerConfig
from .service import CampaignService, ServiceConfig
from .store import JobStore
from .workload import CampaignConfig, synth_campaign

__all__ = [
    "JOB_KINDS",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "Job",
    "Transition",
    "JobStore",
    "SchedulerConfig",
    "FairShareScheduler",
    "SiteConfig",
    "SiteLauncher",
    "CheckpointedRuntime",
    "MemoryRuntime",
    "ServiceConfig",
    "CampaignService",
    "CampaignReport",
    "summarize",
    "CampaignConfig",
    "synth_campaign",
]
