"""The campaign orchestration service: one event loop over every layer.

This is the Balsam-style control plane the ROADMAP's million-user story
needs: a deterministic discrete-event loop that drives jobs from
``CREATED`` to a terminal state through the persistent store
(:mod:`.store`), the fair-share scheduler (:mod:`.scheduler`), the site
launcher and its cost models (:mod:`.launcher`), checkpoint/restart
(:mod:`.runtime` over :class:`repro.core.CheckpointManager`), and seeded
fault injection (:class:`repro.resilience.FaultInjector`).

Lifecycle segments (state = the phase just *completed*)::

    submit ──staging──► STAGED_IN ──preprocess──► PREPROCESSED ──queue──►
    RUNNING ──► RUN_DONE/RUN_ERROR ──► DONE / RESTARTING / FAILED

Fault model — the campaign reading of a :class:`FaultPlan`:

* ``rank_fail@T:rank=J`` kills the job with *submit index* ``J`` once at
  scheduler tick ``T`` (or, if it is not yet running, as soon as it
  launches).  The kill lands mid-run — at half the remaining runtime — so
  the restart path has real progress to lose and a checkpoint to resume
  from.  The killed job transitions ``RUNNING → RUN_ERROR → RESTARTING``,
  resumes from its latest checkpoint (:meth:`CheckpointManager.latest_step`
  via the runtime), relaunches on ``restart_shrink`` fewer nodes
  (mirroring :meth:`DistributedTrainer.shrink`), and must finish.
* ``straggler@T:rank=J:factor=F`` stretches every event the service
  schedules for job ``J`` by ``F`` through the event queue's existing
  ``perturb_delay`` hook — a slow node makes the whole run late.

Everything is virtual-time deterministic: one (workload, plan, seed)
triple yields a byte-identical transition log, which the tests pin.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..hpc.events import EventQueue
from ..resilience.faults import FaultInjector, FaultPlan
from ..telemetry import SimulatedClock, get_active
from .launcher import SiteLauncher
from .runtime import MemoryRuntime
from .scheduler import FairShareScheduler
from .store import JobStore
from .report import CampaignReport, summarize

__all__ = ["ServiceConfig", "CampaignService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Orchestration-loop policy knobs."""

    ckpt_every_s: float = 120.0      # virtual checkpoint cadence while RUNNING
    restart_shrink: int = 1          # nodes dropped per elastic restart
    kill_at_fraction: float = 0.5    # where in the remaining run a kill lands

    def __post_init__(self):
        if self.ckpt_every_s <= 0:
            raise ValueError("ckpt_every_s must be positive")
        if self.restart_shrink < 0:
            raise ValueError("restart_shrink must be >= 0")
        if not 0.0 < self.kill_at_fraction < 1.0:
            raise ValueError("kill_at_fraction must be in (0, 1)")


@dataclass
class _Run:
    """Bookkeeping for one launch attempt (invalidates stale events)."""

    token: int
    start_s: float
    duration_s: float
    nodes: int
    from_step: int
    kill_scheduled: bool = field(default=False)


class CampaignService:
    """Drives submitted jobs to terminal states over virtual time."""

    def __init__(self, site: SiteLauncher,
                 store: JobStore | None = None,
                 scheduler: FairShareScheduler | None = None,
                 runtime=None,
                 config: ServiceConfig | None = None,
                 plan: FaultPlan | None = None,
                 clock: SimulatedClock | None = None):
        self.site = site
        self.store = store if store is not None else JobStore()
        self.scheduler = scheduler or FairShareScheduler()
        self.runtime = runtime if runtime is not None else MemoryRuntime()
        self.config = config or ServiceConfig()
        self.injector = (FaultInjector(plan)
                         if plan is not None and len(plan) else None)
        self.events = EventQueue(fault_injector=self.injector)
        self.clock = clock or SimulatedClock()
        self._runs: dict[str, _Run] = {}
        self._armed_kills: set[str] = set()
        self._ticks = 0
        self._tick_pending = False
        self.checkpoints_saved = 0
        # Busy-node integral for the utilization report.
        self._busy_integral = 0.0
        self._last_busy_change = 0.0

    # -- submission --------------------------------------------------------

    def submit(self, job) -> None:
        """Register ``job`` and schedule its staging at ``submit_s``."""
        self.store.submit(job)
        self.events.schedule_at(job.submit_s,
                                lambda j=job: self._on_submitted(j))

    def run(self, until: float | None = None) -> CampaignReport:
        """Process events until the campaign drains; returns the report."""
        self.events.run(until=until)
        self.clock.advance_to(self.events.now)
        return summarize(self.store, self.scheduler, self.site,
                         makespan_s=self._makespan(),
                         busy_node_s=self._busy_integral,
                         checkpoints_saved=self.checkpoints_saved,
                         injected=(dict(self.injector.counts)
                                   if self.injector else {}))

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        self.clock.advance_to(self.events.now)
        return self.events.now

    def _rank_of(self, job) -> int:
        """Fault-plan identity of a job: its submit index."""
        return self.store.submit_index(job.job_id)

    def _emit(self, name: str, start: float, end: float, job, **args) -> None:
        tel = get_active()
        if tel.enabled:
            tel.tracer.emit(name, start, end - start, category="campaign",
                            lane=self._rank_of(job), job=job.job_id,
                            user=job.user, **args)

    def _on_submitted(self, job) -> None:
        now = self._now()
        delay = self.site.stage_in_s(job)
        self.events.schedule(delay, lambda: self._on_staged(job, now),
                             rank=self._rank_of(job))

    def _on_staged(self, job, started: float) -> None:
        now = self._now()
        self.store.transition(job, "STAGED_IN", now, reason="stage_in done")
        self._emit("stage_in", started, now, job)
        delay = self.site.preprocess_s(job)
        self.events.schedule(delay, lambda: self._on_preprocessed(job, now),
                             rank=self._rank_of(job))

    def _on_preprocessed(self, job, started: float) -> None:
        now = self._now()
        self.store.transition(job, "PREPROCESSED", now,
                              reason="preprocess done", ready_s=now)
        self._emit("preprocess", started, now, job)
        self._request_tick()

    def _request_tick(self) -> None:
        """Coalesce tick requests: at most one scheduler pass per instant."""
        if not self._tick_pending:
            self._tick_pending = True
            self.events.schedule(0.0, self._tick)

    def _tick(self) -> None:
        self._tick_pending = False
        now = self._now()
        tick = self._ticks
        self._ticks += 1
        if self.injector is not None:
            for idx in self.injector.begin_step(tick):
                jobs = self.store.jobs()
                if 0 <= idx < len(jobs):
                    self._armed_kills.add(jobs[idx].job_id)
            self._schedule_armed_kills()
        self.scheduler.advance(now)
        # Integrate the busy-node level *before* this instant's launches.
        self._note_busy_change(now, self.site.busy_nodes)
        ready = (self.store.jobs("PREPROCESSED")
                 + self.store.jobs("RESTARTING"))
        ordered = self.scheduler.order(ready, now, self.store.submit_index)
        for job, nodes in self.site.pack(ordered):
            self._launch(job, nodes)

    def _note_busy_change(self, now: float, busy_before: int) -> None:
        self._busy_integral += busy_before * (now - self._last_busy_change)
        self._last_busy_change = now

    def _launch(self, job, nodes: int) -> None:
        now = self.events.now
        duration = self.site.run_s(job, nodes)
        token = job.attempt + 1
        self.store.transition(job, "RUNNING", now, reason="launched",
                              nodes_allocated=nodes, attempt=token)
        run = _Run(token=token, start_s=now, duration_s=duration,
                   nodes=nodes, from_step=job.resume_step)
        self._runs[job.job_id] = run
        rank = self._rank_of(job)
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("campaign.launches", kind=job.kind).inc()
            tel.metrics.gauge("campaign.busy_nodes").set(self.site.busy_nodes)
        self.events.schedule(duration,
                             lambda: self._on_complete(job, token),
                             rank=rank)
        # Periodic checkpoints while the run is in flight.
        k = 1
        while k * self.config.ckpt_every_s < duration:
            self.events.schedule(k * self.config.ckpt_every_s,
                                 lambda j=job, t=token: self._on_checkpoint(j, t),
                                 rank=rank)
            k += 1
        if job.job_id in self._armed_kills:
            self._schedule_kill(job, run)

    def _progress(self, job, run: _Run, now: float) -> int:
        """Progress units durable-in-flight at virtual time ``now``."""
        if run.duration_s <= 0:
            return job.steps_total
        frac = min(1.0, max(0.0, (now - run.start_s) / run.duration_s))
        return run.from_step + int(frac * (job.steps_total - run.from_step))

    def _on_checkpoint(self, job, token: int) -> None:
        now = self._now()
        run = self._runs.get(job.job_id)
        if run is None or run.token != token or job.state != "RUNNING":
            return   # stale event from a superseded attempt
        step = self._progress(job, run, now)
        self.runtime.save(job, step)
        self.checkpoints_saved += 1
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("campaign.checkpoints").inc()
            tel.tracer.instant("job_checkpoint", category="campaign",
                               job=job.job_id, step=step)

    def _on_complete(self, job, token: int) -> None:
        now = self._now()
        run = self._runs.get(job.job_id)
        if run is None or run.token != token or job.state != "RUNNING":
            return
        self._note_busy_change(now, self.site.busy_nodes)
        self.site.release(job)
        self.scheduler.advance(now)
        self.scheduler.charge(job.user, run.nodes * (now - run.start_s))
        self.store.transition(job, "RUN_DONE", now, reason="run complete",
                              steps_done=job.steps_total)
        self.store.transition(job, "DONE", now)
        self._emit("job_run", run.start_s, now, job, kind=job.kind,
                   nodes=run.nodes, attempt=token)
        del self._runs[job.job_id]
        self._request_tick()

    # -- fault path --------------------------------------------------------

    def _schedule_armed_kills(self) -> None:
        for job_id in sorted(self._armed_kills):
            job = self.store.get(job_id)
            run = self._runs.get(job_id)
            if run is not None and job.state == "RUNNING":
                self._schedule_kill(job, run)

    def _schedule_kill(self, job, run: _Run) -> None:
        if run.kill_scheduled:
            return
        run.kill_scheduled = True
        now = self.events.now
        remaining = max(0.0, run.start_s + run.duration_s - now)
        delay = self.config.kill_at_fraction * remaining
        self.events.schedule(delay,
                             lambda t=run.token: self._on_killed(job, t))

    def _on_killed(self, job, token: int) -> None:
        now = self._now()
        run = self._runs.get(job.job_id)
        if run is None or run.token != token or job.state != "RUNNING":
            return
        self._armed_kills.discard(job.job_id)
        self._note_busy_change(now, self.site.busy_nodes)
        nodes = self.site.release(job)
        self.scheduler.advance(now)
        self.scheduler.charge(job.user, nodes * (now - run.start_s))
        self.store.transition(job, "RUN_ERROR", now, reason="rank_fail",
                              steps_done=self._progress(job, run, now))
        self._emit("job_run", run.start_s, now, job, kind=job.kind,
                   nodes=run.nodes, attempt=token, killed=True)
        del self._runs[job.job_id]
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("campaign.kills").inc()
        if job.restarts >= job.max_restarts:
            self.store.transition(job, "FAILED", now,
                                  reason="restart budget exhausted")
        else:
            resume = self.runtime.resume_step(job)
            new_nodes = max(job.min_nodes,
                            nodes - self.config.restart_shrink)
            self.store.transition(job, "RESTARTING", now,
                                  reason="elastic restart",
                                  resume_step=resume,
                                  nodes_allocated=new_nodes,
                                  ready_s=now)
            if tel.enabled:
                tel.metrics.counter("campaign.restarts").inc()
                tel.tracer.instant("job_restart", category="campaign",
                                   job=job.job_id, resume_step=resume,
                                   nodes=new_nodes)
        self._request_tick()

    # -- reporting helpers -------------------------------------------------

    def _makespan(self) -> float:
        ends = [j.finished_s() for j in self.store if j.finished_s() is not None]
        return max(ends) if ends else self.events.now
