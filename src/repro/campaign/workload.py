"""Seeded synthetic campaigns: many users, mixed job kinds, one rng.

Mirrors :mod:`repro.serve.loadgen` one layer up the stack: instead of a
request stream it materializes a *job* stream — Poisson submit times,
users assigned round-robin (so every tenant demands comparable machine
and the fair-share error metric is meaningful), kinds and widths drawn
from one ``numpy.random.default_rng(seed)`` stream.  A (config, seed)
pair always yields byte-identical jobs; the CLI drill, the CI smoke job,
and the determinism tests all lean on that.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .job import JOB_KINDS, Job

__all__ = ["CampaignConfig", "synth_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one synthetic multi-user campaign."""

    num_users: int = 3
    num_jobs: int = 12
    submit_rate_per_s: float = 1.0 / 30.0   # Poisson job arrivals
    kinds: tuple[str, ...] = JOB_KINDS
    kind_weights: tuple[float, ...] = (0.5, 0.25, 0.25)
    node_choices: tuple[int, ...] = (2, 4, 8)
    #: Training sample budgets (progress units) drawn per job.
    train_steps: tuple[int, ...] = (4096, 8192)
    serve_steps: tuple[int, ...] = (50_000, 100_000)   # requests
    label_steps: tuple[int, ...] = (64, 128)           # data shards
    data_gb_choices: tuple[float, ...] = (64.0, 128.0, 256.0)
    lanes: tuple[str, ...] = ("urgent", "normal", "backfill")
    lane_weights: tuple[float, ...] = (0.2, 0.6, 0.2)
    seed: int = 0

    def __post_init__(self):
        if self.num_users < 1 or self.num_jobs < 1:
            raise ValueError("need at least one user and one job")
        if self.submit_rate_per_s <= 0:
            raise ValueError("submit_rate_per_s must be positive")
        if len(self.kind_weights) != len(self.kinds):
            raise ValueError("kind_weights must match kinds")
        if len(self.lane_weights) != len(self.lanes):
            raise ValueError("lane_weights must match lanes")
        for kind in self.kinds:
            if kind not in JOB_KINDS:
                raise ValueError(f"unknown job kind {kind!r}")


def synth_campaign(config: CampaignConfig) -> list[Job]:
    """Materialize the job stream described by ``config``.

    Jobs come back in submit order with ids ``job-0000``, ``job-0001``,
    … and users ``user0..user{N-1}`` assigned round-robin.
    """
    rng = np.random.default_rng(config.seed)
    kind_w = np.asarray(config.kind_weights, dtype=np.float64)
    kind_w = kind_w / kind_w.sum()
    lane_w = np.asarray(config.lane_weights, dtype=np.float64)
    lane_w = lane_w / lane_w.sum()
    steps_by_kind = {"train": config.train_steps,
                     "serve": config.serve_steps,
                     "label": config.label_steps}
    jobs: list[Job] = []
    t = 0.0
    for i in range(config.num_jobs):
        t += float(rng.exponential(1.0 / config.submit_rate_per_s))
        kind = config.kinds[int(rng.choice(len(config.kinds), p=kind_w))]
        nodes = int(config.node_choices[
            int(rng.integers(len(config.node_choices)))])
        choices = steps_by_kind[kind]
        steps = int(choices[int(rng.integers(len(choices)))])
        data_gb = float(config.data_gb_choices[
            int(rng.integers(len(config.data_gb_choices)))])
        lane = config.lanes[int(rng.choice(len(config.lanes), p=lane_w))]
        jobs.append(Job(
            job_id=f"job-{i:04d}",
            user=f"user{i % config.num_users}",
            kind=kind,
            nodes=nodes,
            steps_total=steps,
            submit_s=t,
            data_bytes=data_gb * 1e9 if kind != "serve" else 0.0,
            lane=lane,
            min_nodes=1,
            name=f"{kind}-{i:04d}",
        ))
    return jobs
