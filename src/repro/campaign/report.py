"""End-of-campaign accounting: makespan, utilization, fairness, dwell.

The numbers the CLI drill prints and the CI smoke job asserts on.  All of
them derive from the store's transition logs plus the scheduler's usage
ledger, so a report can be recomputed from a persisted JSONL log alone
(no live service required) — the same property Balsam gets from keeping
state in its job database.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .job import STATES, TERMINAL_STATES

__all__ = ["CampaignReport", "summarize"]


@dataclass
class CampaignReport:
    """What a campaign did, and how fairly/efficiently it did it."""

    jobs: int = 0
    by_terminal_state: dict[str, int] = field(default_factory=dict)
    #: Jobs that never reached a terminal state — must be 0 for a drained
    #: campaign; anything else means the orchestrator lost work.
    lost_jobs: list[str] = field(default_factory=list)
    restarts: int = 0
    checkpoints_saved: int = 0
    #: job_id -> (resume_step, nodes_before, nodes_after) per restart.
    resumed: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    makespan_s: float = 0.0
    #: busy node-seconds / (site nodes x makespan) in [0, 1].
    utilization: float = 0.0
    #: user -> lifetime node-seconds consumed.
    node_seconds: dict[str, float] = field(default_factory=dict)
    #: max |achieved share - entitled share| over users (0 = perfectly fair).
    fair_share_error: float = 0.0
    #: state -> median virtual seconds jobs dwelt there (exited states only).
    dwell_median_s: dict[str, float] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)

    @property
    def all_done(self) -> bool:
        return (not self.lost_jobs
                and self.by_terminal_state.get("DONE", 0) == self.jobs)

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "by_terminal_state": dict(self.by_terminal_state),
            "lost_jobs": list(self.lost_jobs),
            "all_done": self.all_done,
            "restarts": self.restarts,
            "checkpoints_saved": self.checkpoints_saved,
            "resumed": {k: {"resume_step": v[0], "nodes_before": v[1],
                            "nodes_after": v[2]}
                        for k, v in self.resumed.items()},
            "makespan_s": self.makespan_s,
            "utilization": self.utilization,
            "node_seconds": dict(self.node_seconds),
            "fair_share_error": self.fair_share_error,
            "dwell_median_s": dict(self.dwell_median_s),
            "injected": dict(self.injected),
        }


def summarize(store, scheduler, site, makespan_s: float,
              busy_node_s: float, checkpoints_saved: int = 0,
              injected: dict[str, int] | None = None) -> CampaignReport:
    """Fold the store + scheduler ledgers into a :class:`CampaignReport`."""
    report = CampaignReport(jobs=len(store),
                            checkpoints_saved=checkpoints_saved,
                            makespan_s=makespan_s,
                            injected=dict(injected or {}))
    dwell_samples: dict[str, list[float]] = {s: [] for s in STATES}
    for job in store:
        if job.terminal:
            report.by_terminal_state[job.state] = (
                report.by_terminal_state.get(job.state, 0) + 1)
        else:
            report.lost_jobs.append(job.job_id)
        report.restarts += job.restarts
        for state, dwell in job.dwell_times().items():
            dwell_samples[state].append(dwell)
        for i, tr in enumerate(job.transitions):
            if tr.to != "RESTARTING":
                continue
            # nodes held before the failure = the allocation recorded on
            # the attempt's RUNNING edge; after = the shrunk relaunch.
            before = next(
                (t.fields["nodes_allocated"]
                 for t in reversed(job.transitions[:i])
                 if t.to == "RUNNING" and "nodes_allocated" in t.fields), 0)
            report.resumed[job.job_id] = (
                tr.fields.get("resume_step", 0), before,
                tr.fields.get("nodes_allocated", before))
    report.dwell_median_s = {
        state: float(np.median(samples))
        for state, samples in dwell_samples.items() if samples}
    report.node_seconds = scheduler.lifetime_usage()
    report.fair_share_error = scheduler.fair_share_error()
    if makespan_s > 0 and site.total_nodes > 0:
        report.utilization = busy_node_s / (site.total_nodes * makespan_s)
    return report
