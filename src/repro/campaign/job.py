"""Campaign jobs: persistent records with a validated state machine.

The paper's exascale campaigns (Section VII) were not one training job but
hundreds — staged data, packed node allocations, restarts after faults.
This module gives each unit of that work a durable record, modeled on
Balsam's job database (Salim et al., PyHPC 2018): every job carries its
full lifecycle as an append-only transition log with *virtual* timestamps,
so a campaign replay is bit-identical and auditable.

State machine::

    CREATED ──► STAGED_IN ──► PREPROCESSED ──► RUNNING ──► RUN_DONE ──► DONE
                                  ▲              │
                                  │              ▼
                                  └────────── RUN_ERROR ──► RESTARTING ──► RUNNING
                                                 │
                                                 ▼ (restart budget exhausted)
                                               FAILED

``Job.transition_to`` is the only mutation path: it validates the edge
against :data:`LEGAL_TRANSITIONS`, applies any field updates, appends a
:class:`Transition` with the caller's virtual timestamp, and mirrors the
event into :mod:`repro.telemetry` (``campaign.transition`` counters plus a
per-state dwell histogram).  Illegal edges raise
:class:`~repro.errors.InvalidTransition` — the store's replay path goes
through the same method, so a corrupted log cannot materialize a state
the machine forbids.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvalidTransition
from ..telemetry import get_active

__all__ = [
    "JOB_KINDS",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "Transition",
    "Job",
]

JOB_KINDS = ("train", "serve", "label")

#: Every lifecycle state, in rough lifecycle order.
STATES = ("CREATED", "STAGED_IN", "PREPROCESSED", "RUNNING", "RUN_DONE",
          "RUN_ERROR", "RESTARTING", "DONE", "FAILED")

TERMINAL_STATES = frozenset({"DONE", "FAILED"})

#: state -> states reachable in one hop.  ``RUN_ERROR -> FAILED`` is the
#: restart-budget-exhausted edge; ``RESTARTING -> RUNNING`` is the elastic
#: relaunch on (usually fewer) nodes.
LEGAL_TRANSITIONS: dict[str, tuple[str, ...]] = {
    "CREATED": ("STAGED_IN",),
    "STAGED_IN": ("PREPROCESSED",),
    "PREPROCESSED": ("RUNNING",),
    "RUNNING": ("RUN_DONE", "RUN_ERROR"),
    "RUN_DONE": ("DONE",),
    "RUN_ERROR": ("RESTARTING", "FAILED"),
    "RESTARTING": ("RUNNING",),
    "DONE": (),
    "FAILED": (),
}

#: Job fields a transition may mutate (everything else is identity or
#: bookkeeping owned by the service); keeping the set closed makes log
#: replay exhaustive.
MUTABLE_FIELDS = frozenset({
    "nodes_allocated", "steps_done", "resume_step", "attempt", "ready_s",
})


@dataclass(frozen=True)
class Transition:
    """One edge in a job's lifecycle, stamped with virtual time."""

    t: float                     # virtual seconds since campaign start
    frm: str
    to: str
    reason: str = ""             # e.g. "rank_fail", "restart budget exhausted"
    fields: dict = field(default_factory=dict)   # job-field updates applied

    def as_dict(self) -> dict:
        doc = {"t": self.t, "from": self.frm, "to": self.to}
        if self.reason:
            doc["reason"] = self.reason
        if self.fields:
            doc["fields"] = self.fields
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Transition":
        return cls(t=float(doc["t"]), frm=doc["from"], to=doc["to"],
                   reason=doc.get("reason", ""),
                   fields=dict(doc.get("fields", {})))


@dataclass
class Job:
    """One unit of campaign work (a training/serving/labeling run).

    Identity and request fields are fixed at submit; progress fields
    (``state``, ``nodes_allocated``, ``steps_done``, ``resume_step``,
    ``attempt``, ``ready_s``) change only through :meth:`transition_to`.
    ``steps`` are the job's own progress unit — samples for training jobs,
    requests for serving, bytes-chunks for labeling — whatever the cost
    model meters.
    """

    job_id: str
    user: str
    kind: str                    # one of JOB_KINDS
    nodes: int                   # requested allocation width
    steps_total: int             # total progress units to complete
    submit_s: float = 0.0        # virtual submit time
    data_bytes: float = 0.0      # bytes to stage in before preprocessing
    lane: str = "normal"         # scheduler priority lane
    min_nodes: int = 1           # floor for elastic shrink on restart
    max_restarts: int = 2
    name: str = ""
    # -- progress (mutated via transition_to only) -------------------------
    state: str = "CREATED"
    nodes_allocated: int = 0
    steps_done: int = 0
    resume_step: int = 0         # checkpointed step the next run starts from
    attempt: int = 0             # completed launch attempts
    ready_s: float = 0.0         # when the job last became schedulable
    transitions: list[Transition] = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"expected one of {JOB_KINDS}")
        if self.state not in STATES:
            raise ValueError(f"unknown state {self.state!r}")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not 1 <= self.min_nodes <= self.nodes:
            raise ValueError("need 1 <= min_nodes <= nodes")
        if self.steps_total < 1:
            raise ValueError("steps_total must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be >= 0")

    # -- state machine -----------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def can_transition(self, to: str) -> bool:
        return to in LEGAL_TRANSITIONS[self.state]

    def transition_to(self, to: str, t: float, reason: str = "",
                      **fields) -> Transition:
        """Move to ``to`` at virtual time ``t``; returns the log record.

        ``fields`` are job-attribute updates riding the edge (restricted
        to :data:`MUTABLE_FIELDS`).  Raises
        :class:`~repro.errors.InvalidTransition` for an edge the machine
        forbids, a timestamp earlier than the previous transition, or an
        unknown field — replayed logs get exactly the same checks.
        """
        if to not in STATES:
            raise InvalidTransition(f"{self.job_id}: unknown state {to!r}")
        if not self.can_transition(to):
            raise InvalidTransition(
                f"{self.job_id}: illegal transition {self.state} -> {to}")
        if self.transitions and t < self.transitions[-1].t:
            raise InvalidTransition(
                f"{self.job_id}: transition at t={t} before previous "
                f"t={self.transitions[-1].t}")
        bad = set(fields) - MUTABLE_FIELDS
        if bad:
            raise InvalidTransition(
                f"{self.job_id}: transition may not mutate {sorted(bad)}")
        frm = self.state
        record = Transition(t=float(t), frm=frm, to=to, reason=reason,
                            fields=dict(fields))
        dwell = t - (self.transitions[-1].t if self.transitions
                     else self.submit_s)
        for key, value in fields.items():
            setattr(self, key, value)
        self.state = to
        self.transitions.append(record)
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("campaign.transition",
                                **{"from": frm, "to": to}).inc()
            tel.metrics.histogram("campaign.dwell_s", state=frm).observe(dwell)
            tel.tracer.instant("job_transition", category="campaign",
                               job=self.job_id, frm=frm, to=to,
                               reason=reason or None)
        return record

    # -- derived views -----------------------------------------------------

    def dwell_times(self) -> dict[str, float]:
        """Virtual seconds spent in each *exited* state, summed."""
        out: dict[str, float] = {}
        prev_t = self.submit_s
        for tr in self.transitions:
            out[tr.frm] = out.get(tr.frm, 0.0) + (tr.t - prev_t)
            prev_t = tr.t
        return out

    @property
    def restarts(self) -> int:
        return sum(tr.to == "RESTARTING" for tr in self.transitions)

    def finished_s(self) -> float | None:
        """Virtual time the job reached a terminal state, if it has."""
        if not self.terminal or not self.transitions:
            return None
        return self.transitions[-1].t

    # -- serialization -----------------------------------------------------

    def spec_dict(self) -> dict:
        """The submit-time (immutable) fields, for the store's job line."""
        return {
            "job_id": self.job_id, "user": self.user, "kind": self.kind,
            "nodes": self.nodes, "steps_total": self.steps_total,
            "submit_s": self.submit_s, "data_bytes": self.data_bytes,
            "lane": self.lane, "min_nodes": self.min_nodes,
            "max_restarts": self.max_restarts, "name": self.name,
        }

    @classmethod
    def from_spec(cls, doc: dict) -> "Job":
        return cls(**doc)
