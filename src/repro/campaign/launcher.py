"""The site launcher: packs ready jobs onto a simulated machine model.

Balsam's launcher pilots a real scheduler allocation and packs jobs into
it; here the "site" is an :class:`repro.hpc.specs.SystemSpec` machine
model (Summit or Piz Daint, usually scaled down to a few dozen nodes) and
time is virtual.  The launcher owns node accounting and the wall-time
cost models; the :class:`~repro.campaign.service.CampaignService` owns
the event loop that calls it.

Packing policy is **priority-order first-fit with backfill**: walk the
scheduler's order and launch every job that fits in the free nodes *right
now*.  A wide job that does not fit is skipped — not blocking — so
narrower, lower-priority work backfills around it (EASY backfill without
reservations; the aging term in the scheduler bounds how long the wide
job can be overtaken).

Wall-time estimates come from the perf cost models rather than made-up
constants: a training job's step time is
:func:`repro.perf.scaling.step_time_model` on the allocated GPU count
(weak-scaling step time, so wider allocations chew through a fixed sample
budget faster at the model's measured efficiency), and stage-in time is
the shared filesystem's effective read bandwidth from the
:class:`~repro.hpc.specs.FileSystemSpec`.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..errors import CampaignError
from ..hpc.specs import SystemSpec
from .job import Job

__all__ = ["SiteConfig", "SiteLauncher"]

#: Per-GPU serving rate (requests/s) and per-node labeling rate (bytes/s)
#: for the non-training job kinds.  Deliberately simple: serving capacity
#: scales with GPUs, labeling (TECA-style heuristics, Section IV) is a
#: CPU-side scan that scales with nodes.
SERVE_RPS_PER_GPU = 200.0
LABEL_BYTES_PER_NODE_S = 2.0e9


@dataclass(frozen=True)
class SiteConfig:
    """The slice of machine a campaign may use, plus model knobs."""

    system: SystemSpec
    nodes: int | None = None         # cap (default: the whole machine)
    network: str = "tiramisu"        # cost-model architecture for train jobs
    precision: str = "fp16"
    batch_per_gpu: int = 2           # the paper's per-GPU batch
    preprocess_bytes_per_s: float = 4.0e9   # per-node preprocessing rate

    def __post_init__(self):
        if self.nodes is not None and not 1 <= self.nodes <= self.system.nodes:
            raise ValueError(
                f"nodes must be in [1, {self.system.nodes}]")
        if self.batch_per_gpu < 1:
            raise ValueError("batch_per_gpu must be >= 1")
        if self.preprocess_bytes_per_s <= 0:
            raise ValueError("preprocess_bytes_per_s must be positive")

    @property
    def total_nodes(self) -> int:
        return self.nodes if self.nodes is not None else self.system.nodes


class SiteLauncher:
    """Node accounting + cost models for one simulated site."""

    def __init__(self, config: SiteConfig):
        self.config = config
        self.total_nodes = config.total_nodes
        self._allocated: dict[str, int] = {}     # job_id -> nodes held

    # -- node accounting ---------------------------------------------------

    @property
    def free_nodes(self) -> int:
        return self.total_nodes - sum(self._allocated.values())

    @property
    def busy_nodes(self) -> int:
        return sum(self._allocated.values())

    def holding(self, job_id: str) -> int:
        return self._allocated.get(job_id, 0)

    def allocate(self, job: Job, nodes: int) -> None:
        if job.job_id in self._allocated:
            raise CampaignError(f"{job.job_id} already holds an allocation")
        if not 1 <= nodes <= self.free_nodes:
            raise CampaignError(
                f"{job.job_id}: cannot allocate {nodes} nodes "
                f"({self.free_nodes} free)")
        self._allocated[job.job_id] = nodes

    def release(self, job: Job) -> int:
        nodes = self._allocated.pop(job.job_id, 0)
        if nodes == 0:
            raise CampaignError(f"{job.job_id} holds no allocation")
        return nodes

    # -- packing -----------------------------------------------------------

    def pack(self, ordered_jobs: list[Job]) -> list[tuple[Job, int]]:
        """First-fit-with-backfill over the scheduler's order.

        Returns the ``(job, nodes)`` pairs that fit right now, allocating
        as it goes.  A restarting job asks for its (already shrunk)
        ``nodes_allocated``; a fresh job asks for its requested width,
        narrowed to ``min_nodes`` at worst if the *whole site* is smaller
        than the request (a request can never exceed the machine).
        """
        launched: list[tuple[Job, int]] = []
        for job in ordered_jobs:
            want = self.width_for(job)
            if want <= self.free_nodes:
                self.allocate(job, want)
                launched.append((job, want))
        return launched

    def width_for(self, job: Job) -> int:
        """Nodes this job would occupy if launched now."""
        if job.state == "RESTARTING" and job.nodes_allocated > 0:
            return job.nodes_allocated
        return max(job.min_nodes, min(job.nodes, self.total_nodes))

    # -- cost models -------------------------------------------------------

    def stage_in_s(self, job: Job) -> float:
        """Virtual seconds to stage ``data_bytes`` from the shared FS."""
        if job.data_bytes <= 0:
            return 0.0
        fs = self.config.system.filesystem
        return job.data_bytes / fs.effective_read_bandwidth

    def preprocess_s(self, job: Job) -> float:
        """Virtual seconds of single-node preprocessing before launch."""
        if job.data_bytes <= 0:
            return 0.0
        return job.data_bytes / self.config.preprocess_bytes_per_s

    def run_s(self, job: Job, nodes: int,
              from_step: int | None = None) -> float:
        """Wall-time estimate to finish ``job`` on ``nodes`` nodes.

        ``from_step`` overrides the resume point (default: the job's
        ``resume_step``); the remaining work is ``steps_total - from_step``
        progress units.
        """
        start = job.resume_step if from_step is None else from_step
        remaining = max(0, job.steps_total - start)
        if remaining == 0:
            return 0.0
        gpus = nodes * self.config.system.node.gpus
        if job.kind == "train":
            from ..perf.scaling import step_time_model
            # steps_total is a *sample* budget; a wider allocation eats
            # more samples per step at the model's measured efficiency.
            per_step = step_time_model(
                self.config.network, gpus, self.config.precision,
                system_name=("summit" if self.config.system.name == "Summit"
                             else "piz_daint"))
            samples_per_step = self.config.batch_per_gpu * gpus
            steps = -(-remaining // samples_per_step)   # ceil division
            return steps * per_step
        if job.kind == "serve":
            return remaining / (SERVE_RPS_PER_GPU * gpus)
        if job.kind == "label":
            # One progress unit = one shard of the staged data (or 1 GB
            # when the job staged nothing).
            chunk_bytes = (job.data_bytes / job.steps_total
                           if job.data_bytes > 0 else 1.0e9)
            return remaining * chunk_bytes / (LABEL_BYTES_PER_NODE_S * nodes)
        raise CampaignError(f"no cost model for job kind {job.kind!r}")
