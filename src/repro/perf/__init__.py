"""Performance models reproducing the paper's tables and figures."""
from .breakdown import (
    PAPER_CATEGORY_TIME_PCT,
    PAPER_DETAIL,
    BreakdownTable,
    kernel_breakdown,
)
from .eventsim import TrainingRunConfig, TrainingRunResult, simulate_training_run
from .kernels import EFFICIENCY_TABLE, CategoryEfficiency, CategoryTime, KernelTimeModel
from .memory import DEFAULT_LIVENESS, MemoryBudget, max_batch, training_memory
from .report import format_table, paper_vs_measured
from .scaling import (
    PAPER_SCALING_ANCHORS,
    ScalingModel,
    ScalingPoint,
    step_time_model,
    weak_scaling_curve,
)
from .singlegpu import PAPER_FIG2, SingleGpuPoint, figure2_table, single_gpu_performance
from .staging_model import PAPER_FIG5_ANCHORS, Figure5Point, aggregate_demand, figure5_curves
from .summary import SummaryRow, render_summary, reproduction_summary
from .stats import ThroughputStats, peak_throughput, sustained_throughput

__all__ = [
    "KernelTimeModel",
    "TrainingRunConfig",
    "TrainingRunResult",
    "simulate_training_run",
    "MemoryBudget",
    "training_memory",
    "max_batch",
    "DEFAULT_LIVENESS",
    "SummaryRow",
    "reproduction_summary",
    "render_summary",
    "CategoryTime",
    "CategoryEfficiency",
    "EFFICIENCY_TABLE",
    "SingleGpuPoint",
    "single_gpu_performance",
    "figure2_table",
    "PAPER_FIG2",
    "BreakdownTable",
    "kernel_breakdown",
    "PAPER_CATEGORY_TIME_PCT",
    "PAPER_DETAIL",
    "ScalingModel",
    "ScalingPoint",
    "weak_scaling_curve",
    "step_time_model",
    "PAPER_SCALING_ANCHORS",
    "Figure5Point",
    "figure5_curves",
    "aggregate_demand",
    "PAPER_FIG5_ANCHORS",
    "ThroughputStats",
    "sustained_throughput",
    "peak_throughput",
    "format_table",
    "paper_vs_measured",
]
