"""One-call reproduction summary: every headline number, paper vs measured.

``reproduction_summary()`` evaluates the fast experiments (everything that
doesn't train a network) and returns structured rows;
``render_summary()`` formats them as the table printed by
``python -m repro.cli report``.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..climate.stats import PAPER_DATASET
from ..comm.coordinator import (
    ReadinessSchedule,
    centralized_negotiation,
    hierarchical_negotiation,
)
from ..core.flops import network_flop_table, paper_conv_example_flops
from ..core.losses import class_weights, tc_penalty_ratio
from ..hpc.specs import SUMMIT, V100
from ..io.readers import scaled_read_bandwidth
from ..io.staging import plan_staging
from .memory import max_batch
from .report import format_table
from .scaling import weak_scaling_curve
from .singlegpu import PAPER_FIG2, figure2_table

__all__ = ["SummaryRow", "reproduction_summary", "render_summary"]


@dataclass(frozen=True)
class SummaryRow:
    """One headline comparison."""

    experiment: str
    metric: str
    paper: str
    measured: str


def reproduction_summary() -> list[SummaryRow]:
    """Evaluate the model-based experiments and collect the comparisons."""
    import numpy as np

    rows: list[SummaryRow] = []

    # Section VI worked example.
    rows.append(SummaryRow("Sec VI", "3x3 conv example GFLOPs", "48.9",
                           f"{paper_conv_example_flops()/1e9:.1f}"))

    # Figure 2 operation counts + one rate per network.
    for r in network_flop_table():
        rows.append(SummaryRow("Fig 2", f"{r.name} TF/sample",
                               f"{r.paper_tf_per_sample}",
                               f"{r.tf_per_sample:.2f}"))
    for p in figure2_table():
        paper = PAPER_FIG2[(p.network, p.gpu, p.precision)]
        rows.append(SummaryRow(
            "Fig 2", f"{p.network} {p.gpu} {p.precision} samples/s",
            f"{paper[1]}", f"{p.samples_per_second:.2f}"))

    # Memory-capacity batch limits (Section VII-A).
    from ..core.networks import deeplab_modified
    dl = deeplab_modified()
    rows.append(SummaryRow("Sec VII-A", "DeepLab V100 max batch fp32/fp16",
                           "1 / 2",
                           f"{max_batch(dl, (16, 768, 1152), 'fp32', V100, 3)}"
                           f" / {max_batch(dl, (16, 768, 1152), 'fp16', V100, 4)}"))

    # Figure 4 anchors.
    daint = weak_scaling_curve("tiramisu_4ch", "piz_daint", "fp32", lag=0,
                               gpu_counts=[5300])[0]
    rows.append(SummaryRow("Fig 4", "Piz Daint 5300 GPUs PF/s @ eff",
                           "21.0 @ 79.0%",
                           f"{daint.sustained_pflops:.1f} @ "
                           f"{daint.efficiency*100:.1f}%"))
    for prec, paper in (("fp32", "325.8 @ 90.7%"), ("fp16", "999.0 @ 90.7%")):
        p = weak_scaling_curve("deeplabv3+", "summit", prec, lag=1,
                               gpu_counts=[27360])[0]
        rows.append(SummaryRow("Fig 4", f"Summit 27360 {prec} PF/s @ eff",
                               paper,
                               f"{p.sustained_pflops:.0f} @ "
                               f"{p.efficiency*100:.1f}%"))

    # Staging (Section V-A1).
    fb, nf = PAPER_DATASET.sample_bytes, PAPER_DATASET.num_samples
    naive = plan_staging(SUMMIT, nf, fb, 1024, strategy="naive")
    dist = plan_staging(SUMMIT, nf, fb, 1024, strategy="distributed")
    rows.append(SummaryRow("Sec V-A1", "naive staging @1024 nodes",
                           "10-20 min", f"{naive.total_time_s/60:.1f} min"))
    rows.append(SummaryRow("Sec V-A1", "distributed staging @1024 nodes",
                           "< 3 min", f"{dist.total_time_s/60:.2f} min"))
    rows.append(SummaryRow("Sec V-A1", "8-thread read speedup", "6.7x",
                           f"{scaled_read_bandwidth(8, 1.79e9)/1.79e9:.2f}x"))

    # Control plane (Section V-A3).
    s = ReadinessSchedule.random(4096, 110, seed=0)
    c = centralized_negotiation(s)
    h = hierarchical_negotiation(s, radix=4)
    rows.append(SummaryRow("Sec V-A3", "control msgs/step @4096 ranks",
                           "millions -> thousands",
                           f"{c.controller_load:,} -> "
                           f"{int((h.messages_sent + h.messages_received).max()):,}"))

    # Weighted loss (Section V-B1).
    freqs = np.array([0.9822, 0.00073, 0.017])
    ratio = tc_penalty_ratio(class_weights(freqs, "inverse_sqrt"))
    rows.append(SummaryRow("Sec V-B1", "TC FN/FP penalty ratio", "~37x",
                           f"{ratio:.1f}x"))
    return rows


def render_summary(rows: list[SummaryRow] | None = None) -> str:
    rows = rows if rows is not None else reproduction_summary()
    return format_table(
        ["experiment", "metric", "paper", "measured"],
        [[r.experiment, r.metric, r.paper, r.measured] for r in rows],
        title="Reproduction summary - paper vs measured",
    )
