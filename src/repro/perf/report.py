"""Plain-text table rendering for the benchmark harnesses."""
from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "paper_vs_measured"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a separator line, ready for stdout."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def paper_vs_measured(name: str, paper: float, measured: float,
                      unit: str = "") -> str:
    """One comparison line: paper value, reproduced value, ratio."""
    ratio = measured / paper if paper else float("nan")
    return (f"{name}: paper={paper:g}{unit}  measured={measured:g}{unit}  "
            f"ratio={ratio:.2f}")
