"""Event-driven simulation of a synchronous distributed training run.

The analytic model (:mod:`repro.perf.scaling`) gives expected step times;
this module simulates the *dynamics*: every rank draws a stochastic compute
time per step (log-normal jitter), the all-reduce starts when the slowest
rank finishes (synchronous SGD's barrier), gradient lag overlaps part of
the exchange with the next step, and the input pipeline injects waits when
its queue runs dry.  The output is a per-(step, rank) sample-count matrix
and per-step times — exactly what the paper's Section VI statistics
pipeline consumes, so the sustained-throughput median and central-68% CI
(the Figure 4 error bars) come out of :func:`repro.perf.stats.sustained_throughput`.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hpc.events import EventQueue
from .stats import ThroughputStats, sustained_throughput

__all__ = ["TrainingRunConfig", "TrainingRunResult", "simulate_training_run"]


@dataclass(frozen=True)
class TrainingRunConfig:
    """Inputs to the dynamic run simulation."""

    ranks: int
    steps: int
    compute_time_s: float            # mean per-rank step compute
    compute_jitter: float = 0.03     # log-normal sigma of compute time
    allreduce_time_s: float = 0.0    # full exchange duration
    overlap_fraction: float = 0.9    # hidden behind next step's compute (lag)
    input_rate_margin: float = 2.0   # pipeline production / consumption rate
    batch_per_rank: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.ranks < 1 or self.steps < 1:
            raise ValueError("ranks and steps must be >= 1")
        if self.compute_time_s <= 0:
            raise ValueError("compute time must be positive")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap fraction must be in [0, 1]")


@dataclass
class TrainingRunResult:
    """Per-step outcome of a simulated run."""

    step_times: np.ndarray            # (steps,)
    samples_per_step: np.ndarray      # (steps, ranks)
    barrier_waits: np.ndarray         # (steps,) slowest-minus-mean compute
    input_waits: np.ndarray           # (steps,) time spent starving

    def sustained(self) -> ThroughputStats:
        return sustained_throughput(self.samples_per_step, self.step_times)

    @property
    def total_time_s(self) -> float:
        return float(self.step_times.sum())

    def efficiency(self, ideal_step_s: float) -> float:
        return ideal_step_s / float(np.median(self.step_times))


def simulate_training_run(config: TrainingRunConfig,
                          telemetry=None) -> TrainingRunResult:
    """Run the event simulation and collect the paper-style measurements.

    With an enabled telemetry session (explicit ``telemetry=`` or the
    active one), every simulated step emits *virtual-time* spans — one
    ``sim_step`` per step, one ``compute`` per rank, and the exposed
    all-reduce tail — so the dynamics land in the same Chrome trace as
    wall-clock spans.  If the session's tracer runs on a
    :class:`repro.telemetry.SimulatedClock`, the clock is advanced with the
    simulation.
    """
    # Imported lazily: repro.perf is imported by repro.telemetry.metrics.
    from ..telemetry import SimulatedClock, get_active

    tel = telemetry or get_active()
    tracer = tel.tracer if tel.enabled else None
    rng = np.random.default_rng(config.seed)
    ev = EventQueue()
    n, steps = config.ranks, config.steps

    step_times = np.zeros(steps)
    barrier_waits = np.zeros(steps)
    input_waits = np.zeros(steps)
    samples = np.full((steps, n), config.batch_per_rank, dtype=np.float64)

    exposed_comm = config.allreduce_time_s * (1.0 - config.overlap_fraction)
    # Input pipeline: production rate relative to consumption; a margin < 1
    # means the loader cannot keep up and every step waits for the deficit.
    if config.input_rate_margin < 1.0:
        starve = config.compute_time_s * (1.0 / config.input_rate_margin - 1.0)
    else:
        starve = 0.0

    state = {"step": 0, "finished": 0, "slowest": 0.0, "step_start": 0.0,
             "compute_sum": 0.0, "draws": None}

    def emit_step_spans():
        """Virtual-time spans for the step that just completed."""
        start = state["step_start"]
        step_id = tracer.emit(
            "sim_step", start_s=tracer.epoch + start,
            duration_s=ev.now - start, category="sim", lane=0,
            step=state["step"])
        for r, draw in enumerate(state["draws"]):
            tracer.emit("compute", start_s=tracer.epoch + start,
                        duration_s=float(draw) + starve, category="sim",
                        lane=r + 1, parent_id=step_id, rank=r)
        if exposed_comm > 0:
            tracer.emit("allreduce_exposed",
                        start_s=tracer.epoch + ev.now - exposed_comm,
                        duration_s=exposed_comm, category="sim", lane=0,
                        parent_id=step_id)

    def start_step():
        state["finished"] = 0
        state["slowest"] = 0.0
        state["compute_sum"] = 0.0
        state["step_start"] = ev.now
        draws = config.compute_time_s * rng.lognormal(
            0.0, config.compute_jitter, size=n)
        state["draws"] = draws
        for r in range(n):
            ev.schedule(float(draws[r]) + starve, rank_done(draws[r]))

    def rank_done(compute):
        def _done():
            state["finished"] += 1
            state["slowest"] = max(state["slowest"], ev.now - state["step_start"])
            state["compute_sum"] += compute
            if state["finished"] == n:
                ev.schedule(exposed_comm, step_complete)
        return _done

    def step_complete():
        s = state["step"]
        step_times[s] = ev.now - state["step_start"]
        barrier_waits[s] = state["slowest"] - state["compute_sum"] / n - starve
        input_waits[s] = starve
        if tracer is not None:
            if isinstance(tracer.clock, SimulatedClock):
                tracer.clock.advance_to(tracer.epoch + ev.now)
            emit_step_spans()
        state["step"] += 1
        if state["step"] < steps:
            start_step()

    start_step()
    ev.run()
    if tel.enabled:
        m = tel.metrics
        m.counter("sim.steps").inc(steps)
        for t in step_times:
            m.histogram("sim.step_time_s").observe(float(t))
        for w in barrier_waits:
            m.histogram("sim.barrier_wait_s").observe(float(w))
    return TrainingRunResult(step_times, samples, barrier_waits, input_waits)
