"""GPU memory-capacity model: why FP16 trains batch 2 and FP32 batch 1.

Section VII-A: "a single image per GPU is processed per training step when
FP32 precision is used, while for FP16, the lower memory footprint enables
batches of two images per GPU."  The model adds up what training must keep
resident on the 16 GB V100:

* forward activations (stored for backward) — dominant, counted exactly by
  the symbolic trace (:attr:`GraphAnalysis.total_activation_bytes`);
* working weights (+ FP32 masters in mixed precision);
* gradients and optimizer state (momentum);
* a cuDNN workspace / framework-overhead reserve.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..framework.module import Module
from ..hpc.specs import GpuSpec, V100

__all__ = ["MemoryBudget", "training_memory", "max_batch"]

#: cuDNN workspace + allocator/framework overhead reserve (bytes).
DEFAULT_RESERVE = 1.5e9

#: Fraction of traced forward intermediates simultaneously live.  The trace
#: counts every op output, but frameworks reuse buffers (in-place ReLU/bias,
#: recomputed cheap ops, freed branches); 0.7 is a typical liveness for
#: TF-era graph executors and calibrates the model to the paper's observed
#: batch limits (FP32: 1, FP16: 2 on the 16 GB V100).
DEFAULT_LIVENESS = 0.7


@dataclass(frozen=True)
class MemoryBudget:
    """Per-component device-memory demand for one training configuration."""

    activations: float
    weights: float
    master_weights: float
    gradients: float
    optimizer_state: float
    reserve: float

    @property
    def total(self) -> float:
        return (self.activations + self.weights + self.master_weights
                + self.gradients + self.optimizer_state + self.reserve)

    def fits(self, gpu: GpuSpec) -> bool:
        return self.total <= gpu.mem_bytes


def training_memory(
    model: Module,
    input_shape: tuple[int, int, int],
    batch: int,
    precision: str = "fp32",
    momentum_state: bool = True,
    reserve: float = DEFAULT_RESERVE,
    liveness: float = DEFAULT_LIVENESS,
) -> MemoryBudget:
    """Memory demand of one training step at the given batch/precision."""
    if not 0.0 < liveness <= 1.0:
        raise ValueError("liveness must be in (0, 1]")
    analysis = model.analyze(input_shape, batch=batch, precision=precision,
                             include_backward=False)
    params = model.num_parameters()
    itemsize = 2 if precision == "fp16" else 4
    weights = params * itemsize
    master = params * 4 if precision == "fp16" else 0.0
    grads = params * 4  # gradients kept FP32 for the update
    opt = params * 4 if momentum_state else 0.0
    return MemoryBudget(
        activations=float(analysis.total_activation_bytes) * liveness,
        weights=float(weights),
        master_weights=float(master),
        gradients=float(grads),
        optimizer_state=float(opt),
        reserve=float(reserve),
    )


def max_batch(
    model: Module,
    input_shape: tuple[int, int, int],
    precision: str,
    gpu: GpuSpec = V100,
    limit: int = 16,
    **kwargs,
) -> int:
    """Largest batch whose training footprint fits the GPU (0 if none)."""
    best = 0
    for batch in range(1, limit + 1):
        budget = training_memory(model, input_shape, batch, precision, **kwargs)
        if budget.fits(gpu):
            best = batch
        else:
            break
    return best
