"""Per-category kernel performance model (roofline with efficiency caps).

The paper groups the thousands of per-step kernels into eight categories
(Figure 3) and reports each category's fraction of peak math and peak
memory bandwidth.  We model a category's execution time with a capped
roofline:

    time = max( flops / (peak_math * eff_math),  bytes / (peak_mem * eff_mem) )

The efficiency caps are the *achievable* fractions of peak for that kernel
class — constants calibrated against the paper's own measured category
efficiencies (Figures 8 and 9), standing in for what CUDA profiling tools
measure on real hardware.  With these caps and our traced FLOP/byte
inventories, the model reproduces which categories dominate, why FP16
Tiramisu convolutions go memory-bound, and the Figure 2 training rates.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..framework.graph import CATEGORIES, GraphAnalysis
from ..hpc.specs import GpuSpec

__all__ = ["CategoryEfficiency", "EFFICIENCY_TABLE", "CategoryTime", "KernelTimeModel"]


@dataclass(frozen=True)
class CategoryEfficiency:
    """Achievable fraction of peak math / memory bandwidth."""

    math: float
    memory: float


#: Calibrated from the paper's measured category efficiencies (Figs 8-9):
#: FP32 convolutions reach ~52-103% of math peak, FP16 (Tensor Core)
#: convolutions only ~21-52% because small filter counts underfeed the
#: Tensor Cores; point-wise kernels and copies run at 45-80% of DRAM peak.
EFFICIENCY_TABLE: dict[tuple[str, str], CategoryEfficiency] = {
    ("conv_fwd", "fp32"): CategoryEfficiency(math=0.76, memory=0.65),
    ("conv_bwd", "fp32"): CategoryEfficiency(math=0.96, memory=0.65),
    ("conv_fwd", "fp16"): CategoryEfficiency(math=0.50, memory=0.95),
    ("conv_bwd", "fp16"): CategoryEfficiency(math=0.50, memory=0.70),
    ("pointwise_fwd", "fp32"): CategoryEfficiency(math=0.02, memory=0.75),
    ("pointwise_fwd", "fp16"): CategoryEfficiency(math=0.02, memory=0.60),
    ("pointwise_bwd", "fp32"): CategoryEfficiency(math=0.02, memory=0.55),
    ("pointwise_bwd", "fp16"): CategoryEfficiency(math=0.02, memory=0.40),
    ("optimizer", "fp32"): CategoryEfficiency(math=0.01, memory=0.30),
    ("optimizer", "fp16"): CategoryEfficiency(math=0.01, memory=0.33),
    ("copy", "fp32"): CategoryEfficiency(math=0.01, memory=0.67),
    ("copy", "fp16"): CategoryEfficiency(math=0.01, memory=0.50),
    ("allreduce", "fp32"): CategoryEfficiency(math=0.01, memory=0.02),
    ("allreduce", "fp16"): CategoryEfficiency(math=0.01, memory=0.02),
    ("cast", "fp32"): CategoryEfficiency(math=0.01, memory=0.25),
    ("cast", "fp16"): CategoryEfficiency(math=0.01, memory=0.25),
}


#: Math-efficiency multipliers by kernel-name prefix (see _math_modifier).
_MATH_MODIFIERS: dict[str, dict[str, float]] = {
    "fp32": {"conv5x5": 0.78, "deconv": 0.80},
    "fp16": {"conv5x5": 0.60, "deconv": 0.70},
}


@dataclass
class CategoryTime:
    """Modeled execution of one kernel category."""

    category: str
    kernels: int
    time_s: float
    flops: int
    bytes: int
    pct_math_peak: float
    pct_mem_peak: float


class KernelTimeModel:
    """Maps a traced kernel inventory onto a GPU's roofline."""

    def __init__(self, gpu: GpuSpec, precision: str = "fp32",
                 efficiency_table: dict | None = None,
                 kernel_launch_overhead_s: float = 2.0e-6):
        if precision not in ("fp32", "fp16"):
            raise ValueError(f"unsupported precision {precision!r}")
        self.gpu = gpu
        self.precision = precision
        self.table = efficiency_table or EFFICIENCY_TABLE
        self.launch_overhead = float(kernel_launch_overhead_s)

    def _efficiency(self, category: str) -> CategoryEfficiency:
        key = (category, self.precision)
        if key not in self.table:
            raise KeyError(f"no efficiency entry for {key}")
        return self.table[key]

    def _math_modifier(self, name: str) -> float:
        """Kernel-geometry derating of the math efficiency.

        Wide 5x5 filters and strided deconvolutions run notably below the
        1x1/3x3 implicit-GEMM efficiency — the "small filter sizes per
        layer" penalty the paper identifies for Tiramisu (Section VII-A).
        """
        for prefix, modifier in _MATH_MODIFIERS.get(self.precision, {}).items():
            if name.startswith(prefix):
                return modifier
        return 1.0

    def category_time(self, analysis: GraphAnalysis, category: str) -> CategoryTime:
        flops = analysis.category_flops(category)
        nbytes = analysis.category_bytes(category)
        kernels = analysis.category_kernels(category)
        eff = self._efficiency(category)
        peak_math = self.gpu.peak(self.precision)
        peak_mem = self.gpu.mem_bandwidth
        t = kernels * self.launch_overhead
        for rec in analysis.records:
            if rec.category != category:
                continue
            t_math = (rec.flops / (peak_math * eff.math * self._math_modifier(rec.name))
                      if rec.flops else 0.0)
            t_mem = rec.bytes / (peak_mem * eff.memory) if rec.bytes else 0.0
            t += max(t_math, t_mem)
        return CategoryTime(
            category=category,
            kernels=kernels,
            time_s=t,
            flops=flops,
            bytes=nbytes,
            pct_math_peak=(flops / t / peak_math * 100.0) if t > 0 else 0.0,
            pct_mem_peak=(nbytes / t / peak_mem * 100.0) if t > 0 else 0.0,
        )

    def breakdown(self, analysis: GraphAnalysis) -> list[CategoryTime]:
        """Per-category times for every category present in the trace."""
        return [self.category_time(analysis, c) for c in analysis.categories()]

    def step_time(self, analysis: GraphAnalysis) -> float:
        """Total modeled GPU time for one training step (kernels serialized,
        as the paper's FP32 profiles show the GPU completely busy)."""
        return sum(ct.time_s for ct in self.breakdown(analysis))

    def samples_per_second(self, analysis: GraphAnalysis) -> float:
        return analysis.batch / self.step_time(analysis)

    def sustained_flops(self, analysis: GraphAnalysis) -> float:
        """Training FLOP/s: counted work / modeled time."""
        return analysis.total_flops / self.step_time(analysis)
