"""Kernel-category breakdown tables (Figures 3, 8 and 9).

For each network and precision the paper tabulates, per kernel category:
kernel count, total time (ms), math (TF), memory traffic (GB), percent of
step time, and percent of peak math/memory.  We regenerate the same table
from the traced inventory and the roofline time model, for a 4-node
(24-GPU) configuration like the paper's profiling run (the NCCL all-reduce
row is added from the gradient volume and the NVLink bandwidth).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..core.flops import count_training_flops
from ..core.networks import deeplab_modified, tiramisu_modified
from ..framework.graph import GraphAnalysis, KernelRecord
from ..hpc.specs import V100, SUMMIT, GpuSpec
from .kernels import CategoryTime, KernelTimeModel

__all__ = ["PAPER_CATEGORY_TIME_PCT", "BreakdownTable", "kernel_breakdown",
           "PAPER_DETAIL"]

#: Figure 3 "% Time" per category: (network, precision) -> {category: pct}.
PAPER_CATEGORY_TIME_PCT = {
    ("tiramisu", "fp32"): {
        "conv_fwd": 31.4, "pointwise_fwd": 7.9, "conv_bwd": 49.2,
        "pointwise_bwd": 0.7, "optimizer": 0.5, "copy": 5.5,
        "allreduce": 5.1, "cast": 0.0, "idle": 0.0,
    },
    ("tiramisu", "fp16"): {
        "conv_fwd": 25.3, "pointwise_fwd": 12.2, "conv_bwd": 38.3,
        "pointwise_bwd": 2.8, "optimizer": 0.7, "copy": 12.3,
        "allreduce": 5.4, "cast": 0.1, "idle": 2.9,
    },
    ("deeplabv3+", "fp32"): {
        "conv_fwd": 33.3, "pointwise_fwd": 3.2, "conv_bwd": 49.0,
        "pointwise_bwd": 0.9, "optimizer": 0.3, "copy": 8.6,
        "allreduce": 4.6, "cast": 0.0, "idle": 0.0,
    },
    ("deeplabv3+", "fp16"): {
        "conv_fwd": 18.1, "pointwise_fwd": 6.4, "conv_bwd": 36.7,
        "pointwise_bwd": 3.1, "optimizer": 0.5, "copy": 26.1,
        "allreduce": 7.2, "cast": 0.2, "idle": 1.7,
    },
}

#: Figures 8/9 absolute step totals: (network, precision) ->
#: (time_ms, math_TF, mem_GB).  FP32 is batch 1, FP16 batch 2.
PAPER_DETAIL = {
    ("tiramisu", "fp32"): (549.9, 4.19, 308.5),
    ("tiramisu", "fp16"): (417.3, 8.38, 262.1),
    ("deeplabv3+", "fp32"): (1215.9, 14.41, 220.9),
    ("deeplabv3+", "fp16"): (817.3, 28.82, 203.6),
}


@dataclass
class BreakdownTable:
    """One Figure 8/9-style table."""

    network: str
    precision: str
    batch: int
    rows: list[CategoryTime]
    total_time_s: float
    total_flops: int
    total_bytes: int

    def time_pct(self) -> dict[str, float]:
        return {r.category: 100.0 * r.time_s / self.total_time_s for r in self.rows}

    def dominant_category(self) -> str:
        return max(self.rows, key=lambda r: r.time_s).category


def _allreduce_record(model, precision: str) -> KernelRecord:
    """The NCCL intra-node all-reduce kernel row.

    Volume = gradient bytes; the systolic ring moves 2 (g-1)/g * V per GPU
    over NVLink, which bounds these kernels well below DRAM peak (the
    paper's 1-3% of memory peak).
    """
    itemsize = 2 if precision == "fp16" else 4
    grad_bytes = model.num_parameters() * itemsize
    g = SUMMIT.node.gpus
    moved = int(2 * (g - 1) / g * grad_bytes)
    return KernelRecord("nccl_allreduce", "allreduce", 0, moved, count=30)


def kernel_breakdown(network: str, precision: str,
                     gpu: GpuSpec = V100,
                     height: int = 768, width: int = 1152) -> BreakdownTable:
    """Regenerate one of the Figure 8/9 tables."""
    batch = 2 if precision == "fp16" else 1
    if network == "deeplabv3+":
        model = deeplab_modified(in_channels=16)
    elif network == "tiramisu":
        model = tiramisu_modified(in_channels=16)
    else:
        raise ValueError(f"unknown network {network!r}")
    analysis = count_training_flops(model, (16, height, width), batch=batch,
                                    precision=precision)
    # Append the all-reduce kernels (present in the paper's 24-GPU profile).
    records = analysis.records + [_allreduce_record(model, precision)]
    analysis = GraphAnalysis(records, analysis.batch, analysis.precision)
    timer = KernelTimeModel(gpu, precision)
    rows = timer.breakdown(analysis)
    # NVLink, not DRAM, bounds the all-reduce row: recompute its time.
    nvlink_bw = SUMMIT.node.nvlink.bandwidth
    for i, row in enumerate(rows):
        if row.category == "allreduce":
            t = row.bytes / nvlink_bw
            rows[i] = CategoryTime(
                category=row.category, kernels=row.kernels, time_s=t,
                flops=row.flops, bytes=row.bytes,
                pct_math_peak=0.0,
                pct_mem_peak=row.bytes / t / gpu.mem_bandwidth * 100.0,
            )
    total_time = sum(r.time_s for r in rows)
    return BreakdownTable(
        network=network, precision=precision, batch=batch, rows=rows,
        total_time_s=total_time,
        total_flops=sum(r.flops for r in rows),
        total_bytes=sum(r.bytes for r in rows),
    )
