"""Weak-scaling performance model (Figures 4 and 5).

Step-time decomposition for synchronous data-parallel training at scale:

    t(n) = max(t_gpu, t_input(n)) + t_comm_exposed(n) + t_control(n)
           + t_straggler(n)

* ``t_gpu`` — single-GPU step time from the kernel roofline model;
* ``t_input`` — input-pipeline time; ~0 with node-local staging, but
  reading from the global file system caps aggregate bandwidth and adds
  variability once demand saturates it (Figure 5);
* ``t_comm_exposed`` — the all-reduce time not hidden behind backprop.
  Gradient lag (Section V-B4) overlaps almost all of it; lag-0 exposes the
  top layers' reductions;
* ``t_control`` — Horovod control-plane cost (hierarchical tree by
  default; the centralized original can be selected to see it melt down);
* ``t_straggler`` — synchronous SGD pays the *max* over n ranks of the
  per-rank jitter; for Gaussian jitter the expected max grows like
  sigma * sqrt(2 ln n), the dominant smooth efficiency loss at scale.

Parallel efficiency is t(1)/t(n); images/s is n * batch / t(n).
"""
from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import log, sqrt

from ..climate.stats import PAPER_DATASET
from ..comm.costmodel import (
    centralized_control_time,
    hierarchical_allreduce_time,
    hierarchical_control_time,
    tree_allreduce_time,
)
from ..hpc.specs import PIZ_DAINT, SUMMIT, SystemSpec
from .singlegpu import single_gpu_performance

__all__ = [
    "PAPER_SCALING_ANCHORS",
    "ScalingPoint",
    "ScalingModel",
    "weak_scaling_curve",
    "step_time_model",
]

#: Headline anchors from Section VII-B: configuration -> (gpus, efficiency %,
#: sustained PF/s).
PAPER_SCALING_ANCHORS = {
    ("tiramisu_4ch", "piz_daint", "fp32"): (5300, 79.0, 21.0),
    ("tiramisu", "summit", "fp32"): (24576, 90.0, 176.8),
    ("tiramisu", "summit", "fp16"): (24576, 90.0, 492.2),
    ("deeplabv3+", "summit", "fp32"): (27360, 90.7, 325.8),
    ("deeplabv3+", "summit", "fp16"): (27360, 90.7, 999.0),
}

#: Tensors negotiated per step ("over a hundred", Section V-A3).
TENSORS_PER_STEP = 110


@dataclass
class ScalingPoint:
    """One point of a weak-scaling curve."""

    gpus: int
    step_time_s: float
    images_per_second: float
    sustained_pflops: float
    efficiency: float
    input_limited: bool = False


@dataclass
class ScalingModel:
    """Calibratable step-time model for one (network, system, precision)."""

    network: str
    system: SystemSpec
    precision: str
    lag: int = 1
    control_plane: str = "hierarchical"
    staging: str = "local"          # "local" (staged) or "global" (direct FS)
    straggler_sigma: float = 0.02   # per-rank jitter fraction of t_gpu
    exposure_lag0: float = 0.35     # unhidden fraction of all-reduce, lag 0
    exposure_lag1: float = 0.10     # unhidden fraction with gradient lag
    fs_penalty_slope: float = 0.15  # variability penalty per unit saturation

    def __post_init__(self):
        if self.staging not in ("local", "global"):
            raise ValueError(f"unknown staging {self.staging!r}")
        point = single_gpu_performance(self.network, self.system.node.gpu,
                                       self.precision)
        self._single = point
        self.batch = point.batch
        self.t_gpu = point.batch / point.samples_per_second
        self.tf_per_sample = point.tf_per_sample
        # Gradient volume: parameters at the working precision.
        itemsize = 2 if self.precision == "fp16" else 4
        self._grad_bytes = _num_parameters(self.network) * itemsize
        # The pipeline reads the full 16-channel file even when the network
        # consumes a channel subset (channel selection happens after decode),
        # so input demand is always the full sample size.
        self.sample_bytes = float(PAPER_DATASET.sample_bytes)

    # -- components ---------------------------------------------------------

    def comm_time(self, gpus: int) -> float:
        if gpus <= 1:
            return 0.0
        node = self.system.node
        if node.gpus > 1:
            nodes = max(gpus // node.gpus, 1)
            return hierarchical_allreduce_time(
                nodes, self._grad_bytes, node.nvlink, self.system.interconnect,
                gpus_per_node=node.gpus,
                parallel_devices=node.virtual_network_devices,
            )
        return tree_allreduce_time(gpus, self._grad_bytes, self.system.interconnect)

    def exposed_comm_time(self, gpus: int) -> float:
        exposure = self.exposure_lag1 if self.lag >= 1 else self.exposure_lag0
        return exposure * self.comm_time(gpus)

    def control_time(self, gpus: int) -> float:
        if gpus <= 1:
            return 0.0
        if self.control_plane == "centralized":
            return centralized_control_time(gpus, TENSORS_PER_STEP)
        return hierarchical_control_time(gpus, TENSORS_PER_STEP)

    def straggler_time(self, gpus: int) -> float:
        if gpus <= 1:
            return 0.0
        return self.straggler_sigma * self.t_gpu * sqrt(2.0 * log(gpus))

    def input_time(self, gpus: int) -> tuple[float, bool]:
        """(input-limited step floor, is_limited)."""
        if self.staging == "local":
            # Node-local SSD/tmpfs sustains the demand with large margin.
            return 0.0, False
        fs_bw = self.system.filesystem.effective_read_bandwidth
        t_needed = gpus * self.batch * self.sample_bytes / fs_bw
        return t_needed, t_needed > self.t_gpu

    # -- assembly -------------------------------------------------------------

    def step_time(self, gpus: int) -> tuple[float, bool]:
        # Compute-bound path: GPU work plus the max-over-ranks straggler
        # penalty synchronous SGD pays every step.
        t_compute = self.t_gpu + self.straggler_time(gpus)
        # Input-bound path: a saturated FS both caps the rate and adds
        # long-tail variability (Figure 5's error bars).
        t_in, _ = self.input_time(gpus)
        if t_in > 0:
            demand = gpus * self.batch * self.sample_bytes / max(t_in, self.t_gpu)
            sat = demand / self.system.filesystem.effective_read_bandwidth
            t_in *= 1.0 + self.fs_penalty_slope * max(sat - 0.8, 0.0)
        limited = t_in > t_compute
        base = max(t_compute, t_in)
        t = base + self.exposed_comm_time(gpus) + self.control_time(gpus)
        return t, limited

    def point(self, gpus: int) -> ScalingPoint:
        t, limited = self.step_time(gpus)
        images = gpus * self.batch / t
        return ScalingPoint(
            gpus=gpus,
            step_time_s=t,
            images_per_second=images,
            sustained_pflops=images * self.tf_per_sample / 1e3,
            efficiency=self.t_gpu / t,
            input_limited=limited,
        )

    def epoch_time(self, gpus: int, samples_per_gpu: int = 250,
                   validation_fraction: float = 0.125) -> tuple[float, float]:
        """(epoch seconds, validation overhead fraction) at a GPU count.

        Section VI: a validation pass runs after every epoch; the staging
        layout keeps per-GPU epoch sizes constant (250 samples per GPU, from
        the 1500-per-node figure), so the overhead stays "negligible once
        amortized over the steps".  Validation is forward-only, modeled at
        one third of a training step.
        """
        if samples_per_gpu < self.batch:
            raise ValueError("epoch smaller than one batch")
        step_t, _ = self.step_time(gpus)
        train_steps = samples_per_gpu // self.batch
        t_train = train_steps * step_t
        val_steps = max(int(validation_fraction * samples_per_gpu) // self.batch, 1)
        t_val = val_steps * step_t / 3.0
        return t_train + t_val, t_val / (t_train + t_val)

    def strong_scaling_point(self, gpus: int, global_batch: int) -> ScalingPoint:
        """Constant global batch split across workers (Section III).

        The paper notes strong scaling "is generally only of interest when
        effective hyperparameters cannot be found for a larger global batch":
        per-step compute shrinks with 1/gpus while the gradient exchange does
        not, so efficiency decays much faster than in weak scaling — which
        this model makes quantitative.
        """
        if global_batch < gpus:
            raise ValueError(
                f"global batch {global_batch} smaller than {gpus} workers"
            )
        local_batch = global_batch / gpus
        t_compute = self.t_gpu * local_batch / self.batch
        t_compute += self.straggler_time(gpus) * local_batch / self.batch
        t = t_compute + self.exposed_comm_time(gpus) + self.control_time(gpus)
        images = global_batch / t
        t_ref = self.t_gpu * (global_batch / self.batch)  # 1 worker, full batch
        return ScalingPoint(
            gpus=gpus,
            step_time_s=t,
            images_per_second=images,
            sustained_pflops=images * self.tf_per_sample / 1e3,
            efficiency=t_ref / (gpus * t),
            input_limited=False,
        )


@lru_cache(maxsize=8)
def _num_parameters(network: str) -> int:
    from ..core.networks import Tiramisu, TiramisuConfig, deeplab_modified, tiramisu_modified

    if network == "deeplabv3+":
        return deeplab_modified(in_channels=16).num_parameters()
    if network == "tiramisu":
        return tiramisu_modified(in_channels=16).num_parameters()
    if network == "tiramisu_4ch":
        return Tiramisu(TiramisuConfig(in_channels=4)).num_parameters()
    raise ValueError(f"unknown network {network!r}")


def _default_counts(system: SystemSpec, max_gpus: int | None) -> list[int]:
    g = system.node.gpus
    counts = [1]
    n = g
    limit = max_gpus or system.total_gpus
    while n <= limit:
        counts.append(n)
        n *= 2
    if counts[-1] != limit:
        counts.append(limit)
    return counts


def weak_scaling_curve(
    network: str,
    system_name: str = "summit",
    precision: str = "fp16",
    lag: int = 1,
    staging: str = "local",
    gpu_counts: list[int] | None = None,
    **model_kwargs,
) -> list[ScalingPoint]:
    """Compute a Figure-4/5 series."""
    system = {"summit": SUMMIT, "piz_daint": PIZ_DAINT}[system_name]
    model = _make_model(network, system, precision, lag, staging, **model_kwargs)
    counts = gpu_counts or _default_counts(system, None)
    return [model.point(n) for n in counts]


def _make_model(network: str, system: SystemSpec, precision: str, lag: int,
                staging: str, **kwargs) -> ScalingModel:
    defaults = dict(straggler_sigma=0.02)
    if system is PIZ_DAINT:
        # Piz Daint showed more per-step jitter (single GPU per node, no
        # NVLink islands to absorb it); calibrated to the 79% anchor.
        defaults = dict(straggler_sigma=0.045)
    defaults.update(kwargs)
    return ScalingModel(network=network, system=system, precision=precision,
                        lag=lag, staging=staging, **defaults)


def step_time_model(architecture: str, gpus: int, precision: str,
                    lag: int = 0, system_name: str | None = None) -> float:
    """Step time for the convergence wall-clock mapping (Figure 6)."""
    if system_name is None:
        system_name = "piz_daint" if architecture == "tiramisu_4ch" else "summit"
    system = {"summit": SUMMIT, "piz_daint": PIZ_DAINT}[system_name]
    model = _make_model(architecture, system, precision, lag, "local")
    t, _ = model.step_time(max(gpus, 1))
    return t
