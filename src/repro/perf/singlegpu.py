"""Single-GPU performance table (Figure 2).

For each (network, GPU, precision) the paper reports the operation count
(TF/sample), training rate (samples/s), sustained performance (TF/s) and
percent of peak.  We regenerate the table from the traced kernel inventory
plus the roofline time model; batch sizes follow the paper (1 for FP32, 2
for FP16, whose lower footprint allows two images per GPU).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..core.flops import count_training_flops
from ..core.networks import Tiramisu, TiramisuConfig, deeplab_modified, tiramisu_modified
from ..hpc.specs import P100, V100, GpuSpec
from .kernels import KernelTimeModel

__all__ = ["PAPER_FIG2", "SingleGpuPoint", "single_gpu_performance", "figure2_table"]

#: Figure 2 rows: (network, gpu, precision) -> (TF/sample, samples/s, TF/s, %peak)
PAPER_FIG2 = {
    ("deeplabv3+", "V100", "fp16"): (14.41, 2.67, 38.45, 31.0),
    ("deeplabv3+", "V100", "fp32"): (14.41, 0.87, 12.53, 80.0),
    ("tiramisu", "V100", "fp16"): (4.188, 5.00, 20.93, 17.0),
    ("tiramisu", "V100", "fp32"): (4.188, 1.91, 8.00, 51.0),
    ("tiramisu_4ch", "P100", "fp32"): (3.703, 1.20, 4.44, 48.0),
}


@dataclass
class SingleGpuPoint:
    """One row of the Figure 2 table."""

    network: str
    gpu: str
    precision: str
    batch: int
    tf_per_sample: float
    samples_per_second: float
    sustained_tf: float
    pct_peak: float
    paper: tuple[float, float, float, float] | None = None


def _build(network: str, channels: int):
    if network == "deeplabv3+":
        return deeplab_modified(in_channels=channels)
    if network == "tiramisu":
        return tiramisu_modified(in_channels=channels)
    if network == "tiramisu_4ch":
        return Tiramisu(TiramisuConfig(in_channels=4))
    raise ValueError(f"unknown network {network!r}")


def single_gpu_performance(
    network: str,
    gpu: GpuSpec,
    precision: str,
    batch: int | None = None,
    height: int = 768,
    width: int = 1152,
) -> SingleGpuPoint:
    """Model one Figure 2 configuration."""
    if batch is None:
        batch = 2 if precision == "fp16" else 1
    channels = 4 if network == "tiramisu_4ch" else 16
    model = _build(network, channels)
    analysis = count_training_flops(model, (channels, height, width),
                                    batch=batch, precision=precision)
    timer = KernelTimeModel(gpu, precision)
    rate = timer.samples_per_second(analysis)
    sustained = timer.sustained_flops(analysis)
    return SingleGpuPoint(
        network=network,
        gpu=gpu.name,
        precision=precision,
        batch=batch,
        tf_per_sample=analysis.flops_per_sample() / 1e12,
        samples_per_second=rate,
        sustained_tf=sustained / 1e12,
        pct_peak=sustained / gpu.peak(precision) * 100.0,
        paper=PAPER_FIG2.get((network, gpu.name, precision)),
    )


def figure2_table() -> list[SingleGpuPoint]:
    """All five rows of Figure 2."""
    return [
        single_gpu_performance("deeplabv3+", V100, "fp16"),
        single_gpu_performance("deeplabv3+", V100, "fp32"),
        single_gpu_performance("tiramisu", V100, "fp16"),
        single_gpu_performance("tiramisu", V100, "fp32"),
        single_gpu_performance("tiramisu_4ch", P100, "fp32"),
    ]
