"""Figure 5: weak scaling with node-local staging vs global file system.

On Piz Daint the paper compares Tiramisu throughput when input comes from
tmpfs-staged data (the default) against direct Lustre reads: they match at
small scale, but by 2048 GPUs the network demands ~110 GB/s — essentially
the file system's usable 112 GB/s — so the global-storage run loses 9.5%
efficiency (75.8% vs 83.4%) and shows much larger variability.  The paper
did not scale the global-storage configuration past 2048 nodes.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..hpc.specs import PIZ_DAINT
from .scaling import ScalingModel, ScalingPoint

__all__ = ["PAPER_FIG5_ANCHORS", "Figure5Point", "figure5_curves", "aggregate_demand"]

#: Paper anchors at 2048 GPUs: efficiency % for local vs global input.
PAPER_FIG5_ANCHORS = {"local": 83.4, "global": 75.8, "demand_gb_s": 110.0,
                      "fs_limit_gb_s": 112.0}


@dataclass
class Figure5Point:
    """One GPU count with both storage configurations."""

    gpus: int
    local: ScalingPoint
    global_fs: ScalingPoint

    @property
    def efficiency_penalty(self) -> float:
        """Efficiency lost by skipping staging (percentage points)."""
        return (self.local.efficiency - self.global_fs.efficiency) * 100.0


def figure5_curves(gpu_counts: list[int] | None = None,
                   network: str = "tiramisu_4ch") -> list[Figure5Point]:
    """The two Figure 5 series on Piz Daint."""
    counts = gpu_counts or [1, 64, 128, 256, 512, 1024, 1536, 2048]
    local = ScalingModel(network=network, system=PIZ_DAINT, precision="fp32",
                         lag=0, staging="local", straggler_sigma=0.045)
    global_fs = ScalingModel(network=network, system=PIZ_DAINT, precision="fp32",
                             lag=0, staging="global", straggler_sigma=0.045)
    return [Figure5Point(n, local.point(n), global_fs.point(n)) for n in counts]


def aggregate_demand(point: ScalingPoint, sample_bytes: float) -> float:
    """Input bandwidth the run pulls at this throughput (bytes/s)."""
    return point.images_per_second * sample_bytes
