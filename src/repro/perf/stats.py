"""Throughput statistics, following the paper's methodology (Section VI).

"We compute the mean number of processed samples for every step over ranks
and the median of the result over time and quote this as our sustained
throughput.  We further compute an (asymmetric) error bar based on the
central 68% confidence interval (computed from the 0.16 and 0.84
percentiles) over time."
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ThroughputStats", "sustained_throughput", "peak_throughput"]


@dataclass(frozen=True)
class ThroughputStats:
    """Sustained throughput with an asymmetric 68% CI."""

    median: float
    lo: float        # 0.16 percentile
    hi: float        # 0.84 percentile

    @property
    def err_minus(self) -> float:
        return self.median - self.lo

    @property
    def err_plus(self) -> float:
        return self.hi - self.median


def sustained_throughput(samples_per_step: np.ndarray,
                         step_times: np.ndarray) -> ThroughputStats:
    """Paper-style sustained rate from per-(step, rank) sample counts.

    Parameters
    ----------
    samples_per_step:
        (steps, ranks) samples each rank processed in each step.
    step_times:
        (steps,) wall time of each global step.
    """
    samples = np.asarray(samples_per_step, dtype=np.float64)
    times = np.asarray(step_times, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError("samples_per_step must be (steps, ranks)")
    if times.shape != (samples.shape[0],):
        raise ValueError("step_times must be (steps,)")
    if (times <= 0).any():
        raise ValueError("step times must be positive")
    # Mean over ranks per step, times rank count -> global samples per step.
    per_step_rate = samples.mean(axis=1) * samples.shape[1] / times
    lo, med, hi = np.quantile(per_step_rate, [0.16, 0.5, 0.84])
    return ThroughputStats(median=float(med), lo=float(lo), hi=float(hi))


def peak_throughput(samples_per_step: np.ndarray, step_times: np.ndarray) -> float:
    """Best single-step global rate (the paper's 'peak' numbers)."""
    samples = np.asarray(samples_per_step, dtype=np.float64)
    times = np.asarray(step_times, dtype=np.float64)
    rates = samples.sum(axis=1) / times
    return float(rates.max())
