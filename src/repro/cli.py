"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro.cli fig2               # single-GPU performance table
    python -m repro.cli fig4 --system summit --network deeplabv3+ --precision fp16
    python -m repro.cli fig5
    python -m repro.cli flops
    python -m repro.cli staging --nodes 1024
    python -m repro.cli control-plane --ranks 4096
    python -m repro.cli train --samples 16 --epochs 4
    python -m repro.cli trace --steps 3 --out trace_out
    python -m repro.cli faults --ranks 8 --plan "rank_fail@2:rank=1;read_fault@1"
    python -m repro.cli serve --requests 64 --replicas 2 --plan "rank_fail@2:rank=1"
    python -m repro.cli campaign --users 3 --jobs 12 --plan "rank_fail@1:rank=0"
    python -m repro.cli lint --format json src tests
"""
from __future__ import annotations

import argparse
import pathlib
import sys


def _cmd_fig2(args) -> int:
    from .perf import PAPER_FIG2, figure2_table, format_table

    rows = []
    for p in figure2_table():
        paper = PAPER_FIG2[(p.network, p.gpu, p.precision)]
        rows.append([p.network, p.gpu, p.precision, p.batch,
                     f"{p.tf_per_sample:.2f} ({paper[0]})",
                     f"{p.samples_per_second:.2f} ({paper[1]})",
                     f"{p.pct_peak:.1f} ({paper[3]})"])
    print(format_table(
        ["network", "gpu", "prec", "batch", "TF/sample (paper)",
         "samples/s (paper)", "% peak (paper)"],
        rows, title="Figure 2 - single GPU performance"))
    return 0


def _cmd_fig4(args) -> int:
    from .perf import format_table, weak_scaling_curve

    points = weak_scaling_curve(args.network, args.system, args.precision,
                                lag=args.lag)
    rows = [[p.gpus, f"{p.images_per_second:,.0f}",
             f"{p.sustained_pflops:,.2f}", f"{p.efficiency*100:.1f}"]
            for p in points]
    print(format_table(["GPUs", "images/s", "PF/s", "eff %"], rows,
                       title=f"Figure 4 - {args.network} on {args.system} "
                             f"{args.precision} lag={args.lag}"))
    return 0


def _cmd_fig5(args) -> int:
    from .perf import figure5_curves, format_table

    rows = [[c.gpus, f"{c.local.images_per_second:.0f}",
             f"{c.global_fs.images_per_second:.0f}",
             f"{c.local.efficiency*100:.1f}", f"{c.global_fs.efficiency*100:.1f}"]
            for c in figure5_curves()]
    print(format_table(
        ["GPUs", "img/s local", "img/s global", "eff% local", "eff% global"],
        rows, title="Figure 5 - staged vs global file system (Piz Daint)"))
    return 0


def _cmd_flops(args) -> int:
    from .core import network_flop_table
    from .perf import format_table

    rows = [[r.name, f"{r.tf_per_sample:.3f}", r.paper_tf_per_sample,
             f"{r.ratio_to_paper:.2f}", f"{r.parameters:,}"]
            for r in network_flop_table()]
    print(format_table(["network", "TF/sample", "paper", "ratio", "params"],
                       rows, title="Operation counts (Section VI trace)"))
    return 0


def _cmd_staging(args) -> int:
    from .climate import PAPER_DATASET
    from .hpc import SUMMIT
    from .io import plan_staging
    from .perf import format_table

    rows = []
    for strategy in ("naive", "distributed"):
        r = plan_staging(SUMMIT, PAPER_DATASET.num_samples,
                         PAPER_DATASET.sample_bytes, args.nodes,
                         strategy=strategy)
        rows.append([strategy, f"{r.total_time_s/60:.2f}",
                     f"{r.replication_factor:.1f}",
                     f"{r.fs_read_bytes/1e12:.2f}"])
    print(format_table(["strategy", "minutes", "reads/file", "FS read TB"],
                       rows, title=f"Staging at {args.nodes} Summit nodes"))
    return 0


def _cmd_control_plane(args) -> int:
    from .comm import (ReadinessSchedule, centralized_negotiation,
                       hierarchical_negotiation)
    from .perf import format_table

    s = ReadinessSchedule.random(args.ranks, args.tensors, seed=0)
    c = centralized_negotiation(s)
    h = hierarchical_negotiation(s, radix=args.radix)
    rows = [
        ["centralized", c.controller_load],
        [f"hierarchical (r={args.radix})",
         int((h.messages_sent + h.messages_received).max())],
    ]
    print(format_table(["control plane", "busiest-rank msgs/step"], rows,
                       title=f"{args.ranks} ranks x {args.tensors} tensors "
                             f"(orders identical: {c.order == h.order})"))
    return 0


def _cmd_report(args) -> int:
    from .perf import render_summary

    print(render_summary())
    return 0


def _cmd_train(args) -> int:
    import numpy as np

    from .climate import CLASS_NAMES, ClimateDataset, Grid, class_frequencies
    from .core import TrainConfig, Trainer
    from .core.networks import Tiramisu, TiramisuConfig

    grid = Grid(args.grid, args.grid * 3 // 2)
    dataset = ClimateDataset.synthesize(grid, num_samples=args.samples,
                                        seed=args.seed, channels=8)
    freqs = class_frequencies(dataset.labels)
    model = Tiramisu(TiramisuConfig(in_channels=8, base_filters=16, growth=8,
                                    down_layers=(2, 2), bottleneck_layers=2,
                                    kernel=3, dropout=0.0),
                     rng=np.random.default_rng(args.seed))
    trainer = Trainer(model, TrainConfig(lr=args.lr, optimizer="larc"), freqs)
    rng = np.random.default_rng(args.seed + 1)
    for epoch in range(args.epochs):
        losses = [trainer.train_step(x, y).loss
                  for x, y in dataset.batches(dataset.splits.train, 2, rng)]
        print(f"epoch {epoch}: loss {np.mean(losses):.4f}")
    report = trainer.evaluate(
        dataset.batches(dataset.splits.validation, 1, drop_last=False),
        class_names=CLASS_NAMES)
    print(f"validation mean IoU {report.mean_iou:.3f} "
          f"(accuracy {report.accuracy:.3f})")
    return 0


def _cmd_trace(args) -> int:
    """Run a small instrumented training job; write trace + metrics files.

    The whole-run observability artifact: trainer, input-pipeline, and
    gradient-exchange spans land in one Chrome trace (open in
    ``chrome://tracing`` or https://ui.perfetto.dev), alongside a JSONL
    structured log and a paper-style (median, central-68%) metrics report.
    """
    from pathlib import Path

    import numpy as np

    import json

    from .climate import ClimateDataset, Grid, class_frequencies
    from .comm.timeline import build_timeline
    from .core import DistributedTrainer, TrainConfig
    from .core.networks import Tiramisu, TiramisuConfig
    from .io.pipeline import PrefetchPipeline
    from .perf.stats import sustained_throughput
    from .telemetry import (CrossRankTrace, Telemetry, activate,
                            render_metrics_report, write_chrome_trace,
                            write_jsonl)

    if args.steps < 1 or args.samples < 1 or args.ranks < 1 or args.batch < 1:
        raise SystemExit("trace: --steps, --samples, --ranks, and --batch "
                         "must all be >= 1")
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    tel = Telemetry()
    grid = Grid(args.grid, args.grid * 3 // 2)
    step_durations = []
    last_result = None
    with activate(tel):
        dataset = ClimateDataset.synthesize(grid, num_samples=args.samples,
                                            seed=args.seed, channels=4)
        freqs = class_frequencies(dataset.labels)

        def factory():
            return Tiramisu(
                TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                               down_layers=(2,), bottleneck_layers=2,
                               kernel=3, dropout=0.0),
                rng=np.random.default_rng(args.seed))

        trainer = DistributedTrainer(
            factory, args.ranks, TrainConfig(lr=args.lr, optimizer="larc"),
            freqs)
        # The input pipeline feeds per-rank batches through the prefetch
        # queue so io spans/latency land in the same trace as the steps.
        need = args.steps * args.ranks * args.batch
        indices = np.resize(np.arange(len(dataset)), need).tolist()
        pipeline = PrefetchPipeline(
            lambda i: (dataset.images[i], dataset.labels[i]),
            indices, num_workers=2, prefetch_depth=4)
        feed = iter(pipeline)
        for step in range(args.steps):
            rank_batches = []
            for _ in range(args.ranks):
                pairs = [next(feed) for _ in range(args.batch)]
                rank_batches.append((np.stack([p[0] for p in pairs]),
                                     np.stack([p[1] for p in pairs])))
            with tel.tracer.span("global_step", category="trainer",
                                 step=step) as sp:
                last_result = trainer.train_step(rank_batches)
            step_durations.append(sp.duration_s)
            tel.metrics.histogram("trainer.step_time_s").observe(sp.duration_s)

        if args.serve_requests:
            # A small serving drill in the *same* session, so serve.* spans
            # merge into the one trace (PR 4's spans were previously lost).
            from .serve import (FixedServiceTime, InferenceServer,
                                ServeConfig, WorkloadConfig, synth_workload)

            server = InferenceServer(
                factory,
                ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                            num_replicas=2, max_batch_size=4,
                            max_wait_s=0.002, forward_batch=16,
                            cache_budget_bytes=0),
                service_model=FixedServiceTime(per_window_s=0.001),
                model_key=f"tiramisu-seed{args.seed}")
            server.serve(synth_workload(WorkloadConfig(
                num_requests=args.serve_requests, rate_rps=500.0,
                image_hw=(16, 16), channels=4, repeat_fraction=0.25,
                seed=args.seed)))

    stats = sustained_throughput(
        np.full((args.steps, args.ranks), args.batch, dtype=np.float64),
        np.asarray(step_durations))

    # Reconstruct the last exchange's Horovod-style timeline and merge it
    # into the same trace (one lane set per fusion buffer).
    comm_events = None
    exchange = last_result.exchange if last_result else None
    if exchange is not None and exchange.negotiation is not None:
        flat = [name for group in exchange.fusion.groups for name in group]
        names = [""] * len(flat)
        for pos, tensor in enumerate(exchange.negotiation.order):
            names[tensor] = flat[pos]
        comm_events = build_timeline(exchange.negotiation, exchange.fusion,
                                     names)

    spans = tel.tracer.spans()
    trace_path = out / "trace.json"
    write_chrome_trace(trace_path, spans, comm_events=comm_events)
    write_jsonl(out / "telemetry.jsonl", spans, tel.metrics)
    throughput_line = (
        f"per-step throughput: median {stats.median:.2f} samples/s "
        f"(+{stats.err_plus:.2f}/-{stats.err_minus:.2f}, central 68%)")
    (out / "metrics.txt").write_text(render_metrics_report(
        tel.metrics, title="repro trace metrics",
        extra_lines=["", throughput_line]))

    components = sorted({s.category for s in spans})
    if args.json:
        cross = CrossRankTrace(spans)
        by_cat: dict[str, int] = {}
        for s in spans:
            by_cat[s.category] = by_cat.get(s.category, 0) + 1
        doc = {
            "spans": len(spans),
            "components": by_cat,
            "messages": {
                "total": len(cross.links),
                "matched": len(cross.matched()),
                "unmatched": len(cross.unmatched()),
                "dropped": sum(1 for l in cross.links.values() if l.dropped),
            },
            "steps": [b.as_dict() for b in cross.step_breakdowns()],
            "phase_summary": {
                phase: {"median": s.median, "lo": s.lo, "hi": s.hi}
                for phase, s in cross.summarize().items()
            },
            "throughput_samples_per_s": {
                "median": stats.median, "lo": stats.lo, "hi": stats.hi,
            },
            "outputs": {
                "trace": str(trace_path),
                "metrics": str(out / "metrics.txt"),
                "jsonl": str(out / "telemetry.jsonl"),
            },
        }
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"wrote {trace_path} ({len(spans)} spans; "
              f"components: {', '.join(components)})")
        print(f"wrote {out / 'metrics.txt'} and {out / 'telemetry.jsonl'}")
        print(throughput_line)
    return 0


def _cmd_faults(args) -> int:
    """Fault-injection drill: train under a seeded FaultPlan, verify recovery.

    Runs the same seeded multi-rank training twice — once fault-free, once
    under ``--plan`` — through the resilience runner (elastic world shrink,
    read retries, checkpoint autoresume).  The faulty run must complete
    every step and its final model's loss on a fixed evaluation set must
    match the fault-free run within ``--tolerance``.  Writes a Chrome
    trace whose ``resilience`` lane shows each injected fault and its
    recovery span.  Exit code 1 when recovery fails the tolerance.
    """
    from pathlib import Path

    import numpy as np

    from .climate import ClimateDataset, Grid, class_frequencies
    from .core import TrainConfig
    from .core.networks import Tiramisu, TiramisuConfig
    from .perf import format_table
    from .resilience import (FaultPlan, mean_eval_loss,
                             run_resilient_training)
    from .telemetry import (Telemetry, activate, render_metrics_report,
                            write_chrome_trace)

    if args.steps < 1 or args.ranks < 1 or args.samples < 1:
        raise SystemExit("faults: --steps, --ranks, and --samples must be >= 1")
    plan = FaultPlan.parse(args.plan, seed=args.seed)
    grid = Grid(args.grid, args.grid * 3 // 2)
    dataset = ClimateDataset.synthesize(grid, num_samples=args.samples,
                                        seed=args.seed, channels=4)
    freqs = class_frequencies(dataset.labels)

    def factory():
        return Tiramisu(
            TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                           down_layers=(2,), bottleneck_layers=2,
                           kernel=3, dropout=0.0),
            rng=np.random.default_rng(args.seed))

    def provider(step, rank, world_size):
        idx = (step * world_size + rank) % len(dataset)
        return dataset.images[idx:idx + 1], dataset.labels[idx:idx + 1]

    eval_idx = list(dataset.splits.validation) + list(dataset.splits.train)
    eval_batches = [(dataset.images[i:i + 1], dataset.labels[i:i + 1])
                    for i in eval_idx[:8]]
    config = TrainConfig(lr=args.lr, optimizer="larc")
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    baseline = run_resilient_training(
        factory, config, args.ranks, provider, steps=args.steps,
        class_frequencies=freqs)
    base_loss = mean_eval_loss(baseline.trainer, eval_batches)

    tel = Telemetry()
    with activate(tel):
        faulty = run_resilient_training(
            factory, config, args.ranks, provider, steps=args.steps,
            plan=plan, class_frequencies=freqs,
            checkpoint_dir=out / "ckpts", checkpoint_every=args.ckpt_every,
            lr_scaling=args.lr_scaling)
        faulty_loss = mean_eval_loss(faulty.trainer, eval_batches)
    trace_path = out / "trace.json"
    write_chrome_trace(trace_path, tel.tracer.spans())
    (out / "metrics.txt").write_text(render_metrics_report(
        tel.metrics, title="repro faults metrics"))

    rel = (abs(faulty_loss - base_loss) / abs(base_loss)
           if base_loss else float("inf"))
    completed = faulty.steps_completed == args.steps
    recovered = completed and rel <= args.tolerance
    injected = ", ".join(f"{k}={v}" for k, v in sorted(faulty.injected.items()))
    rows = [
        ["plan", plan.describe() or "(empty)"],
        ["injected", injected or "(none)"],
        ["steps completed", f"{faulty.steps_completed}/{args.steps}"],
        ["world size", f"{faulty.start_world_size} -> {faulty.final_world_size}"],
        ["rank failures", str(faulty.rank_failures or "none")],
        ["elastic recoveries", str(faulty.recoveries)],
        ["read retries", str(faulty.read_retries)],
        ["step retries", str(faulty.step_retries)],
        ["checkpoints saved", str(faulty.checkpoints_saved)],
        ["eval loss (fault-free)", f"{base_loss:.4f}"],
        ["eval loss (faulty)", f"{faulty_loss:.4f}"],
        ["relative difference", f"{rel * 100:.2f}% (tolerance {args.tolerance * 100:.0f}%)"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"Fault drill - {args.ranks} ranks, seed {args.seed}"))
    print(f"wrote {trace_path} and {out / 'metrics.txt'}")
    print("recovery OK" if recovered else "recovery FAILED")
    return 0 if recovered else 1


def _cmd_comm_drill(args) -> int:
    """Communication drill: compressed training must track dense training.

    Runs the same seeded multi-rank training twice through the adaptive
    gradient-exchange engine — once dense, once with lossy compression and
    error feedback — and compares the final models' weighted eval loss on a
    fixed batch set.  Also reports what the engine did on the wire (fused
    collectives, bytes, per-bucket algorithm choices, overlap).  Exit code 1
    when the compressed run misses ``--tolerance``.
    """
    import json

    import numpy as np

    from .climate import ClimateDataset, Grid, class_frequencies
    from .comm import EngineConfig
    from .core import TrainConfig
    from .core.networks import Tiramisu, TiramisuConfig
    from .perf import format_table
    from .resilience import mean_eval_loss, run_resilient_training

    if args.steps < 1 or args.ranks < 2 or args.samples < 1:
        raise SystemExit(
            "comm-drill: needs --steps >= 1, --ranks >= 2, --samples >= 1")
    grid = Grid(args.grid, args.grid * 3 // 2)
    dataset = ClimateDataset.synthesize(grid, num_samples=args.samples,
                                        seed=args.seed, channels=4)
    freqs = class_frequencies(dataset.labels)

    def factory():
        return Tiramisu(
            TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                           down_layers=(2,), bottleneck_layers=2,
                           kernel=3, dropout=0.0),
            rng=np.random.default_rng(args.seed))

    def provider(step, rank, world_size):
        idx = (step * world_size + rank) % len(dataset)
        return dataset.images[idx:idx + 1], dataset.labels[idx:idx + 1]

    eval_idx = list(dataset.splits.validation) + list(dataset.splits.train)
    eval_batches = [(dataset.images[i:i + 1], dataset.labels[i:i + 1])
                    for i in eval_idx[:8]]
    config = TrainConfig(lr=args.lr, optimizer="larc")
    bucket_bytes = args.bucket_kb * 1024

    dense = run_resilient_training(
        factory, config, args.ranks, provider, steps=args.steps,
        class_frequencies=freqs,
        engine=EngineConfig(bucket_bytes=bucket_bytes))
    dense_loss = mean_eval_loss(dense.trainer, eval_batches)
    dense_report = dense.trainer.engine.last_report

    compressed = run_resilient_training(
        factory, config, args.ranks, provider, steps=args.steps,
        class_frequencies=freqs,
        engine=EngineConfig(bucket_bytes=bucket_bytes,
                            compression=args.compression,
                            compression_ratio=args.ratio))
    comp_loss = mean_eval_loss(compressed.trainer, eval_batches)
    comp_report = compressed.trainer.engine.last_report

    rel = (abs(comp_loss - dense_loss) / abs(dense_loss)
           if dense_loss else float("inf"))
    converged = rel <= args.tolerance
    num_tensors = sum(len(g) for g in (dense_report.fusion.groups or []))
    doc = {
        "ranks": args.ranks,
        "steps": args.steps,
        "compression": args.compression,
        "compression_ratio_setting": args.ratio,
        "gradient_tensors": num_tensors,
        "fused_collectives": dense_report.fusion.num_collectives,
        "collective_reduction": (num_tensors
                                 / dense_report.fusion.num_collectives),
        "dense": {
            "eval_loss": dense_loss,
            "wire_bytes": dense_report.wire_bytes,
            "decisions": {str(k): v
                          for k, v in sorted(dense_report.decisions.items())},
            "overlap_fraction": dense_report.overlap_fraction,
        },
        "compressed": {
            "eval_loss": comp_loss,
            "wire_bytes": comp_report.wire_bytes,
            "measured_compression": comp_report.compression_ratio,
        },
        "relative_difference": rel,
        "tolerance": args.tolerance,
        "converged": converged,
    }
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        algos = ", ".join(f"{k}:{v}"
                          for k, v in sorted(dense_report.decisions.items()))
        rows = [
            ["gradient tensors", str(num_tensors)],
            ["fused collectives", str(dense_report.fusion.num_collectives)],
            ["collective reduction",
             f"{num_tensors / dense_report.fusion.num_collectives:.1f}x"],
            ["bucket algorithms", algos],
            ["overlap fraction", f"{dense_report.overlap_fraction:.2f}"],
            ["wire MB/step (dense)", f"{dense_report.wire_bytes / 1e6:.2f}"],
            ["wire MB/step (compressed)",
             f"{comp_report.wire_bytes / 1e6:.2f}"],
            ["measured compression",
             f"{comp_report.compression_ratio:.1f}x"],
            ["eval loss (dense)", f"{dense_loss:.4f}"],
            [f"eval loss ({args.compression})", f"{comp_loss:.4f}"],
            ["relative difference",
             f"{rel * 100:.2f}% (tolerance {args.tolerance * 100:.0f}%)"],
        ]
        print(format_table(
            ["metric", "value"], rows,
            title=f"Comm drill - {args.ranks} ranks, "
                  f"{args.compression} compression, seed {args.seed}"))
        print("convergence OK" if converged else "convergence FAILED")
    return 0 if converged else 1


def _cmd_health(args) -> int:
    """Health drill: faulty training under the streaming/health engine.

    Runs a short multi-rank training job on a **simulated clock** under a
    seeded :class:`FaultPlan` with the full observability control plane
    attached: per-step virtual rank spans (stretched by the injector's
    straggler factors), streaming tumbling windows, and the stock health
    rules.  Deterministic under a fixed seed: the same plan fires — and
    resolves — the same alerts at the same virtual times.  Prints the text
    dashboard (or ``--json`` the machine-readable report with the detected
    straggler rank and the full alert lifecycle) and writes the merged
    cross-rank Chrome trace.
    """
    import json
    from pathlib import Path

    import numpy as np

    from .climate import ClimateDataset, Grid, class_frequencies
    from .core import TrainConfig
    from .core.networks import Tiramisu, TiramisuConfig
    from .resilience import FaultPlan, run_resilient_training
    from .telemetry import (CrossRankTrace, SimulatedClock, Telemetry,
                            activate, write_chrome_trace)

    if args.steps < 1 or args.ranks < 1 or args.samples < 1:
        raise SystemExit("health: --steps, --ranks, and --samples must be >= 1")
    plan = FaultPlan.parse(args.plan, seed=args.seed)
    grid = Grid(args.grid, args.grid * 3 // 2)
    dataset = ClimateDataset.synthesize(grid, num_samples=args.samples,
                                        seed=args.seed, channels=4)
    freqs = class_frequencies(dataset.labels)

    def factory():
        return Tiramisu(
            TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                           down_layers=(2,), bottleneck_layers=2,
                           kernel=3, dropout=0.0),
            rng=np.random.default_rng(args.seed))

    def provider(step, rank, world_size):
        idx = (step * world_size + rank) % len(dataset)
        return dataset.images[idx:idx + 1], dataset.labels[idx:idx + 1]

    clock = SimulatedClock()
    tel = Telemetry(clock=clock)
    tel.attach_health(window_s=args.window)
    base_s = 0.4 * args.window          # nominal per-rank compute (virtual)
    comm_s = 0.1 * args.window

    def on_step(step, result, trainer, original_ids):
        # Emit the step's *virtual* execution: each surviving rank computes
        # for base_s stretched by its straggler factor, then one exchange.
        # The simulated clock then advances one window, so the runner's
        # sample/advance/evaluate closes this step's window deterministically.
        injector = trainer.world.fault_injector
        t0 = clock.now()
        slowest = 0.0
        for orig in original_ids:
            factor = injector.delay_factor(orig) if injector else 1.0
            d = base_s * factor
            slowest = max(slowest, d)
            tel.tracer.emit("rank_compute", start_s=t0, duration_s=d,
                            category="trainer", lane=orig, step=step,
                            rank=orig)
            tel.streams.observe("trainer.rank_step_s", d, t=t0, rank=orig)
        tel.tracer.emit("virtual_exchange", start_s=t0 + slowest,
                        duration_s=comm_s, category="comm", step=step, lane=0)
        tel.streams.observe("trainer.step_time_s", slowest + comm_s, t=t0)
        # World size observed every window (not just at the shrink) so the
        # rate-of-change rule has a "before" to diff against.
        tel.streams.observe("dist.world_size", trainer.world_size, t=t0)
        clock.advance(args.window)

    with activate(tel):
        report = run_resilient_training(
            factory, TrainConfig(lr=args.lr, optimizer="larc"), args.ranks,
            provider, steps=args.steps, plan=plan, class_frequencies=freqs,
            on_step=on_step)
        # Flush: close the final window so trailing breaches/OKs settle.
        clock.advance(args.window)
        tel.streams.sample(tel.metrics)
        tel.health.evaluate(t=clock.now())

    spans = tel.tracer.spans()
    cross = CrossRankTrace(spans)
    straggler = None
    for a in tel.health.alerts:
        if "straggler_rank" in a.context:
            straggler = a.context["straggler_rank"]
            break
    if straggler is None:
        counts = cross.straggler_counts()
        straggler = max(counts, key=counts.get) if counts else None

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    write_chrome_trace(trace_path, spans)

    fired = len(tel.health.alerts)
    resolved = len(tel.health.resolved())
    if args.json:
        doc = {
            "plan": plan.describe(),
            "seed": args.seed,
            "steps_completed": report.steps_completed,
            "world": {"start": report.start_world_size,
                      "final": report.final_world_size,
                      "rank_failures": report.rank_failures},
            "straggler_rank": straggler,
            "alerts_fired": fired,
            "alerts_resolved": resolved,
            "health": tel.health.report(),
            "steps": [b.as_dict() for b in cross.step_breakdowns()],
            "messages": {"total": len(cross.links),
                         "matched": len(cross.matched()),
                         "unmatched": len(cross.unmatched())},
            "trace": str(trace_path),
        }
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(tel.health.render(
            title=f"Health drill - {args.ranks} ranks, seed {args.seed}"))
        print(f"straggler rank: {straggler}")
        print(f"alerts: {fired} fired, {resolved} resolved")
        print(f"wrote {trace_path}")
    return 0


def _cmd_serve(args) -> int:
    """Serving drill: seeded synthetic load through the inference server.

    Generates a deterministic request stream (Poisson arrivals, priority
    lanes, repeat snapshots), serves it through micro-batching + the
    replica pool + the tile cache + admission control, and prints the
    end-of-run report (served/shed/failed, per-lane p50/p99, cache hit
    rate).  ``--plan`` injects replica failures mid-run; ``--json`` emits
    the machine-readable report the CI smoke job asserts on.  Exit code 1
    if any *admitted* request was lost (the resilience invariant).
    """
    import json
    from pathlib import Path

    import numpy as np

    from .core.networks import Tiramisu, TiramisuConfig
    from .errors import ReproError
    from .perf import format_table
    from .resilience import FaultPlan
    from .serve import (FixedServiceTime, InferenceServer, ServeConfig,
                        WorkloadConfig, summarize, synth_workload)
    from .telemetry import Telemetry, activate, write_chrome_trace

    if args.requests < 1 or args.replicas < 1 or args.batch < 1:
        raise SystemExit("serve: --requests, --replicas, and --batch "
                         "must all be >= 1")
    slo_s = (("interactive", args.slo_ms / 1e3),) if args.slo_ms else ()
    config = ServeConfig(
        window_hw=(args.window, args.window),
        stride_hw=(args.stride, args.stride) if args.stride else None,
        num_replicas=args.replicas,
        max_batch_size=args.batch,
        max_wait_s=args.max_wait_ms / 1e3,
        forward_batch=args.forward_batch,
        max_depth=args.max_depth,
        slo_s=slo_s,
        cache_budget_bytes=args.cache_mb << 20)
    workload = WorkloadConfig(
        num_requests=args.requests, rate_rps=args.rate,
        image_hw=(args.image, args.image), channels=args.channels,
        repeat_fraction=args.repeat, seed=args.seed)
    plan = FaultPlan.parse(args.plan, seed=args.seed) if args.plan else None
    # A nonzero --service-ms pins virtual service time (deterministic
    # queueing for CI); 0 uses the measured compute wall time.
    service = (FixedServiceTime(per_window_s=args.service_ms / 1e3)
               if args.service_ms else None)

    def factory():
        return Tiramisu(
            TiramisuConfig(in_channels=args.channels, base_filters=8,
                           growth=8, down_layers=(2,), bottleneck_layers=2,
                           kernel=3, dropout=0.0),
            rng=np.random.default_rng(args.seed))

    tel = Telemetry()
    error = None
    with activate(tel):
        server = InferenceServer(factory, config, plan=plan,
                                 service_model=service,
                                 model_key=f"tiramisu-seed{args.seed}")
        try:
            responses = server.serve(synth_workload(workload))
        except ReproError as exc:
            # The failure path must still leave a machine-readable trail:
            # --json consumers (the CI smoke job) parse the report and
            # exit code, never a traceback.
            error = repr(exc)
            responses = []
        report = summarize(responses, server)
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        trace_path = out / "trace.json"
        write_chrome_trace(trace_path, tel.tracer.spans())
        if not args.json:
            print(f"wrote {trace_path}")
    if args.json:
        doc = report.as_dict()
        if error is not None:
            doc["error"] = error
        print(json.dumps(doc, indent=1, sort_keys=True))
    elif error is not None:
        print(f"serve failed: {error}")
    else:
        sheds = ", ".join(f"{k}={v}"
                          for k, v in sorted(report.shed_by_reason.items()))
        rows = [
            ["offered", str(report.offered)],
            ["served", str(report.served)],
            ["shed", f"{report.shed}" + (f" ({sheds})" if sheds else "")],
            ["failed", str(report.failed)],
            ["lost admitted", str(report.lost_admitted)],
            ["throughput", f"{report.throughput_rps:,.1f} req/s"],
            ["batches", f"{report.batches} "
                        f"(mean size {report.mean_batch_size:.2f})"],
            ["replicas alive", f"{len(report.alive_replicas)}/"
                               f"{args.replicas} "
                               f"({report.dispatch_retries} retries)"],
        ]
        for lane, summary in report.lanes.items():
            rows.append([f"{lane} p50/p99",
                         f"{summary.p50_ms:.2f} / {summary.p99_ms:.2f} ms "
                         f"({summary.served} served, {summary.shed} shed)"])
        if report.cache is not None:
            rows.append(["cache hit rate",
                         f"{report.cache['hit_rate'] * 100:.1f}% "
                         f"({report.cache['hits']}/{report.cache['hits'] + report.cache['misses']})"])
        print(format_table(["metric", "value"], rows,
                           title=f"Serving drill - {args.requests} requests, "
                                 f"{args.replicas} replicas, seed {args.seed}"))
    return 0 if report.lost_admitted == 0 and error is None else 1


def _cmd_fleet(args) -> int:
    """Fleet drill: a seeded diurnal+burst replay through the serve fleet.

    Generates a columnar replay (~10^6 virtual requests by default in CI,
    smaller interactively), serves it through the autoscaled, consistent-
    hash-sharded multi-cell fleet, and prints the end-of-run report:
    served/shed/spilled, warm-tile hit rate, scale events with measured
    key-remap fractions and hit-rate recovery, autoscaler decisions, and
    fleet health alerts.  ``--plan`` injects replica kills mid-replay
    (``rank`` = global replica id, ``step`` = virtual seconds); ``--out``
    persists the Chrome trace and report JSON; ``--json`` emits the
    machine-readable report the CI smoke job asserts on.  Exit code 1 if
    any admitted request was lost or failed (the fleet invariant).
    """
    import json
    from pathlib import Path

    from .perf import format_table
    from .resilience import FaultPlan
    from .serve import (FleetConfig, FleetServer, ReplayConfig,
                        replay_workload, summarize_fleet)
    from .serve.fleet import AutoscalerConfig
    from .telemetry import SimulatedClock, Telemetry, activate, \
        write_chrome_trace

    if args.requests < 1 or args.replicas < 1:
        raise SystemExit("fleet: --requests and --replicas must be >= 1")
    cells = tuple(c.strip() for c in args.cells.split(",") if c.strip())
    if not cells:
        raise SystemExit("fleet: --cells must name at least one cell")
    bursts = []
    if args.bursts:
        for item in args.bursts.split(","):
            parts = item.split(":")
            if len(parts) != 3:
                raise SystemExit("fleet: --bursts items must be "
                                 "start:duration:multiplier")
            bursts.append(tuple(float(p) for p in parts))
    replay_cfg = ReplayConfig(
        num_requests=args.requests, duration_s=args.duration,
        cells=cells, bursts=tuple(bursts), snapshot_pool=args.pool,
        windows=args.windows, seed=args.seed)
    autoscaler = None if args.no_autoscale else AutoscalerConfig(
        min_replicas=args.min_replicas, max_replicas=args.max_replicas)
    fleet_cfg = FleetConfig(
        cells=cells, initial_replicas=args.replicas,
        slo_s=(("interactive", args.slo_ms / 1e3),) if args.slo_ms else (),
        cache_budget_bytes=args.cache_mb << 20,
        sharded=not args.unsharded, spillover=not args.no_spillover,
        autoscaler=autoscaler)
    plan = FaultPlan.parse(args.plan, seed=args.seed) if args.plan else None

    clock = SimulatedClock()
    tel = Telemetry(clock=clock)
    with activate(tel):
        server = FleetServer(fleet_cfg, clock=clock, plan=plan)
        replay = replay_workload(replay_cfg)
        result = server.run(replay)
        report = summarize_fleet(result, server, replay)

    fired = len(tel.health.alerts) if tel.health else 0
    resolved = len(tel.health.resolved()) if tel.health else 0
    doc = report.as_dict()
    doc["seed"] = args.seed
    doc["plan"] = plan.describe() if plan else None
    doc["alerts_fired"] = fired
    doc["alerts_resolved"] = resolved
    if tel.health is not None:
        doc["health"] = tel.health.report()
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        trace_path = out / "trace.json"
        write_chrome_trace(trace_path, tel.tracer.spans())
        report_path = out / "fleet_report.json"
        report_path.write_text(json.dumps(doc, indent=1, sort_keys=True))
        doc["trace"] = str(trace_path)
        if not args.json:
            print(f"wrote {trace_path}")
            print(f"wrote {report_path}")
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        sheds = ", ".join(f"{k}={v}"
                          for k, v in sorted(report.shed_by_reason.items()))
        rows = [
            ["offered", str(report.offered)],
            ["served", str(report.served)],
            ["shed", f"{report.shed}" + (f" ({sheds})" if sheds else "")],
            ["spilled", str(report.spilled)],
            ["failed", str(report.failed)],
            ["lost admitted", str(report.lost_admitted)],
            ["throughput", f"{report.throughput_rps:,.1f} req/s"],
            ["hit rate", f"{report.hit_rate * 100:.1f}%"],
            ["retries", str(report.retries)],
            ["scale events", f"{len(report.scale_events)} "
                             f"({report.autoscaler['grows']} grow, "
                             f"{report.autoscaler['shrinks']} shrink)"],
            ["alerts", f"{fired} fired, {resolved} resolved"],
        ]
        for name, cell in sorted(report.cells.items()):
            rows.append([f"cell {name}",
                         f"{cell['served']} served, "
                         f"{cell['replicas']} replicas, "
                         f"hit {cell['hit_rate'] * 100:.1f}%, "
                         f"out {cell['spilled_out']} / "
                         f"in {cell['spilled_in']} spilled"])
        for e in report.scale_events:
            rec = "-" if e.recovered_s is None else f"{e.recovered_s:.0f}s"
            rows.append([f"{e.kind} @{e.t:.0f}s {e.cell}",
                         f"replica {e.replica} -> {e.replicas_after} live, "
                         f"remap {e.remap_fraction * 100:.1f}%, "
                         f"recovered {rec}"])
        print(format_table(["metric", "value"], rows,
                           title=f"Fleet drill - {args.requests} requests, "
                                 f"{len(cells)} cells, seed {args.seed}"))
    return 0 if report.lost_admitted == 0 and report.failed == 0 else 1


def _cmd_campaign(args) -> int:
    """Campaign drill: a seeded multi-user campaign through the orchestrator.

    Synthesizes ``--jobs`` jobs from ``--users`` tenants, drives every one
    of them ``CREATED -> ... -> DONE`` through the Balsam-style campaign
    service (JSONL store, fair-share scheduler, backfill site launcher,
    checkpoint/restart), and prints the end-of-campaign report: makespan,
    utilization, fair-share error, restarts, and per-state dwell medians.
    ``--plan`` injects faults mid-campaign (``rank`` = submit index);
    ``--out`` persists the JSONL log, real ``.npz`` checkpoints, and a
    Chrome trace; ``--json`` emits the machine-readable report the CI
    smoke job asserts on.  Exit code 1 when any job is lost or fails, or
    when the fair-share error exceeds ``--fair-bound``.
    """
    import json
    from pathlib import Path

    from .campaign import (CampaignConfig, CampaignService,
                           CheckpointedRuntime, FairShareScheduler, JobStore,
                           MemoryRuntime, SchedulerConfig, ServiceConfig,
                           SiteConfig, SiteLauncher, synth_campaign)
    from .hpc import PIZ_DAINT, SUMMIT
    from .perf import format_table
    from .resilience import FaultPlan
    from .telemetry import (SimulatedClock, Telemetry, activate,
                            write_chrome_trace)

    if args.users < 1 or args.jobs < 1 or args.nodes < 1:
        raise SystemExit("campaign: --users, --jobs, and --nodes "
                         "must all be >= 1")
    system = SUMMIT if args.system == "summit" else PIZ_DAINT
    site = SiteLauncher(SiteConfig(system=system,
                                   nodes=min(args.nodes, system.nodes)))
    jobs = synth_campaign(CampaignConfig(
        num_users=args.users, num_jobs=args.jobs,
        submit_rate_per_s=args.rate, seed=args.seed))
    plan = FaultPlan.parse(args.plan, seed=args.seed) if args.plan else None
    out = Path(args.out) if args.out else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        store = JobStore(out / "campaign.jsonl")
        runtime = CheckpointedRuntime(out / "jobs", seed=args.seed)
    else:
        store = JobStore()
        runtime = MemoryRuntime()
    clock = SimulatedClock()
    tel = Telemetry(clock=clock)
    with activate(tel):
        service = CampaignService(
            site, store, FairShareScheduler(SchedulerConfig()), runtime,
            ServiceConfig(ckpt_every_s=args.ckpt_every_s), plan=plan,
            clock=clock)
        for job in jobs:
            service.submit(job)
        report = service.run()
    store.close()
    if out is not None:
        trace_path = out / "trace.json"
        write_chrome_trace(trace_path, tel.tracer.spans())
        report_path = out / "report.json"
        report_path.write_text(
            json.dumps(report.as_dict(), indent=1, sort_keys=True) + "\n")
        if not args.json:
            print(f"wrote {out / 'campaign.jsonl'}, {report_path}, "
                  f"and {trace_path}")
    ok = report.all_done and report.fair_share_error <= args.fair_bound
    if args.json:
        print(json.dumps(report.as_dict(), indent=1, sort_keys=True))
        return 0 if ok else 1
    terminal = ", ".join(f"{k}={v}" for k, v in
                         sorted(report.by_terminal_state.items()))
    injected = ", ".join(f"{k}={v}" for k, v in sorted(report.injected.items()))
    resumed = "; ".join(
        f"{jid}: step {v['resume_step']}, "
        f"{v['nodes_before']}->{v['nodes_after']} nodes"
        for jid, v in sorted(report.as_dict()["resumed"].items()))
    rows = [
        ["jobs", f"{report.jobs} ({terminal or 'none terminal'})"],
        ["lost jobs", str(report.lost_jobs or "none")],
        ["injected", injected or "(none)"],
        ["restarts", str(report.restarts)],
        ["resumed", resumed or "(none)"],
        ["checkpoints saved", str(report.checkpoints_saved)],
        ["makespan", f"{report.makespan_s:,.1f} virtual s"],
        ["utilization", f"{report.utilization * 100:.1f}% "
                        f"of {site.total_nodes} nodes"],
        ["fair-share error", f"{report.fair_share_error:.4f} "
                             f"(bound {args.fair_bound})"],
    ]
    for user, ns in sorted(report.node_seconds.items()):
        rows.append([f"{user} usage", f"{ns:,.0f} node-s"])
    for state, dwell in sorted(report.dwell_median_s.items()):
        rows.append([f"dwell p50 {state}", f"{dwell:,.1f} s"])
    print(format_table(["metric", "value"], rows,
                       title=f"Campaign drill - {args.jobs} jobs, "
                             f"{args.users} users, seed {args.seed}"))
    print("campaign OK" if ok else "campaign FAILED")
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    """Distributed-correctness static analysis over the given paths.

    Exit code 0 when every finding is inline-suppressed or recorded in the
    committed baseline; 1 when any *new* finding exists — that is the CI
    gate.  ``--update-baseline`` rewrites the baseline from the current
    findings (and exits 0); ``--prune-baseline`` only *removes* baseline
    entries that no longer match any finding (fixed debt) without ever
    accepting new ones; ``--fix`` applies every rule autofix in place
    and reports the post-fix state; ``--rules`` prints the rule catalog.
    ``--deep`` additionally runs the whole-program (inter-procedural)
    pass — rules RPR101–RPR104 — with its own summary cache
    (``--deep-cache``) so only changed files are re-analyzed.
    """
    from .analysis import (deep_rules, render_json, render_text,
                           rule_catalog, run_lint)

    if args.rules:
        for row in rule_catalog() + rule_catalog(deep_rules()):
            fix = " [autofix]" if row["autofix"] else ""
            print(f"{row['id']} {row['name']} ({row['severity']}){fix}")
            print(f"    {row['description']}")
        return 0
    paths = args.paths or ["src", "tests"]
    report = run_lint(
        paths,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        prune_baseline=args.prune_baseline,
        fix=args.fix,
        cache_path=args.cache,
        deep=args.deep,
        deep_cache=args.deep_cache)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_all=args.show_all))
    if args.prune_baseline and not args.update_baseline:
        print(f"baseline pruned: {len(report.pruned_entries)} stale "
              f"entr{'y' if len(report.pruned_entries) == 1 else 'ies'} "
              f"removed from {args.baseline}")
    if args.update_baseline:
        print(f"baseline updated: {args.baseline}")
        return 0
    return report.exit_code


def _cmd_bench(args) -> int:
    """Run benchmark suites through the machine-readable protocol.

    Wraps ``benchmarks/runner.py``: runs each suite's ``collect(profile)``,
    writes ``BENCH_<tag>.json`` under ``--out``, and — with ``--against`` —
    gates the result against a baseline report, exiting 1 when any gated
    metric regresses past its tolerance band.  This is the CI perf gate.
    """
    import importlib.util
    import pathlib

    bench_dir = pathlib.Path(args.bench_dir).resolve()
    runner_path = bench_dir / "runner.py"
    if not runner_path.exists():
        print(f"error: no benchmark runner at {runner_path}", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("runner", runner_path)
    runner = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("runner", runner)
    spec.loader.exec_module(runner)

    argv = ["--suite", args.suite, "--profile", args.profile,
            "--tag", args.tag, "--out", args.out or str(bench_dir / "out"),
            "--tolerance", str(args.tolerance)]
    if args.against:
        argv += ["--against", args.against]
    if args.json:
        argv += ["--json"]
    return runner.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate experiments from the paper")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="single-GPU performance table").set_defaults(
        fn=_cmd_fig2)

    p4 = sub.add_parser("fig4", help="weak scaling curves")
    p4.add_argument("--network", default="deeplabv3+",
                    choices=["deeplabv3+", "tiramisu", "tiramisu_4ch"])
    p4.add_argument("--system", default="summit",
                    choices=["summit", "piz_daint"])
    p4.add_argument("--precision", default="fp16", choices=["fp16", "fp32"])
    p4.add_argument("--lag", type=int, default=1, choices=[0, 1])
    p4.set_defaults(fn=_cmd_fig4)

    sub.add_parser("fig5", help="staging vs global FS").set_defaults(fn=_cmd_fig5)
    sub.add_parser("flops", help="operation counts").set_defaults(fn=_cmd_flops)

    ps = sub.add_parser("staging", help="staging-time comparison")
    ps.add_argument("--nodes", type=int, default=1024)
    ps.set_defaults(fn=_cmd_staging)

    pc = sub.add_parser("control-plane", help="Horovod negotiation loads")
    pc.add_argument("--ranks", type=int, default=4096)
    pc.add_argument("--tensors", type=int, default=110)
    pc.add_argument("--radix", type=int, default=4)
    pc.set_defaults(fn=_cmd_control_plane)

    sub.add_parser("report", help="full paper-vs-measured summary").set_defaults(
        fn=_cmd_report)

    pt = sub.add_parser("train", help="train a small Tiramisu on synthetic data")
    pt.add_argument("--samples", type=int, default=16)
    pt.add_argument("--epochs", type=int, default=4)
    pt.add_argument("--grid", type=int, default=24)
    pt.add_argument("--lr", type=float, default=0.1)
    pt.add_argument("--seed", type=int, default=0)
    pt.set_defaults(fn=_cmd_train)

    pr = sub.add_parser(
        "trace", help="instrumented tiny training run -> trace.json + metrics.txt")
    pr.add_argument("--samples", type=int, default=8)
    pr.add_argument("--steps", type=int, default=3)
    pr.add_argument("--ranks", type=int, default=2)
    pr.add_argument("--batch", type=int, default=1)
    pr.add_argument("--grid", type=int, default=16)
    pr.add_argument("--lr", type=float, default=0.05)
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--out", default="trace_out")
    pr.add_argument("--serve-requests", type=int, default=0,
                    help="also run N requests through the inference server "
                         "so serve.* spans merge into the trace")
    pr.add_argument("--json", action="store_true",
                    help="emit a machine-readable summary (message links, "
                         "per-step phase breakdowns) instead of text")
    pr.set_defaults(fn=_cmd_trace)

    pf = sub.add_parser(
        "faults",
        help="fault-injection drill: recover from a seeded FaultPlan")
    pf.add_argument("--plan",
                    default="rank_fail@2:rank=1;read_fault@1;read_fault@4",
                    help="fault schedule, e.g. 'rank_fail@2:rank=1;"
                         "read_fault@1;drop_msg@3:count=2'")
    pf.add_argument("--ranks", type=int, default=8)
    pf.add_argument("--steps", type=int, default=6)
    pf.add_argument("--samples", type=int, default=16)
    pf.add_argument("--grid", type=int, default=16)
    pf.add_argument("--lr", type=float, default=0.01)
    pf.add_argument("--lr-scaling", default="linear",
                    choices=["linear", "sqrt", "none"],
                    help="LR rescale rule after an elastic shrink")
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--ckpt-every", type=int, default=2)
    pf.add_argument("--tolerance", type=float, default=0.05,
                    help="max relative final-loss difference vs fault-free")
    pf.add_argument("--out", default="faults_out")
    pf.set_defaults(fn=_cmd_faults)

    pcd = sub.add_parser(
        "comm-drill",
        help="communication drill: compressed training must track dense")
    pcd.add_argument("--ranks", type=int, default=4)
    pcd.add_argument("--steps", type=int, default=12)
    pcd.add_argument("--samples", type=int, default=16)
    pcd.add_argument("--grid", type=int, default=16)
    pcd.add_argument("--lr", type=float, default=0.01)
    pcd.add_argument("--seed", type=int, default=0)
    pcd.add_argument("--compression", default="int8",
                     choices=["topk", "int8"],
                     help="lossy codec for the compressed run")
    pcd.add_argument("--ratio", type=float, default=0.25,
                     help="top-k keep fraction (ignored for int8)")
    pcd.add_argument("--bucket-kb", type=int, default=4096,
                     help="gradient fusion bucket size in KiB")
    pcd.add_argument("--tolerance", type=float, default=0.05,
                     help="max relative final-eval-loss difference vs dense")
    pcd.add_argument("--json", action="store_true",
                     help="emit the machine-readable report (CI smoke job)")
    pcd.set_defaults(fn=_cmd_comm_drill)

    ph = sub.add_parser(
        "health",
        help="health drill: faulty training under the streaming/health "
             "engine (virtual time)")
    ph.add_argument("--plan",
                    default="straggler@1:rank=3,factor=4;"
                            "rank_fail@6:rank=3;read_fault@2",
                    help="fault schedule; the default stragglers rank 3 "
                         "then kills it")
    ph.add_argument("--ranks", type=int, default=8)
    ph.add_argument("--steps", type=int, default=10)
    ph.add_argument("--samples", type=int, default=16)
    ph.add_argument("--grid", type=int, default=16)
    ph.add_argument("--lr", type=float, default=0.01)
    ph.add_argument("--seed", type=int, default=0)
    ph.add_argument("--window", type=float, default=1.0,
                    help="tumbling-window width in virtual seconds "
                         "(one training step per window)")
    ph.add_argument("--json", action="store_true",
                    help="emit the machine-readable health report")
    ph.add_argument("--out", default="health_out")
    ph.set_defaults(fn=_cmd_health)

    pv = sub.add_parser(
        "serve",
        help="serving drill: synthetic load through the inference server")
    pv.add_argument("--requests", type=int, default=64)
    pv.add_argument("--rate", type=float, default=500.0,
                    help="offered arrival rate, requests/s (Poisson)")
    pv.add_argument("--replicas", type=int, default=2)
    pv.add_argument("--batch", type=int, default=8,
                    help="micro-batch size cap")
    pv.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="max batching delay for the oldest request")
    pv.add_argument("--forward-batch", type=int, default=32,
                    help="windows stacked per model forward")
    pv.add_argument("--window", type=int, default=8)
    pv.add_argument("--stride", type=int, default=4)
    pv.add_argument("--image", type=int, default=16)
    pv.add_argument("--channels", type=int, default=4)
    pv.add_argument("--repeat", type=float, default=0.25,
                    help="fraction of requests resubmitting an earlier "
                         "snapshot (cache redundancy)")
    pv.add_argument("--max-depth", type=int, default=64,
                    help="per-lane queue cap before queue_full shedding")
    pv.add_argument("--slo-ms", type=float, default=0.0,
                    help="interactive-lane queueing SLO; 0 disables "
                         "slo shedding")
    pv.add_argument("--cache-mb", type=int, default=32,
                    help="tile-cache budget in MiB (0 disables)")
    pv.add_argument("--service-ms", type=float, default=0.0,
                    help="fixed virtual service time per window, ms "
                         "(0 = measured compute time)")
    pv.add_argument("--plan", default="",
                    help="fault schedule, e.g. 'rank_fail@2:rank=1' "
                         "(rank = replica id)")
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument("--json", action="store_true",
                    help="emit the report as JSON (CI smoke job)")
    pv.add_argument("--out", default="",
                    help="directory for the Chrome trace (optional)")
    pv.set_defaults(fn=_cmd_serve)

    pf = sub.add_parser(
        "fleet",
        help="fleet drill: diurnal+burst replay through the autoscaled, "
             "sharded serve fleet")
    pf.add_argument("--requests", type=int, default=100_000,
                    help="virtual requests in the replay")
    pf.add_argument("--duration", type=float, default=300.0,
                    help="replay horizon in virtual seconds")
    pf.add_argument("--cells", default="east,west",
                    help="comma-separated cell names")
    pf.add_argument("--replicas", type=int, default=2,
                    help="initial replicas per cell")
    pf.add_argument("--min-replicas", type=int, default=1)
    pf.add_argument("--max-replicas", type=int, default=16)
    pf.add_argument("--bursts", default="",
                    help="overload windows as start:duration:multiplier"
                         "[,...] in virtual seconds")
    pf.add_argument("--pool", type=int, default=5000,
                    help="distinct snapshot keys (Zipf-popular)")
    pf.add_argument("--windows", type=int, default=4,
                    help="tile windows per request")
    pf.add_argument("--slo-ms", type=float, default=250.0,
                    help="interactive-lane estimated-wait budget; "
                         "0 disables SLO spillover/shedding")
    pf.add_argument("--cache-mb", type=int, default=4,
                    help="per-replica tile-cache budget in MiB")
    pf.add_argument("--unsharded", action="store_true",
                    help="least-loaded routing instead of the hash ring "
                         "(ablation)")
    pf.add_argument("--no-spillover", action="store_true",
                    help="disable cross-cell spillover")
    pf.add_argument("--no-autoscale", action="store_true",
                    help="pin every cell at --replicas")
    pf.add_argument("--plan", default="",
                    help="fault schedule, e.g. 'rank_fail@120:rank=1' "
                         "(rank = global replica id, step = virtual "
                         "seconds)")
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--json", action="store_true",
                    help="emit the report as JSON (CI smoke job)")
    pf.add_argument("--out", default="",
                    help="directory for the Chrome trace + report JSON")
    pf.set_defaults(fn=_cmd_fleet)

    pg = sub.add_parser(
        "campaign",
        help="campaign drill: multi-user jobs through the orchestrator")
    pg.add_argument("--users", type=int, default=3)
    pg.add_argument("--jobs", type=int, default=12)
    pg.add_argument("--nodes", type=int, default=32,
                    help="site size in nodes (capped at the machine)")
    pg.add_argument("--system", default="summit",
                    choices=["summit", "piz_daint"])
    pg.add_argument("--rate", type=float, default=1.0 / 30.0,
                    help="job arrival rate, jobs/s (Poisson)")
    pg.add_argument("--ckpt-every-s", type=float, default=10.0,
                    help="virtual checkpoint cadence while RUNNING")
    pg.add_argument("--fair-bound", type=float, default=0.25,
                    help="max tolerated fair-share error")
    pg.add_argument("--plan", default="",
                    help="fault schedule, e.g. 'rank_fail@1:rank=0' "
                         "(rank = job submit index, step = scheduler tick)")
    pg.add_argument("--seed", type=int, default=0)
    pg.add_argument("--json", action="store_true",
                    help="emit the report as JSON (CI smoke job)")
    pg.add_argument("--out", default="",
                    help="directory for the JSONL log, checkpoints, "
                         "report.json, and Chrome trace (optional)")
    pg.set_defaults(fn=_cmd_campaign)

    pl = sub.add_parser(
        "lint",
        help="distributed-correctness static analysis (AST rule pack)")
    pl.add_argument("paths", nargs="*",
                    help="files/directories to analyze (default: src tests)")
    pl.add_argument("--format", default="text", choices=["text", "json"])
    pl.add_argument("--fix", action="store_true",
                    help="apply rule autofixes in place, then re-analyze")
    pl.add_argument("--update-baseline", action="store_true",
                    help="accept all current findings into the baseline")
    pl.add_argument("--prune-baseline", action="store_true",
                    help="drop baseline entries that no longer match any "
                         "finding (never accepts new ones)")
    pl.add_argument("--baseline", default=".repro-lint-baseline.json",
                    help="baseline file (default: .repro-lint-baseline.json)")
    pl.add_argument("--cache", default=None, metavar="PATH",
                    help="per-file result cache keyed on content hash "
                         "(off unless given; CI restores this file)")
    pl.add_argument("--show-all", action="store_true",
                    help="also list baselined and suppressed findings")
    pl.add_argument("--rules", action="store_true",
                    help="print the rule catalog and exit")
    pl.add_argument("--deep", action="store_true",
                    help="also run the whole-program pass (RPR101-RPR104: "
                         "inter-procedural collective/precision/RNG/"
                         "swallowed-error analysis)")
    pl.add_argument("--deep-cache", default=None, metavar="PATH",
                    help="project summary cache for --deep (only changed "
                         "files are re-summarized; CI restores this file)")
    pl.set_defaults(fn=_cmd_lint)

    pb = sub.add_parser(
        "bench",
        help="run benchmark suites, emit BENCH_<tag>.json, gate vs baseline")
    pb.add_argument("--suite", default="kernels,serving,allreduce",
                    help="comma-separated suite names (bench_<name>.py)")
    pb.add_argument("--profile", default="quick",
                    choices=["smoke", "quick", "full"])
    pb.add_argument("--tag", default="head",
                    help="report tag: output file is BENCH_<tag>.json")
    pb.add_argument("--out", default=None,
                    help="output directory (default: <bench-dir>/out)")
    pb.add_argument("--against", default=None, metavar="BASELINE_JSON",
                    help="gate against this baseline; exit 1 on regression")
    pb.add_argument("--tolerance", type=float, default=0.15,
                    help="default tolerance band for gated metrics")
    pb.add_argument("--bench-dir",
                    default=str(pathlib.Path(__file__).resolve().parents[2]
                                / "benchmarks"),
                    help="directory holding runner.py and bench_*.py")
    pb.add_argument("--json", action="store_true",
                    help="print the full report JSON to stdout")
    pb.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
