"""Data-staging strategies: naive per-node reads vs distributed staging.

Section V-A1 of the paper:

* **Naive**: each of N nodes independently copies its own ``files_per_node``
  subset from the parallel file system.  At 1024 nodes with 1500 files each,
  every file is read by ~23 nodes on average; the copy took 10-20 minutes
  and "rendered the global file system nearly unusable".
* **Distributed**: the dataset is divided into *disjoint* pieces, each rank
  reads its piece (with multi-threaded readers), and point-to-point MPI
  messages redistribute copies over the much faster compute fabric.  1024
  (4500) nodes stage in under 3 (7) minutes.

This module provides both an analytic cost model over the machine specs
(:func:`plan_staging`) and a *functional* implementation of the distributed
algorithm over the simulated MPI wire (:func:`stage_distributed`), so the
partition/redistribution logic itself is exercised and verified, not just
timed.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.simmpi import World
from ..errors import StagingConfigError, StagingReadError
from ..hpc.filesystem import SharedFileSystem
from ..hpc.network import FabricModel
from ..hpc.specs import SystemSpec
from ..telemetry import get_active
from .readers import scaled_read_bandwidth

__all__ = ["StagingReport", "plan_staging", "stage_distributed",
           "assign_disjoint_pieces", "stage_files_to_disk"]


@dataclass(frozen=True)
class StagingReport:
    """Cost-model output for one staging strategy."""

    strategy: str
    nodes: int
    files_per_node: int
    file_bytes: float
    fs_read_bytes: float          # bytes pulled from the parallel FS
    fs_read_time_s: float
    fs_saturation: float          # demand / capacity while reading
    replication_factor: float     # avg FS reads per distinct file
    redistribution_bytes: float   # bytes moved over the compute fabric
    redistribution_time_s: float
    local_write_time_s: float
    total_time_s: float


def plan_staging(
    system: SystemSpec,
    dataset_files: int,
    file_bytes: float,
    nodes: int,
    files_per_node: int = 1500,
    strategy: str = "distributed",
    reader_threads: int = 8,
) -> StagingReport:
    """Analytic staging-time estimate on a given machine."""
    if strategy not in ("naive", "distributed"):
        raise StagingConfigError(f"unknown staging strategy {strategy!r}")
    if nodes < 1 or nodes > system.nodes:
        raise StagingConfigError(f"nodes {nodes} out of range for {system.name}")
    fs = SharedFileSystem(system.filesystem)
    node = system.node
    per_node_bw = scaled_read_bandwidth(
        reader_threads,
        node.fs_read_bw_single_thread,
        cap=node.fs_read_bw_multi_thread if reader_threads > 1 else None,
    )
    needed_bytes = nodes * files_per_node * file_bytes
    local_write_time = files_per_node * file_bytes / node.local_storage_write_bw

    if strategy == "naive":
        # Every node reads its own (random) subset straight off the FS.
        fs_read_bytes = needed_bytes
        replication = nodes * files_per_node / dataset_files
        read_time = fs.read_time(fs_read_bytes, nodes, per_node_bw)
        saturation = fs.saturation(nodes, per_node_bw)
        total = max(read_time, local_write_time)
        return StagingReport(
            strategy="naive", nodes=nodes, files_per_node=files_per_node,
            file_bytes=file_bytes, fs_read_bytes=fs_read_bytes,
            fs_read_time_s=read_time, fs_saturation=saturation,
            replication_factor=replication, redistribution_bytes=0.0,
            redistribution_time_s=0.0, local_write_time_s=local_write_time,
            total_time_s=total,
        )

    # Distributed: read each distinct file once, then redistribute copies.
    distinct = min(dataset_files, nodes * files_per_node)
    fs_read_bytes = distinct * file_bytes
    read_time = fs.read_time(fs_read_bytes, nodes, per_node_bw)
    saturation = fs.saturation(nodes, per_node_bw)
    redistribution_bytes = max(needed_bytes - fs_read_bytes, 0.0)
    fabric = FabricModel(injection=node.injection, nodes=nodes)
    redistribution_time = fabric.redistribution_time(redistribution_bytes,
                                                     avg_message_bytes=file_bytes)
    total = read_time + redistribution_time + local_write_time
    return StagingReport(
        strategy="distributed", nodes=nodes, files_per_node=files_per_node,
        file_bytes=file_bytes, fs_read_bytes=fs_read_bytes,
        fs_read_time_s=read_time, fs_saturation=saturation,
        replication_factor=1.0, redistribution_bytes=redistribution_bytes,
        redistribution_time_s=redistribution_time,
        local_write_time_s=local_write_time, total_time_s=total,
    )


def assign_disjoint_pieces(num_files: int, ranks: int) -> list[np.ndarray]:
    """Partition file indices into near-equal disjoint per-rank pieces."""
    if ranks < 1:
        raise StagingConfigError("ranks must be >= 1")
    return [np.arange(num_files)[r::ranks] for r in range(ranks)]


def stage_distributed(
    world: World,
    num_files: int,
    files_per_rank: int,
    seed: int = 0,
) -> tuple[list[np.ndarray], dict]:
    """Functionally execute the distributed staging protocol.

    Each rank independently samples the ``files_per_rank`` file ids it wants
    (with replacement across ranks — subsets overlap, as in the paper).  The
    dataset is split into disjoint pieces; each rank "reads" its piece from
    the FS, then point-to-point messages deliver every wanted file from the
    rank that read it.

    Returns the per-rank staged file-id arrays (sorted) and an accounting
    dict: distinct files read, total requests, messages and a consistency
    flag.  Payloads are file *ids* (metadata-sized); byte volumes are the
    cost model's job.
    """
    tel = get_active()
    tracer = tel.tracer
    rng = np.random.default_rng(seed)
    n = world.size
    wanted = [np.sort(rng.choice(num_files, size=files_per_rank, replace=False))
              for _ in range(n)]
    pieces = assign_disjoint_pieces(num_files, n)
    owner = np.empty(num_files, dtype=np.int64)
    for r, piece in enumerate(pieces):
        owner[piece] = r

    # Request phase: each rank asks the owner of every wanted file.
    requests: dict[int, list[tuple[int, int]]] = {r: [] for r in range(n)}
    with tracer.span("stage_request", category="io", ranks=n):
        for r in range(n):
            for f in wanted[r]:
                o = int(owner[f])
                if o != r:
                    world.send(np.int64(f), r, o, tag=100)
                    requests[o].append((r, int(f)))
    # Delivery phase: owners answer every request with the file payload.
    # recv_reliable re-sends on injected drops, so a lossy wire still
    # converges to the exact staged sets.
    with tracer.span("stage_deliver", category="io", ranks=n):
        for o in range(n):
            for requester, f in requests[o]:
                _ = world.recv_reliable(
                    o, requester, tag=100,
                    resend=lambda f=f: np.int64(f))
                world.send(np.int64(f), o, requester, tag=101)
        staged = []
        for r in range(n):
            have = set(int(f) for f in wanted[r] if owner[f] == r)
            for f in wanted[r]:
                o = int(owner[f])
                if o != r:
                    got = int(world.recv_reliable(
                        r, o, tag=101, resend=lambda f=f: np.int64(f)))
                    have.add(got)
            staged.append(np.sort(np.array(sorted(have), dtype=np.int64)))
    if tel.enabled:
        tel.metrics.counter("io.staging_requests").inc(
            sum(len(v) for v in requests.values()))
    distinct_read = len({int(f) for w in wanted for f in w})
    consistent = all(np.array_equal(staged[r], wanted[r]) for r in range(n))
    stats = {
        "distinct_files_requested": distinct_read,
        "total_requests": sum(len(v) for v in requests.values()),
        "messages": world.stats.total_messages,
        "consistent": consistent,
    }
    return staged, stats


def stage_files_to_disk(
    world: World,
    source_dir,
    dest_root,
    files_per_rank: int,
    seed: int = 0,
    fault_injector=None,
    retry=None,
) -> tuple[list, dict]:
    """Execute distributed staging with *real files* on disk.

    The full Section V-A1 protocol with actual bytes: the source directory
    (the "parallel file system") holds one file per sample; each rank reads
    only its disjoint piece, file contents travel to requesters as messages
    over the simulated fabric, and every rank writes its staged set into its
    own node-local directory ``dest_root/rank-<r>/``.

    Returns the per-rank staged paths and an accounting dict including the
    bytes that crossed the fabric (vs. what the naive strategy would have
    pulled from the file system).

    The read path is hardened: a file that fails to read (for real, or via
    ``fault_injector``) is retried under ``retry`` (a
    :class:`repro.resilience.RetryPolicy`; a default policy when ``None``)
    and, once retries are exhausted, surfaces as
    :class:`repro.errors.StagingReadError` naming the offending path —
    never a raw ``OSError`` out of the staging worker.
    """
    from pathlib import Path

    from ..resilience.retry import RetryPolicy, RetriesExhausted, with_retries

    source_dir = Path(source_dir)
    dest_root = Path(dest_root)
    files = sorted(source_dir.glob("data-*.npz"))
    if not files:
        raise StagingConfigError(f"no data files in {source_dir}")
    num_files = len(files)
    rng = np.random.default_rng(seed)
    n = world.size
    wanted = [np.sort(rng.choice(num_files, size=files_per_rank, replace=False))
              for _ in range(n)]
    pieces = assign_disjoint_pieces(num_files, n)
    owner = np.empty(num_files, dtype=np.int64)
    for r, piece in enumerate(pieces):
        owner[piece] = r
    tel = get_active()
    tracer = tel.tracer
    # Each owner reads its piece from the "file system" once.  Reads go
    # through the retry harness; a file that stays unreadable is reported
    # as a StagingError carrying its path, not a raw OSError.
    policy = retry or RetryPolicy()

    def _read_one(path):
        def attempt():
            if fault_injector is not None:
                fault_injector.check_read(path)
            return path.read_bytes()

        try:
            return with_retries(attempt, policy, retry_on=(OSError,),
                                label=f"stage_read:{path.name}")
        except RetriesExhausted as exc:
            raise StagingReadError(
                f"staged file read failed for {path}: {exc.last}",
                path=path) from exc.last

    cache: dict[int, bytes] = {}
    fs_bytes = 0
    with tracer.span("stage_fs_read", category="io", ranks=n):
        for r, piece in enumerate(pieces):
            for f in piece:
                payload = _read_one(files[int(f)])
                cache[int(f)] = payload
                fs_bytes += len(payload)
    # Requests, then content delivery over the fabric.
    requests: dict[int, list[tuple[int, int]]] = {r: [] for r in range(n)}
    with tracer.span("stage_request", category="io", ranks=n):
        for r in range(n):
            for f in wanted[r]:
                o = int(owner[f])
                if o != r:
                    world.send(np.int64(f), r, o, tag=200)
                    requests[o].append((r, int(f)))
    fabric_bytes = 0
    with tracer.span("stage_deliver", category="io", ranks=n):
        for o in range(n):
            for requester, f in requests[o]:
                _ = world.recv_reliable(o, requester, tag=200,
                                        resend=lambda f=f: np.int64(f))
                payload = np.frombuffer(cache[f], dtype=np.uint8)
                fabric_bytes += payload.nbytes
                world.send(payload, o, requester, tag=201)
    staged_paths: list[list] = []
    with tracer.span("stage_local_write", category="io", ranks=n):
        for r in range(n):
            rank_dir = dest_root / f"rank-{r}"
            rank_dir.mkdir(parents=True, exist_ok=True)
            paths = []
            for f in wanted[r]:
                o = int(owner[f])
                if o == r:
                    data = cache[int(f)]
                else:
                    payload = world.recv_reliable(
                        r, o, tag=201,
                        resend=lambda f=f: np.frombuffer(cache[f],
                                                         dtype=np.uint8))
                    data = payload.tobytes()
                path = rank_dir / files[int(f)].name
                path.write_bytes(data)
                paths.append(path)
            staged_paths.append(paths)
    if tel.enabled:
        tel.metrics.counter("io.staging_fs_bytes").inc(fs_bytes)
        tel.metrics.counter("io.staging_fabric_bytes").inc(fabric_bytes)
    # Verify content integrity against the source.
    consistent = all(
        p.read_bytes() == files[int(f)].read_bytes()
        for r in range(n)
        for p, f in zip(staged_paths[r], wanted[r])
    )
    naive_fs_bytes = sum(files[int(f)].stat().st_size
                         for r in range(n) for f in wanted[r])
    stats = {
        "fs_bytes_read": fs_bytes,
        "fabric_bytes": fabric_bytes,
        "naive_fs_bytes": naive_fs_bytes,
        "consistent": consistent,
    }
    return staged_paths, stats
