"""I/O substrate: staging strategies, reader models, input pipeline."""
from .pipeline import PipelineSimulator, PipelineStats, PrefetchPipeline, pipeline_throughput
from .readers import ReadResult, ThreadedReader, scaled_read_bandwidth
from .staging import (
    StagingReport,
    assign_disjoint_pieces,
    plan_staging,
    stage_distributed,
    stage_files_to_disk,
)

__all__ = [
    "scaled_read_bandwidth",
    "ThreadedReader",
    "ReadResult",
    "StagingReport",
    "plan_staging",
    "stage_distributed",
    "stage_files_to_disk",
    "assign_disjoint_pieces",
    "PipelineSimulator",
    "PipelineStats",
    "PrefetchPipeline",
    "pipeline_throughput",
]
