"""Optimized input pipeline: prefetch queue + parallel worker model.

Section V-A2 of the paper: input processing placed in the training graph
serializes with compute, so TensorFlow's ``prefetch`` decouples them with a
queue; HDF5 forces worker *processes* instead of threads; "with 4 background
processes ... the input pipeline can more closely match the training
throughput of both networks, even when using FP16 precision".

Two tools here:

* :class:`PipelineSimulator` — a discrete-event simulation of W workers
  producing into a depth-Q prefetch queue consumed once per training step;
  reports achieved step time and GPU idle fraction, including the
  no-prefetch (serialized) regime.
* :class:`PrefetchPipeline` — a real thread-backed pipeline over a sample
  store, used by the examples; its workers can share the HDF5-style
  serialization gate (thread regime) or own private gates (the
  multiprocessing fix), making the paper's observation reproducible on a
  laptop.
"""
from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

from ..hpc.events import EventQueue
from ..telemetry import get_active

__all__ = ["PipelineStats", "PipelineSimulator", "PrefetchPipeline", "pipeline_throughput"]


def pipeline_throughput(step_time_s: float, prep_time_s: float, workers: int,
                        serialized_workers: bool = False) -> float:
    """Steady-state samples/s of the consumer (analytic bound).

    With serialized workers (the HDF5 thread regime) extra workers don't
    help: production rate stays ``1 / prep_time``.
    """
    if step_time_s <= 0 or prep_time_s <= 0 or workers < 1:
        raise ValueError("times must be positive and workers >= 1")
    effective_workers = 1 if serialized_workers else workers
    produce_rate = effective_workers / prep_time_s
    consume_rate = 1.0 / step_time_s
    return min(produce_rate, consume_rate)


@dataclass
class PipelineStats:
    """Result of a pipeline simulation."""

    steps: int
    total_time_s: float
    gpu_busy_time_s: float

    @property
    def achieved_step_time_s(self) -> float:
        return self.total_time_s / self.steps

    @property
    def gpu_idle_fraction(self) -> float:
        return max(0.0, 1.0 - self.gpu_busy_time_s / self.total_time_s)

    @property
    def samples_per_second(self) -> float:
        return self.steps / self.total_time_s


class PipelineSimulator:
    """Discrete-event model of prefetching input against a training loop.

    Parameters
    ----------
    step_time_s:
        GPU compute time per training step (one sample per step here;
        scale externally for batches).
    prep_time_s:
        Time for one worker to read+decode one sample.
    workers:
        Concurrent producer workers (processes in the paper's final design).
    prefetch_depth:
        Queue capacity; 0 disables prefetching entirely — input runs
        *inside* the step, serialized with compute (the default TF graph
        placement the paper started from).
    serialized_workers:
        Model the HDF5 global lock: workers exist but production is
        serialized through one lock.
    """

    def __init__(self, step_time_s: float, prep_time_s: float, workers: int = 4,
                 prefetch_depth: int = 8, serialized_workers: bool = False):
        if step_time_s <= 0 or prep_time_s <= 0:
            raise ValueError("times must be positive")
        if workers < 1 or prefetch_depth < 0:
            raise ValueError("workers >= 1 and prefetch_depth >= 0 required")
        self.step_time = float(step_time_s)
        self.prep_time = float(prep_time_s)
        self.workers = int(workers)
        self.depth = int(prefetch_depth)
        self.serialized = bool(serialized_workers)

    def run(self, steps: int) -> PipelineStats:
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if self.depth == 0:
            # Serialized: every step pays prep + compute.
            total = steps * (self.prep_time + self.step_time)
            return PipelineStats(steps, total, steps * self.step_time)

        ev = EventQueue()
        state = {
            "queued": 0,             # ready samples in the prefetch queue
            "in_flight": 0,          # workers currently producing
            "produced": 0,           # total samples finished by workers
            "consumed": 0,
            "gpu_busy_until": 0.0,
            "gpu_waiting": False,
            "done_time": 0.0,
        }
        effective_workers = 1 if self.serialized else self.workers
        target = steps

        def maybe_start_workers():
            while (
                state["in_flight"] < effective_workers
                and state["produced"] + state["in_flight"] < target
                and state["queued"] + state["in_flight"] < self.depth
            ):
                state["in_flight"] += 1
                ev.schedule(self.prep_time, produce)

        def produce():
            state["in_flight"] -= 1
            state["produced"] += 1
            state["queued"] += 1
            if state["gpu_waiting"]:
                state["gpu_waiting"] = False
                start_step()
            maybe_start_workers()

        def start_step():
            state["queued"] -= 1
            ev.schedule(self.step_time, finish_step)
            maybe_start_workers()

        def finish_step():
            state["consumed"] += 1
            state["gpu_busy_until"] = ev.now
            if state["consumed"] >= target:
                state["done_time"] = ev.now
                return
            if state["queued"] > 0:
                start_step()
            else:
                state["gpu_waiting"] = True

        maybe_start_workers()
        if state["queued"] > 0:
            start_step()
        else:
            state["gpu_waiting"] = True
        ev.run()
        total = state["done_time"]
        return PipelineStats(steps, total, steps * self.step_time)


class PrefetchPipeline:
    """A real (threaded) prefetching loader over an arbitrary reader callable.

    ``reader(index)`` returns one sample.  Iterate the pipeline to consume
    samples in submission order.  This is the examples' loader; tests use it
    with :class:`repro.climate.SampleFileStore` readers whose serialization
    gates reproduce the HDF5-vs-multiprocessing behaviour.
    """

    _SENTINEL = object()

    def __init__(self, reader, indices, num_workers: int = 4, prefetch_depth: int = 8,
                 telemetry=None):
        if num_workers < 1 or prefetch_depth < 1:
            raise ValueError("num_workers and prefetch_depth must be >= 1")
        self.reader = reader
        self.indices = list(indices)
        self.num_workers = num_workers
        self.telemetry = telemetry
        self.queue: queue.Queue = queue.Queue(maxsize=prefetch_depth)
        self._results: dict[int, object] = {}
        self._next_emit = 0
        self._lock = threading.Lock()
        self._task_iter = iter(enumerate(self.indices))
        self._threads: list[threading.Thread] = []

    def _worker(self):
        tel = self.telemetry or get_active()
        tracer = tel.tracer
        while True:
            with self._lock:
                try:
                    slot, index = next(self._task_iter)
                except StopIteration:
                    return
            with tracer.span("read_sample", category="io",
                             index=int(index)) as sp:
                sample = self.reader(index)
            if tel.enabled:
                tel.metrics.histogram("io.read_latency_s").observe(sp.duration_s)
                tel.metrics.counter("io.samples_read").inc()
            self.queue.put((slot, sample))
            if tel.enabled:
                tel.metrics.gauge("io.queue_depth").set(self.queue.qsize())

    def __iter__(self):
        tel = self.telemetry or get_active()
        for _ in range(self.num_workers):
            t = threading.Thread(target=self._worker, daemon=True)
            t.start()
            self._threads.append(t)
        emitted = 0
        pending: dict[int, object] = {}
        next_slot = 0
        while emitted < len(self.indices):
            if next_slot in pending:
                sample = pending.pop(next_slot)
            else:
                with tel.tracer.span("dequeue_sample", category="io") as sp:
                    slot, sample_in = self.queue.get()
                if tel.enabled:
                    tel.metrics.histogram("io.dequeue_wait_s").observe(sp.duration_s)
                    tel.metrics.gauge("io.queue_depth").set(self.queue.qsize())
                if slot != next_slot:
                    pending[slot] = sample_in
                    continue
                sample = sample_in
            yield sample
            emitted += 1
            next_slot += 1
        for t in self._threads:
            t.join()
