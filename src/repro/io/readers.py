"""Multi-threaded file-reader models and implementations.

Two facts from the paper drive this module (Sections V-A1/V-A2):

* running **eight reader threads instead of one** raised a rank's achieved
  GPFS read bandwidth from 1.79 GB/s to 11.98 GB/s (6.7x) — threads *do*
  help against file-system latency when each thread has its own file;
* inside the TensorFlow input pipeline, however, the HDF5 library
  **serializes all operations**, so parallel worker *threads* gained
  nothing, and the fix was parallel worker *processes*.

``scaled_read_bandwidth`` is the analytic model used by the staging
simulator; ``ThreadedReader`` is a real thread-pool reader whose
serialization behaviour is controlled by which gate(s) the threads share,
reproducing both regimes measurably.
"""
from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

from ..climate.hdf5store import GATE, SampleFileStore, SerializationGate
from ..telemetry.clock import WallClock

__all__ = ["scaled_read_bandwidth", "ReadResult", "ThreadedReader"]


def scaled_read_bandwidth(
    threads: int,
    single_thread_bw: float,
    efficiency_decay: float = 0.0277,
    cap: float | None = None,
) -> float:
    """Per-node read bandwidth as a function of reader thread count.

    Near-linear scaling with a mild per-thread efficiency decay; the default
    decay reproduces the paper's measured 6.7x at 8 threads.  ``cap`` bounds
    the result by e.g. the NIC or storage limit.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    eff = 1.0 / (1.0 + efficiency_decay * (threads - 1))
    bw = single_thread_bw * threads * eff
    if cap is not None:
        bw = min(bw, cap)
    return bw


@dataclass
class ReadResult:
    """Outcome of a threaded read batch."""

    samples: int
    wall_time_s: float
    gate_wait_s: float
    faults_retried: int = 0

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.wall_time_s if self.wall_time_s > 0 else float("inf")


class ThreadedReader:
    """Reads samples from a :class:`SampleFileStore` with a thread pool.

    ``shared_gate=True`` routes every thread through the process-wide
    serialization gate (the HDF5-library regime: threads serialize).
    ``shared_gate=False`` gives each worker its own gate, modelling the
    paper's multiprocessing fix (each process has its own HDF5 library).

    ``fault_injector`` (:class:`repro.resilience.FaultInjector`) makes the
    read path lossy on purpose; injected read faults are retried under
    ``retry`` (a :class:`repro.resilience.RetryPolicy`) and counted in the
    returned :class:`ReadResult`, so a slow or corrupted reader degrades a
    batch instead of killing it.
    """

    def __init__(self, store: SampleFileStore, num_workers: int = 4,
                 shared_gate: bool = True, fault_injector=None, retry=None,
                 clock=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.store = store
        self.num_workers = num_workers
        self.shared_gate = shared_gate
        self.fault_injector = fault_injector
        self.retry = retry
        # Batch wall time is a genuine thread-pool elapsed-time measurement,
        # so the default is an explicit WallClock — simulated time does not
        # advance while worker threads block on real file I/O.
        self.clock = clock if clock is not None else WallClock()
        if shared_gate:
            self._gates = [GATE] * num_workers
        else:
            self._gates = [SerializationGate() for _ in range(num_workers)]

    def read_indices(self, indices: list[int]):
        """Read samples concurrently; returns (list of samples, ReadResult)."""
        from ..resilience.retry import RetryPolicy, RetryState, with_retries

        unique_gates = {id(g): g for g in self._gates}.values()
        for g in unique_gates:
            g.reset()
        t0 = self.clock.now()
        results = [None] * len(indices)
        policy = self.retry or RetryPolicy()
        retry_state = RetryState()

        def read_one(index: int, worker: int):
            if self.fault_injector is not None:
                self.fault_injector.check_read(f"sample-{index}")
            return self.store.read_sample(index, gate=self._gates[worker])

        def work(slot: int, index: int, worker: int):
            if self.fault_injector is None:
                results[slot] = read_one(index, worker)
            else:
                results[slot] = with_retries(
                    lambda: read_one(index, worker), policy,
                    retry_on=(OSError,), label=f"read:sample-{index}",
                    state=retry_state)

        with concurrent.futures.ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            futures = [
                pool.submit(work, slot, index, slot % self.num_workers)
                for slot, index in enumerate(indices)
            ]
            for f in futures:
                f.result()
        wall = self.clock.now() - t0
        wait = sum(g.stats["wait_time_s"] for g in unique_gates)
        return results, ReadResult(samples=len(indices), wall_time_s=wall,
                                   gate_wait_s=wait,
                                   faults_retried=retry_state.retries)
