"""Halo exchange for spatial domain decomposition.

Section VIII-B of the paper: "Systems like Summit (with high speed NVLink
connections between processors) are amenable to domain decomposition
techniques that split layers across processors."  This module implements the
communication primitive that makes that work: each rank owns a horizontal
stripe of the (N, C, H, W) activation tensor and, before every convolution,
exchanges ``halo`` boundary rows with its neighbours so the stencil can be
evaluated without seams.

The exchange runs over the functional MPI wire, so tests can verify both
numerics (distributed conv == single-device conv, exactly) and traffic
(2 messages per interior boundary, halo*C*W elements each).
"""
from __future__ import annotations

import numpy as np

from .simmpi import World

__all__ = ["stripe_bounds", "split_stripes", "halo_exchange", "gather_stripes"]


def stripe_bounds(height: int, ranks: int) -> list[tuple[int, int]]:
    """Contiguous [lo, hi) row ranges per rank (difference of sizes <= 1)."""
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if height < ranks:
        raise ValueError(f"cannot split {height} rows over {ranks} ranks")
    edges = np.linspace(0, height, ranks + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:])]


def split_stripes(x: np.ndarray, ranks: int) -> list[np.ndarray]:
    """Split (N, C, H, W) into per-rank horizontal stripes (copies)."""
    bounds = stripe_bounds(x.shape[2], ranks)
    return [x[:, :, lo:hi].copy() for lo, hi in bounds]


def halo_exchange(world: World, stripes: list[np.ndarray], halo: int,
                  tag: int = 500) -> list[np.ndarray]:
    """Pad each stripe with ``halo`` rows from its neighbours.

    Boundary ranks (top of rank 0, bottom of the last rank) get zero padding,
    matching the zero-padded convolution they jointly implement.  Returns new
    arrays of height ``stripe_h + 2*halo``.
    """
    n_ranks = len(stripes)
    if n_ranks != world.size:
        raise ValueError(f"need {world.size} stripes, got {n_ranks}")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    if halo == 0:
        return [s.copy() for s in stripes]
    for r, s in enumerate(stripes):
        if s.shape[2] < halo:
            raise ValueError(
                f"rank {r} stripe height {s.shape[2]} smaller than halo {halo}"
            )
    # Post all sends first (non-blocking semantics), then receive.
    for r, s in enumerate(stripes):
        if r > 0:
            world.send(s[:, :, :halo], r, r - 1, tag)       # my top rows -> up
        if r < n_ranks - 1:
            world.send(s[:, :, -halo:], r, r + 1, tag + 1)  # my bottom rows -> down
    padded = []
    for r, s in enumerate(stripes):
        n, c, h, w = s.shape
        out = np.zeros((n, c, h + 2 * halo, w), dtype=s.dtype)
        out[:, :, halo : halo + h] = s
        if r > 0:
            out[:, :, :halo] = world.recv(r, r - 1, tag + 1)
        if r < n_ranks - 1:
            out[:, :, halo + h :] = world.recv(r, r + 1, tag)
        padded.append(out)
    return padded


def gather_stripes(stripes: list[np.ndarray]) -> np.ndarray:
    """Reassemble per-rank stripes into the full tensor."""
    return np.concatenate(stripes, axis=2)
