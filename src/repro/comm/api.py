"""The unified all-reduce entrypoint: one facade over a strategy registry.

Historically callers hand-picked among four free functions
(``naive_allreduce`` .. ``hierarchical_allreduce``), each with its own
signature quirks.  This module collapses that surface to

    ``allreduce(world, buffers, *, strategy="ring", average=False, ...)``

dispatching through a :class:`CommStrategy` registry.  A strategy bundles
the wire implementation with its alpha-beta cost model, so higher layers
(:mod:`repro.comm.engine`, :mod:`repro.perf.scaling`) can *predict* a
strategy's cost from the same object they *execute* — the property the
adaptive gradient-exchange engine's autotuner is built on.

Third parties extend the surface with :func:`register_strategy`; the four
paper algorithms are pre-registered.  The legacy free functions survive in
:mod:`.reducer` as thin deprecated wrappers over this facade (flagged by
lint rule RPR009).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .costmodel import Link, ring_allreduce_time, tree_allreduce_time
from .reducer import (
    _check_buffers,
    _hierarchical_allreduce,
    _naive_allreduce,
    _reduce_span,
    _ring_allreduce,
    _tree_allreduce,
)
from .simmpi import World

__all__ = [
    "CommStrategy",
    "allreduce",
    "available_strategies",
    "get_strategy",
    "register_strategy",
]


@dataclass(frozen=True)
class CommStrategy:
    """One named all-reduce: wire implementation + analytic cost model.

    ``run_fn(world, buffers, average, tag, **params)`` must return one
    result buffer per rank (the exact sum, or mean when ``average``).
    ``model_fn(world_size, volume, nvlink, interconnect, **params)``
    predicts the collective's wall time on an alpha-beta fabric; it is
    consulted by the engine's selection pass and may be ``None`` for
    strategies that opt out of model-driven selection.
    """

    name: str
    run_fn: Callable[..., list[np.ndarray]]
    default_tag: int
    model_fn: Callable[..., float] | None = None

    def run(self, world: World, buffers: list[np.ndarray], *,
            average: bool = False, tag: int | None = None,
            **params) -> list[np.ndarray]:
        buffers = _check_buffers(world, buffers)
        resolved_tag = self.default_tag if tag is None else tag
        if getattr(world, "collective_checks", False):
            # Every alive rank enters the same allreduce here; announcing
            # per rank lets the debug assertion catch a caller that runs
            # a divergent schedule (e.g. per-rank strategy choices).
            for r in world.alive_ranks():
                world.announce_collective(
                    r, f"allreduce.{self.name}", resolved_tag,
                    buffers[0].shape, buffers[0].dtype)
        with _reduce_span(self.name, world, buffers):
            return self.run_fn(world, buffers, average, resolved_tag,
                               **params)

    def modeled_time(self, world_size: int, volume: float, *,
                     nvlink: Link, interconnect: Link, **params) -> float:
        if self.model_fn is None:
            raise ValueError(f"strategy {self.name!r} has no cost model")
        return self.model_fn(world_size, volume, nvlink=nvlink,
                             interconnect=interconnect, **params)


_REGISTRY: dict[str, CommStrategy] = {}


def register_strategy(strategy: CommStrategy, *, overwrite: bool = False) -> None:
    """Add ``strategy`` to the registry (``overwrite`` to replace)."""
    if not isinstance(strategy, CommStrategy):
        raise TypeError(f"expected CommStrategy, got {type(strategy).__name__}")
    if strategy.name in _REGISTRY and not overwrite:
        raise ValueError(f"strategy {strategy.name!r} already registered; "
                         "pass overwrite=True to replace it")
    _REGISTRY[strategy.name] = strategy


def get_strategy(name: str) -> CommStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown comm strategy {name!r}; registered: "
            f"{', '.join(available_strategies())}") from None


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def allreduce(world: World, buffers: list[np.ndarray], *,
              strategy: str | CommStrategy = "ring", average: bool = False,
              tag: int | None = None, **params) -> list[np.ndarray]:
    """All-reduce ``buffers`` (one per rank) under the named strategy.

    The single public entrypoint for dense collectives: every per-rank
    buffer is summed (or averaged) and the identical result is returned
    for every rank.  ``strategy`` is a registry name or a
    :class:`CommStrategy` instance; strategy-specific knobs (e.g.
    ``gpus_per_node`` for ``"hierarchical"``) pass through ``**params``.
    """
    s = strategy if isinstance(strategy, CommStrategy) else get_strategy(strategy)
    return s.run(world, buffers, average=average, tag=tag, **params)


# -- built-in strategies -----------------------------------------------------

def _naive_time(n: int, volume: float, *, nvlink: Link, interconnect: Link) -> float:
    # Gather-to-root + broadcast, serialized through rank 0.
    if n <= 1:
        return 0.0
    return 2 * (n - 1) * interconnect.transfer_time(volume)


def _ring_time(n: int, volume: float, *, nvlink: Link, interconnect: Link) -> float:
    return ring_allreduce_time(n, volume, interconnect)


def _tree_time(n: int, volume: float, *, nvlink: Link, interconnect: Link) -> float:
    return tree_allreduce_time(n, volume, interconnect)


def _hierarchical_time(n: int, volume: float, *, nvlink: Link,
                       interconnect: Link, gpus_per_node: int = 6,
                       mpi_ranks_per_node: int = 4) -> float:
    from .costmodel import hierarchical_allreduce_time

    nodes = max(n // gpus_per_node, 1)
    return hierarchical_allreduce_time(
        nodes, volume, nvlink, interconnect, gpus_per_node=gpus_per_node,
        parallel_devices=mpi_ranks_per_node)


def _run_hierarchical(world, buffers, average, tag, gpus_per_node: int = 6,
                      mpi_ranks_per_node: int = 4):
    return _hierarchical_allreduce(world, buffers, gpus_per_node,
                                   mpi_ranks_per_node, average, tag)


register_strategy(CommStrategy("naive", _naive_allreduce, 10, _naive_time))
register_strategy(CommStrategy("ring", _ring_allreduce, 20, _ring_time))
register_strategy(CommStrategy("tree", _tree_allreduce, 30, _tree_time))
register_strategy(CommStrategy("hierarchical", _run_hierarchical, 40,
                               _hierarchical_time))
