"""All-reduce algorithms over the functional MPI substrate.

Implements the three reduction strategies the paper discusses
(Section V-A3):

* ``ring_allreduce`` — NCCL's systolic ring (reduce-scatter + all-gather),
  bandwidth-optimal: each rank moves ``2 (n-1)/n * V`` bytes;
* ``tree_allreduce`` — binomial-tree reduce + broadcast, the classic
  MPI_Allreduce pattern, latency-optimal at ``2 log2 n`` rounds;
* ``hierarchical_allreduce`` — the paper's hybrid: NCCL ring *within* each
  node, then 4 of the 6 local ranks each run an inter-node all-reduce on a
  quarter of the payload (one per virtual InfiniBand device), then an
  intra-node broadcast.

Every algorithm is numerically exact (sum of the per-rank buffers, same
result on every rank) and exchanges real messages through :class:`World`,
so tests can verify both the math and the traffic pattern.

.. deprecated::
    The four free functions below are retained as thin wrappers for old
    callers; new code goes through the unified facade
    :func:`repro.comm.allreduce` and the :class:`repro.comm.CommStrategy`
    registry (see :mod:`repro.comm.api`).  Lint rule RPR009 flags direct
    calls to the wrappers.
"""
from __future__ import annotations

import warnings

import numpy as np

from ..telemetry import get_active
from .simmpi import World

__all__ = [
    "allreduce",
    "naive_allreduce",
    "ring_allreduce",
    "tree_allreduce",
    "hierarchical_allreduce",
]


def __getattr__(name: str):
    # Lazy re-export of the facade so RPR009's attribute autofix
    # (``reducer.ring_allreduce(...)`` -> ``reducer.allreduce(...)``)
    # keeps working callers working.  Deferred because :mod:`.api`
    # imports this module's private implementations at module level —
    # a top-level ``from .api import allreduce`` would be circular.
    if name == "allreduce":
        from .api import allreduce
        return allreduce
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _reduce_span(algorithm: str, world: World, buffers: list[np.ndarray]):
    """Span + byte accounting around one collective (no-op when disabled)."""
    tel = get_active()
    if tel.enabled:
        payload = int(np.asarray(buffers[0]).nbytes)
        tel.metrics.counter("comm.allreduce_calls", algorithm=algorithm).inc()
        tel.metrics.counter("comm.reduced_bytes").inc(payload * world.size)
        return tel.tracer.span(f"allreduce.{algorithm}", category="comm",
                               ranks=world.size, payload_bytes=payload)
    return tel.tracer.span("")  # NULL_SPAN


def _check_buffers(world: World, buffers: list[np.ndarray]) -> list[np.ndarray]:
    if len(buffers) != world.size:
        raise ValueError(f"need {world.size} buffers, got {len(buffers)}")
    shape = buffers[0].shape
    out = []
    for i, b in enumerate(buffers):
        b = np.asarray(b)
        if b.shape != shape:
            raise ValueError(f"buffer {i} shape {b.shape} != {shape}")
        out.append(b.astype(np.float64 if b.dtype == np.float64 else np.float32))
    return out


def _deprecated_wrapper(name: str, strategy: str):
    warnings.warn(
        f"{name} is deprecated; use repro.comm.allreduce(world, buffers, "
        f"strategy={strategy!r}, ...)", DeprecationWarning, stacklevel=3)


def naive_allreduce(world: World, buffers: list[np.ndarray], average: bool = False,
                    tag: int = 10) -> list[np.ndarray]:
    """Deprecated: use :func:`repro.comm.allreduce` with ``strategy="naive"``.

    Gather-to-root + broadcast; the O(n*V) baseline.
    """
    _deprecated_wrapper("naive_allreduce", "naive")
    from .api import allreduce
    return allreduce(world, buffers, strategy="naive", average=average, tag=tag)


def _naive_allreduce(world: World, buffers: list[np.ndarray], average: bool,
                     tag: int) -> list[np.ndarray]:
    gathered = world.gather(buffers, root=0, tag=tag)
    total = gathered[0].copy()
    for b in gathered[1:]:
        total += b
    if average:
        total /= world.size
    results = world.broadcast(total, root=0, tag=tag + 1)
    return [np.array(r, copy=True) for r in results]


def ring_allreduce(world: World, buffers: list[np.ndarray], average: bool = False,
                   tag: int = 20) -> list[np.ndarray]:
    """Deprecated: use :func:`repro.comm.allreduce` with ``strategy="ring"``.

    Reduce-scatter + all-gather ring (the NCCL algorithm).
    """
    _deprecated_wrapper("ring_allreduce", "ring")
    from .api import allreduce
    return allreduce(world, buffers, strategy="ring", average=average, tag=tag)


def _ring_allreduce(world: World, buffers: list[np.ndarray], average: bool,
                    tag: int) -> list[np.ndarray]:
    n = world.size
    if n == 1:
        out = buffers[0].copy()
        return [out / 1 if not average else out]
    flat = [b.ravel().copy() for b in buffers]
    length = flat[0].size
    # Chunk boundaries (n chunks, possibly ragged).
    bounds = np.linspace(0, length, n + 1).astype(int)

    def chunk(r: int, c: int) -> np.ndarray:
        return flat[r][bounds[c] : bounds[c + 1]]

    # Reduce-scatter: step s, rank r sends chunk (r - s) to rank r+1.
    for s in range(n - 1):
        for r in range(n):
            c = (r - s) % n
            world.send(chunk(r, c), r, (r + 1) % n, tag)
        for r in range(n):
            c = (r - 1 - s) % n
            incoming = world.recv(r, (r - 1) % n, tag)
            chunk(r, c)[:] += incoming
    # All-gather: step s, rank r sends its completed chunk (r+1-s).
    for s in range(n - 1):
        for r in range(n):
            c = (r + 1 - s) % n
            world.send(chunk(r, c), r, (r + 1) % n, tag + 1)
        for r in range(n):
            c = (r - s) % n
            chunk(r, c)[:] = world.recv(r, (r - 1) % n, tag + 1)
    shape = buffers[0].shape
    results = []
    for r in range(n):
        out = flat[r].reshape(shape)
        if average:
            out = out / n
        results.append(out)
    return results


def tree_allreduce(world: World, buffers: list[np.ndarray], average: bool = False,
                   tag: int = 30) -> list[np.ndarray]:
    """Deprecated: use :func:`repro.comm.allreduce` with ``strategy="tree"``.

    Binomial-tree reduce to rank 0, then binomial broadcast.
    """
    _deprecated_wrapper("tree_allreduce", "tree")
    from .api import allreduce
    return allreduce(world, buffers, strategy="tree", average=average, tag=tag)


def _tree_allreduce(world: World, buffers: list[np.ndarray], average: bool,
                    tag: int) -> list[np.ndarray]:
    n = world.size
    acc = [b.copy() for b in buffers]
    # Reduce: at round k, ranks with bit k set send to (rank - 2^k).
    k = 1
    while k < n:
        for r in range(n):
            if r % (2 * k) == k:
                world.send(acc[r], r, r - k, tag)
        for r in range(n):
            if r % (2 * k) == 0 and r + k < n:
                acc[r] += world.recv(r, r + k, tag)
        k *= 2
    if average:
        acc[0] /= n
    # Broadcast: reverse the tree.
    k = 1
    while k * 2 < n:
        k *= 2
    while k >= 1:
        for r in range(n):
            if r % (2 * k) == 0 and r + k < n:
                world.send(acc[r], r, r + k, tag + 1)
        for r in range(n):
            if r % (2 * k) == k:
                acc[r] = world.recv(r, r - k, tag + 1)
        k //= 2
    return acc


def hierarchical_allreduce(
    world: World,
    buffers: list[np.ndarray],
    gpus_per_node: int = 6,
    mpi_ranks_per_node: int = 4,
    average: bool = False,
    tag: int = 40,
) -> list[np.ndarray]:
    """Deprecated: use :func:`repro.comm.allreduce` with
    ``strategy="hierarchical"``.

    The paper's hybrid NCCL + MPI all-reduce (Section V-A3):

    1. NCCL ring reduce-scatter + gather *within* each node so all local
       ranks hold the node-local sum (modelled as an in-node ring over the
       simulated wire);
    2. ``mpi_ranks_per_node`` of the local ranks each all-reduce a disjoint
       1/``mpi_ranks_per_node`` slice across nodes (one slice per virtual IB
       device) using a binomial tree;
    3. NCCL broadcast inside the node so all ``gpus_per_node`` ranks end
       with the full result.

    World size must be a multiple of ``gpus_per_node``.
    """
    _deprecated_wrapper("hierarchical_allreduce", "hierarchical")
    from .api import allreduce
    return allreduce(world, buffers, strategy="hierarchical", average=average,
                     tag=tag, gpus_per_node=gpus_per_node,
                     mpi_ranks_per_node=mpi_ranks_per_node)


def _hierarchical_allreduce(
    world: World,
    buffers: list[np.ndarray],
    gpus_per_node: int,
    mpi_ranks_per_node: int,
    average: bool,
    tag: int,
) -> list[np.ndarray]:
    n = world.size
    if n % gpus_per_node:
        raise ValueError(f"world size {n} not divisible by gpus_per_node {gpus_per_node}")
    if not 1 <= mpi_ranks_per_node <= gpus_per_node:
        raise ValueError("mpi_ranks_per_node must be in [1, gpus_per_node]")
    nodes = n // gpus_per_node
    shape = buffers[0].shape
    flat = [b.ravel().copy() for b in buffers]
    length = flat[0].size

    # Stage 1: intra-node ring all-reduce (local sums everywhere).
    for node in range(nodes):
        ranks = list(range(node * gpus_per_node, (node + 1) * gpus_per_node))
        g = len(ranks)
        bounds = np.linspace(0, length, g + 1).astype(int)

        def chunk(rank: int, c: int) -> np.ndarray:
            return flat[rank][bounds[c] : bounds[c + 1]]

        for s in range(g - 1):
            for li, r in enumerate(ranks):
                world.send(chunk(r, (li - s) % g), r, ranks[(li + 1) % g], tag)
            for li, r in enumerate(ranks):
                chunk(r, (li - 1 - s) % g)[:] += world.recv(r, ranks[(li - 1) % g], tag)
        for s in range(g - 1):
            for li, r in enumerate(ranks):
                world.send(chunk(r, (li + 1 - s) % g), r, ranks[(li + 1) % g], tag + 1)
            for li, r in enumerate(ranks):
                chunk(r, (li - s) % g)[:] = world.recv(r, ranks[(li - 1) % g], tag + 1)

    # Stage 2: inter-node all-reduce on quarter slices, binomial tree per slice.
    slice_bounds = np.linspace(0, length, mpi_ranks_per_node + 1).astype(int)
    if nodes > 1:
        for q in range(mpi_ranks_per_node):
            lo, hi = slice_bounds[q], slice_bounds[q + 1]
            # The q-th local rank on every node owns slice q.
            owners = [node * gpus_per_node + q for node in range(nodes)]
            acc = {r: flat[r][lo:hi].copy() for r in owners}
            k = 1
            while k < nodes:
                for idx, r in enumerate(owners):
                    if idx % (2 * k) == k:
                        world.send(acc[r], r, owners[idx - k], tag + 2)
                for idx, r in enumerate(owners):
                    if idx % (2 * k) == 0 and idx + k < nodes:
                        acc[r] += world.recv(r, owners[idx + k], tag + 2)
                k *= 2
            k = 1
            while k * 2 < nodes:
                k *= 2
            while k >= 1:
                for idx, r in enumerate(owners):
                    if idx % (2 * k) == 0 and idx + k < nodes:
                        world.send(acc[r], r, owners[idx + k], tag + 3)
                for idx, r in enumerate(owners):
                    if idx % (2 * k) == k:
                        acc[r] = world.recv(r, owners[idx - k], tag + 3)
                k //= 2
            for r in owners:
                flat[r][lo:hi] = acc[r]

    # Stage 3: intra-node broadcast of each slice from its owner.
    for node in range(nodes):
        base = node * gpus_per_node
        ranks = list(range(base, base + gpus_per_node))
        for q in range(mpi_ranks_per_node):
            lo, hi = slice_bounds[q], slice_bounds[q + 1]
            owner = base + q
            for r in ranks:
                if r != owner:
                    world.send(flat[owner][lo:hi], owner, r, tag + 4)
            for r in ranks:
                if r != owner:
                    flat[r][lo:hi] = world.recv(r, owner, tag + 4)

    results = []
    for r in range(n):
        out = flat[r].reshape(shape)
        if average:
            out = out / n
        results.append(out)
    return results
