"""Communication substrate: functional MPI, collectives, Horovod control."""
from .api import (
    CommStrategy,
    allreduce,
    available_strategies,
    get_strategy,
    register_strategy,
)
from .coordinator import (
    NegotiationResult,
    ReadinessSchedule,
    centralized_negotiation,
    hierarchical_negotiation,
    tree_children,
    tree_parent,
)
from .costmodel import (
    Link,
    centralized_control_time,
    hierarchical_allreduce_time,
    hierarchical_control_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from .compression import (
    Int8Compressor,
    QuantizedGradient,
    SparseGradient,
    TopKCompressor,
    make_compressor,
    quantized_allreduce,
    sparse_allreduce,
)
from .engine import EngineConfig, EngineReport, GradientExchangeEngine
from .halo import gather_stripes, halo_exchange, split_stripes, stripe_bounds
from .horovod import (
    ExchangeReport,
    FusionPlan,
    HorovodConfig,
    allreduce_gradients,
    fuse_order,
)
from .reducer import (
    hierarchical_allreduce,
    naive_allreduce,
    ring_allreduce,
    tree_allreduce,
)
from .timeline import (
    TimelineEvent,
    build_timeline,
    chrome_trace_records,
    to_chrome_trace,
)
from .simmpi import TrafficStats, World

__all__ = [
    "CommStrategy",
    "allreduce",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "World",
    "stripe_bounds",
    "split_stripes",
    "halo_exchange",
    "gather_stripes",
    "TopKCompressor",
    "Int8Compressor",
    "SparseGradient",
    "QuantizedGradient",
    "make_compressor",
    "sparse_allreduce",
    "quantized_allreduce",
    "EngineConfig",
    "EngineReport",
    "GradientExchangeEngine",
    "TimelineEvent",
    "build_timeline",
    "chrome_trace_records",
    "to_chrome_trace",
    "TrafficStats",
    "naive_allreduce",
    "ring_allreduce",
    "tree_allreduce",
    "hierarchical_allreduce",
    "ReadinessSchedule",
    "NegotiationResult",
    "centralized_negotiation",
    "hierarchical_negotiation",
    "tree_parent",
    "tree_children",
    "HorovodConfig",
    "FusionPlan",
    "ExchangeReport",
    "allreduce_gradients",
    "fuse_order",
    "Link",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "hierarchical_allreduce_time",
    "centralized_control_time",
    "hierarchical_control_time",
]
