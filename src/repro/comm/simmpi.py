"""A functional, in-process MPI with per-rank traffic accounting.

This is the wire the collective algorithms and the Horovod control planes
run over.  It is deliberately *functional* rather than threaded: collectives
are expressed as sequences of matched send/recv pairs executed in program
order, which keeps runs deterministic and lets tests assert exact message
and byte counts (the heart of the paper's control-plane argument in
Section V-A3).

The API mirrors mpi4py closely enough to be familiar: ``send``/``recv`` with
(source, tag) matching, plus convenience collectives.  Payloads are NumPy
arrays or picklable Python objects; arrays are copied on send so ranks
cannot alias each other's buffers (MPI semantics).
"""
from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["World", "TrafficStats"]


@dataclass
class TrafficStats:
    """Per-rank accounting of point-to-point traffic."""

    sent_messages: defaultdict = field(default_factory=lambda: defaultdict(int))
    recv_messages: defaultdict = field(default_factory=lambda: defaultdict(int))
    sent_bytes: defaultdict = field(default_factory=lambda: defaultdict(int))

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    def max_messages_per_rank(self) -> int:
        counts = [self.sent_messages[r] + self.recv_messages[r]
                  for r in set(self.sent_messages) | set(self.recv_messages)]
        return max(counts, default=0)

    def reset(self) -> None:
        self.sent_messages.clear()
        self.recv_messages.clear()
        self.sent_bytes.clear()


def _payload_bytes(payload) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    # Small control message: count a nominal envelope.
    return 64


class World:
    """A simulated MPI communicator of ``size`` ranks."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = int(size)
        self._queues: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = TrafficStats()

    # -- point to point ------------------------------------------------------

    def send(self, payload, src: int, dst: int, tag: int = 0) -> None:
        """Enqueue a message from ``src`` to ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self._queues[(src, dst, tag)].append(payload)
        self.stats.sent_messages[src] += 1
        self.stats.sent_bytes[src] += _payload_bytes(payload)

    def recv(self, dst: int, src: int, tag: int = 0):
        """Dequeue the next message from ``src`` to ``dst``.

        Raises ``LookupError`` if no matching message is pending — in a
        functional simulation that indicates a protocol bug (deadlock).
        """
        self._check_rank(src)
        self._check_rank(dst)
        q = self._queues[(src, dst, tag)]
        if not q:
            raise LookupError(
                f"deadlock: rank {dst} waiting on message from {src} tag {tag}"
            )
        self.stats.recv_messages[dst] += 1
        return q.popleft()

    def pending(self, dst: int, src: int, tag: int = 0) -> int:
        return len(self._queues[(src, dst, tag)])

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    # -- simple collectives (reference implementations) -----------------------

    def exchange(self, payloads: list, pairs: list[tuple[int, int]], tag: int = 0) -> list:
        """Send payloads[src] along each (src, dst) pair; return recv list
        aligned with ``pairs``.  Helper for algorithm implementations."""
        for (src, dst), payload in zip(pairs, payloads):
            self.send(payload, src, dst, tag)
        return [self.recv(dst, src, tag) for (src, dst) in pairs]

    def gather(self, values: list, root: int = 0, tag: int = 1000) -> list:
        """Reference gather: every rank sends its value to root."""
        if len(values) != self.size:
            raise ValueError("need one value per rank")
        for r in range(self.size):
            if r != root:
                self.send(values[r], r, root, tag)
        out = []
        for r in range(self.size):
            out.append(values[r] if r == root else self.recv(root, r, tag))
        return out

    def broadcast(self, value, root: int = 0, tag: int = 1001) -> list:
        """Reference broadcast: root sends to every other rank."""
        for r in range(self.size):
            if r != root:
                self.send(value, root, r, tag)
        return [value if r == root else self.recv(r, root, tag) for r in range(self.size)]
