"""A functional, in-process MPI with per-rank traffic accounting.

This is the wire the collective algorithms and the Horovod control planes
run over.  It is deliberately *functional* rather than threaded: collectives
are expressed as sequences of matched send/recv pairs executed in program
order, which keeps runs deterministic and lets tests assert exact message
and byte counts (the heart of the paper's control-plane argument in
Section V-A3).

The API mirrors mpi4py closely enough to be familiar: ``send``/``recv`` with
(source, tag) matching, plus convenience collectives.  Payloads are NumPy
arrays or picklable Python objects; arrays are copied on send so ranks
cannot alias each other's buffers (MPI semantics).

Fault model (:mod:`repro.resilience`): a ``World`` built with a
``fault_injector`` consults it on every send — injected *drops* surface at
the receiver as :class:`repro.errors.MessageDropped` (so protocols observe
loss as an exception instead of a silent deadlock and can re-send via
:meth:`World.recv_reliable`); injected *duplicates* model transport-level
retransmission and are deduplicated on receive, visible only in
``TrafficStats``.  :meth:`World.fail_rank` kills a rank: any further
traffic touching it raises :class:`repro.errors.RankFailure`, which the
elastic-recovery path catches to rebuild a smaller world.
"""
from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import (CollectiveMismatch, DeadlockError, MessageDropped,
                      RankError, RankFailure)
from ..telemetry import get_active

__all__ = ["World", "TrafficStats"]


@dataclass
class TrafficStats:
    """Per-rank accounting of point-to-point traffic."""

    sent_messages: defaultdict = field(default_factory=lambda: defaultdict(int))
    recv_messages: defaultdict = field(default_factory=lambda: defaultdict(int))
    sent_bytes: defaultdict = field(default_factory=lambda: defaultdict(int))
    dropped_messages: defaultdict = field(default_factory=lambda: defaultdict(int))
    duplicated_messages: defaultdict = field(default_factory=lambda: defaultdict(int))

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    def max_messages_per_rank(self) -> int:
        counts = [self.sent_messages[r] + self.recv_messages[r]
                  for r in set(self.sent_messages) | set(self.recv_messages)]
        return max(counts, default=0)

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped_messages.values())

    @property
    def total_duplicated(self) -> int:
        return sum(self.duplicated_messages.values())

    def reset(self) -> None:
        self.sent_messages.clear()
        self.recv_messages.clear()
        self.sent_bytes.clear()
        self.dropped_messages.clear()
        self.duplicated_messages.clear()


def _payload_bytes(payload) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    # Small control message: count a nominal envelope.
    return 64


class _DropMarker:
    """Takes a dropped message's place so the receiver observes the loss."""

    __slots__ = ("src", "dst", "tag", "msg_id")

    def __init__(self, src: int, dst: int, tag: int, msg_id: int | None = None):
        self.src, self.dst, self.tag, self.msg_id = src, dst, tag, msg_id


class _DupMarker:
    """A transport-level retransmission; deduplicated on receive."""

    __slots__ = ()


_DUP = _DupMarker()


class _Traced:
    """Envelope pairing a payload with its wire-level trace context.

    Created only while a telemetry session is active, so untraced runs pay
    nothing per message.  The ``msg_id`` is the cross-rank causal link: the
    send event and the recv event both carry it, and the Chrome exporter
    turns each matched pair into a flow arrow between rank lanes.
    """

    __slots__ = ("payload", "msg_id")

    def __init__(self, payload, msg_id: int):
        self.payload = payload
        self.msg_id = msg_id


class World:
    """A simulated MPI communicator of ``size`` ranks.

    ``fault_injector`` (a :class:`repro.resilience.FaultInjector`, or any
    object with a ``message_action(src, dst, tag)`` method) is consulted on
    every send; ranks killed with :meth:`fail_rank` poison all their
    channels.

    ``collective_checks=True`` enables the opt-in debug assertion behind
    :meth:`announce_collective`: every rank entering a collective announces
    its (op, tag, shape, dtype) and any disagreement within a round — or a
    rank announcing twice before its peers caught up — raises
    :class:`~repro.errors.CollectiveMismatch` at the call site instead of
    deadlocking somewhere down the wire.  This is the runtime complement
    of the static RPR101 analysis (``repro lint --deep``).
    """

    def __init__(self, size: int, fault_injector=None, *,
                 collective_checks: bool = False):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = int(size)
        self._queues: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = TrafficStats()
        self.fault_injector = fault_injector
        self._failed: set[int] = set()
        self._msg_seq = 0           # wire-level message ids (trace context)
        self.collective_checks = bool(collective_checks)
        self._pending_collective: dict[int, tuple] = {}
        self.collective_rounds = 0  # completed, fully-agreed rounds

    # -- trace context -------------------------------------------------------

    def _trace_event(self, tracer, edge: str, src: int, dst: int, tag: int,
                     msg_id: int, nbytes: int) -> None:
        """One wire event: a zero-length span on the sender/receiver rank lane.

        ``category="comm.msg"`` events carry ``msg_edge`` + ``msg_id`` args;
        the Chrome exporter matches send/recv pairs into flow arrows and the
        critical-path analyzer (:mod:`repro.telemetry.distributed`) turns
        them into causal edges of the cross-rank span DAG.
        """
        now = tracer.clock.now()
        tracer.emit(
            f"{edge} {src}->{dst}", start_s=now, duration_s=0.0,
            category="comm.msg", lane=src if edge == "send" else dst,
            parent_id=tracer.current_span_id(), msg_edge=edge, msg_id=msg_id,
            src=src, dst=dst, tag=tag, bytes=nbytes)

    # -- failure state -------------------------------------------------------

    def fail_rank(self, rank: int) -> None:
        """Kill ``rank``: all further traffic touching it raises RankFailure."""
        self._check_rank(rank)
        self._failed.add(int(rank))

    @property
    def failed_ranks(self) -> frozenset[int]:
        return frozenset(self._failed)

    def alive_ranks(self) -> list[int]:
        return [r for r in range(self.size) if r not in self._failed]

    def drain(self) -> int:
        """Discard every pending message (step-retry cleanup); returns count."""
        n = sum(len(q) for q in self._queues.values())
        self._queues.clear()
        return n

    # -- point to point ------------------------------------------------------

    def send(self, payload, src: int, dst: int, tag: int = 0) -> None:
        """Enqueue a message from ``src`` to ``dst``.

        Under an active telemetry session every send records a trace event
        (and the payload travels inside a :class:`_Traced` envelope) so the
        matching recv gains a causal edge; without a session the wire is
        exactly the old untraced fast path.
        """
        self._check_rank(src)
        self._check_rank(dst)
        self._check_alive(src)
        self._check_alive(dst)
        action = "deliver"
        if self.fault_injector is not None:
            action = self.fault_injector.message_action(src, dst, tag)
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = _payload_bytes(payload)
        tracer = get_active().tracer
        msg_id = None
        if tracer.enabled:
            self._msg_seq += 1
            msg_id = self._msg_seq
            self._trace_event(tracer, "send", src, dst, tag, msg_id, nbytes)
            payload = _Traced(payload, msg_id)
        q = self._queues[(src, dst, tag)]
        if action == "drop":
            q.append(_DropMarker(src, dst, tag, msg_id))
            self.stats.dropped_messages[src] += 1
        else:
            q.append(payload)
            if action == "duplicate":
                q.append(_DUP)
                self.stats.duplicated_messages[src] += 1
        self.stats.sent_messages[src] += 1
        self.stats.sent_bytes[src] += nbytes

    def recv(self, dst: int, src: int, tag: int = 0):
        """Dequeue the next message from ``src`` to ``dst``.

        Raises :class:`~repro.errors.DeadlockError` (a ``LookupError``) if
        no matching message is pending — in a functional simulation that
        indicates a protocol bug — and
        :class:`~repro.errors.MessageDropped` when an injected drop
        consumed the message in flight.
        """
        self._check_rank(src)
        self._check_rank(dst)
        self._check_alive(src)
        self._check_alive(dst)
        q = self._queues[(src, dst, tag)]
        while q and isinstance(q[0], _DupMarker):
            q.popleft()                     # transport dedups retransmissions
        if not q:
            raise DeadlockError(
                f"deadlock: rank {dst} waiting on message from {src} tag {tag}"
            )
        head = q.popleft()
        if isinstance(head, _DropMarker):
            tel = get_active()
            if tel.enabled:
                tel.metrics.counter("comm.dropped_messages").inc()
                if head.msg_id is not None:
                    self._trace_event(tel.tracer, "drop", src, dst, tag,
                                      head.msg_id, 0)
            raise MessageDropped(src, dst, tag)
        self.stats.recv_messages[dst] += 1
        if isinstance(head, _Traced):
            tracer = get_active().tracer
            if tracer.enabled:
                self._trace_event(tracer, "recv", src, dst, tag, head.msg_id,
                                  _payload_bytes(head.payload))
            return head.payload
        return head

    def recv_reliable(self, dst: int, src: int, tag: int = 0, *,
                      resend=None, max_resends: int = 3):
        """``recv`` that survives injected drops by re-sending.

        ``resend`` is a zero-argument callable returning the payload to
        retransmit (the protocol layer knows what it sent); each
        :class:`~repro.errors.MessageDropped` triggers one retransmission,
        up to ``max_resends``.
        """
        attempts = 0
        while True:
            try:
                return self.recv(dst, src, tag)
            except MessageDropped:
                if resend is None or attempts >= max_resends:
                    raise
                attempts += 1
                self.send(resend(), src, dst, tag)

    def pending(self, dst: int, src: int, tag: int = 0) -> int:
        q = self._queues[(src, dst, tag)]
        return sum(1 for m in q if not isinstance(m, (_DropMarker, _DupMarker)))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} out of range [0, {self.size})")

    def _check_alive(self, rank: int) -> None:
        if rank in self._failed:
            raise RankFailure(rank)

    # -- collective agreement checks -----------------------------------------

    @staticmethod
    def _collective_sig(op, tag, shape, dtype) -> tuple:
        return (str(op), int(tag),
                tuple(shape) if shape is not None else None,
                str(dtype) if dtype is not None else None)

    def announce_collective(self, rank: int, op: str, tag: int,
                            shape=None, dtype=None) -> None:
        """Debug assertion: ``rank`` declares the collective it is entering.

        No-op unless the world was built with ``collective_checks=True``.
        Within one *round* (one announcement per alive rank) every
        announcement must agree on ``(op, tag, shape, dtype)``; a
        disagreeing rank — or a rank announcing a second collective while
        peers are still in the current round, i.e. a divergent schedule —
        raises :class:`~repro.errors.CollectiveMismatch` immediately.
        """
        if not self.collective_checks:
            return
        self._check_rank(rank)
        self._check_alive(rank)
        sig = self._collective_sig(op, tag, shape, dtype)
        pending = self._pending_collective
        if rank in pending:
            raise CollectiveMismatch(
                f"rank {rank} announced collective {sig[0]!r} (tag {sig[1]})"
                f" while peers {sorted(set(self.alive_ranks()) - set(pending))}"
                f" have not entered its previous collective"
                f" {pending[rank][0]!r} (tag {pending[rank][1]}) — "
                f"divergent collective schedule")
        if pending:
            ref_rank = next(iter(pending))
            ref = pending[ref_rank]
            if ref != sig:
                raise CollectiveMismatch(
                    f"collective disagreement: rank {rank} announced "
                    f"op={sig[0]!r} tag={sig[1]} shape={sig[2]} "
                    f"dtype={sig[3]}, but rank {ref_rank} announced "
                    f"op={ref[0]!r} tag={ref[1]} shape={ref[2]} "
                    f"dtype={ref[3]}")
        pending[rank] = sig
        if set(self.alive_ranks()) <= set(pending):
            pending.clear()
            self.collective_rounds += 1

    # -- simple collectives (reference implementations) -----------------------

    def exchange(self, payloads: list, pairs: list[tuple[int, int]], tag: int = 0) -> list:
        """Send payloads[src] along each (src, dst) pair; return recv list
        aligned with ``pairs``.  Helper for algorithm implementations."""
        for (src, dst), payload in zip(pairs, payloads):
            self.send(payload, src, dst, tag)
        return [self.recv(dst, src, tag) for (src, dst) in pairs]

    def _announce_all(self, op: str, tag: int, payload) -> None:
        """Driver-level collectives enter on every alive rank at once."""
        if not self.collective_checks:
            return
        shape = payload.shape if isinstance(payload, np.ndarray) else None
        dtype = payload.dtype if isinstance(payload, np.ndarray) else None
        for r in self.alive_ranks():
            self.announce_collective(r, op, tag, shape, dtype)

    def gather(self, values: list, root: int = 0, tag: int = 1000) -> list:
        """Reference gather: every rank sends its value to root."""
        if len(values) != self.size:
            raise ValueError("need one value per rank")
        self._announce_all("gather", tag, values[root])
        for r in range(self.size):
            if r != root:
                self.send(values[r], r, root, tag)
        out = []
        for r in range(self.size):
            out.append(values[r] if r == root else self.recv(root, r, tag))
        return out

    def broadcast(self, value, root: int = 0, tag: int = 1001) -> list:
        """Reference broadcast: root sends to every other rank."""
        self._announce_all("broadcast", tag, value)
        for r in range(self.size):
            if r != root:
                self.send(value, root, r, tag)
        return [value if r == root else self.recv(r, root, tag) for r in range(self.size)]
