"""Execution timelines for gradient exchanges (the Horovod-timeline analogue).

Horovod ships a Chrome-trace timeline that the paper's team used to find the
negotiation bottleneck.  This module reconstructs the same artifact from our
simulated exchange: per tensor, a NEGOTIATE phase (readiness to go-message)
followed by a fused ALLREDUCE phase, serialized into the Chrome
``chrome://tracing`` JSON event format so it can be inspected with standard
tools.
"""
from __future__ import annotations

import json
from dataclasses import dataclass

from .coordinator import NegotiationResult
from .horovod import FusionPlan

__all__ = ["TimelineEvent", "build_timeline", "chrome_trace_records",
           "to_chrome_trace"]


@dataclass(frozen=True)
class TimelineEvent:
    """One phase of one tensor's journey through the exchange."""

    name: str          # tensor or fusion-buffer name
    phase: str         # "negotiate" | "allreduce"
    start_us: float
    duration_us: float
    lane: int          # display row (fusion-buffer index)


def build_timeline(
    negotiation: NegotiationResult,
    fusion: FusionPlan,
    tensor_names: list[str],
    allreduce_seconds_per_byte: float = 1.0 / 10e9,
    sizes: dict[str, int] | None = None,
) -> list[TimelineEvent]:
    """Reconstruct per-tensor negotiate/all-reduce intervals.

    Negotiation intervals come from the decision times; each fusion buffer's
    all-reduce starts when its last tensor is released and previous buffer
    (if any) finished, with duration proportional to its byte volume.
    """
    if len(negotiation.order) != len(tensor_names):
        raise ValueError("negotiation order and tensor names disagree")
    decision_by_tensor = {
        t: float(negotiation.decision_times[pos])
        for pos, t in enumerate(negotiation.order)
    }
    events: list[TimelineEvent] = []
    ordered_names = [tensor_names[t] for t in negotiation.order]
    name_to_decision = {
        name: decision_by_tensor[negotiation.order[i]]
        for i, name in enumerate(ordered_names)
    }
    for name in ordered_names:
        events.append(TimelineEvent(
            name=name, phase="negotiate", start_us=0.0,
            duration_us=name_to_decision[name] * 1e6, lane=0))
    # Fusion buffers execute back-to-back after their tensors are released.
    clock = 0.0
    for lane, (group, nbytes) in enumerate(zip(fusion.groups, fusion.group_bytes)):
        ready = max(name_to_decision[n] for n in group)
        start = max(clock, ready)
        duration = nbytes * allreduce_seconds_per_byte
        events.append(TimelineEvent(
            name="+".join(group) if len(group) <= 3 else
            f"{group[0]}+{len(group) - 1} more",
            phase="allreduce", start_us=start * 1e6,
            duration_us=duration * 1e6, lane=lane + 1))
        clock = start + duration
    return events


def chrome_trace_records(events: list[TimelineEvent], pid: int = 0) -> list[dict]:
    """Serialize events to Chrome trace records (the single serializer).

    Both :func:`to_chrome_trace` and the telemetry Chrome exporter
    (:func:`repro.telemetry.export.chrome_trace`, which merges these events
    into the whole-run trace) go through this function, so the event format
    is defined in exactly one place.
    """
    records = []
    for ev in events:
        records.append({
            "name": ev.name,
            "cat": ev.phase,
            "ph": "X",                       # complete event
            "ts": ev.start_us,
            "dur": max(ev.duration_us, 0.01),
            "pid": pid,
            "tid": ev.lane,
            "args": {"phase": ev.phase},
        })
    return records


def to_chrome_trace(events: list[TimelineEvent], path=None) -> dict:
    """Build the Chrome tracing document; optionally write it to ``path``.

    Returns the trace dict (``json.dumps``-able as-is).  When ``path`` is
    given the document is also written there, ready for
    ``chrome://tracing`` / Perfetto.
    """
    doc = {"traceEvents": chrome_trace_records(events)}
    if path is not None:
        from pathlib import Path

        Path(path).write_text(json.dumps(doc, indent=1))
    return doc
