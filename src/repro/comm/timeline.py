"""Execution timelines for gradient exchanges (the Horovod-timeline analogue).

Horovod ships a Chrome-trace timeline that the paper's team used to find the
negotiation bottleneck.  This module reconstructs the same artifact from our
simulated exchange: per tensor, a NEGOTIATE phase (readiness to go-message)
followed by a fused ALLREDUCE phase, serialized into the Chrome
``chrome://tracing`` JSON event format so it can be inspected with standard
tools.
"""
from __future__ import annotations

import json
from dataclasses import dataclass

from .coordinator import NegotiationResult
from .horovod import FusionPlan

__all__ = ["TimelineEvent", "build_timeline", "chrome_trace_records",
           "to_chrome_trace", "merge_chrome_traces"]


@dataclass(frozen=True)
class TimelineEvent:
    """One phase of one tensor's journey through the exchange."""

    name: str          # tensor or fusion-buffer name
    phase: str         # "negotiate" | "allreduce"
    start_us: float
    duration_us: float
    lane: int          # display row (fusion-buffer index)


def build_timeline(
    negotiation: NegotiationResult,
    fusion: FusionPlan,
    tensor_names: list[str],
    allreduce_seconds_per_byte: float = 1.0 / 10e9,
    sizes: dict[str, int] | None = None,
) -> list[TimelineEvent]:
    """Reconstruct per-tensor negotiate/all-reduce intervals.

    Negotiation intervals come from the decision times; each fusion buffer's
    all-reduce starts when its last tensor is released and previous buffer
    (if any) finished, with duration proportional to its byte volume.
    """
    if len(negotiation.order) != len(tensor_names):
        raise ValueError("negotiation order and tensor names disagree")
    decision_by_tensor = {
        t: float(negotiation.decision_times[pos])
        for pos, t in enumerate(negotiation.order)
    }
    events: list[TimelineEvent] = []
    ordered_names = [tensor_names[t] for t in negotiation.order]
    name_to_decision = {
        name: decision_by_tensor[negotiation.order[i]]
        for i, name in enumerate(ordered_names)
    }
    for name in ordered_names:
        events.append(TimelineEvent(
            name=name, phase="negotiate", start_us=0.0,
            duration_us=name_to_decision[name] * 1e6, lane=0))
    # Fusion buffers execute back-to-back after their tensors are released.
    clock = 0.0
    for lane, (group, nbytes) in enumerate(zip(fusion.groups, fusion.group_bytes)):
        ready = max(name_to_decision[n] for n in group)
        start = max(clock, ready)
        duration = nbytes * allreduce_seconds_per_byte
        events.append(TimelineEvent(
            name="+".join(group) if len(group) <= 3 else
            f"{group[0]}+{len(group) - 1} more",
            phase="allreduce", start_us=start * 1e6,
            duration_us=duration * 1e6, lane=lane + 1))
        clock = start + duration
    return events


def _lane_name(lane: int) -> str:
    """Stable display name for a timeline lane.

    Lane 0 is the negotiation row; lane ``n`` (n >= 1) is fusion buffer
    ``n - 1``'s all-reduce row.  Names depend only on the lane index, so
    repeated :func:`build_timeline` calls serialize identically.
    """
    return "negotiate" if lane == 0 else f"allreduce-{lane - 1}"


def chrome_trace_records(events: list[TimelineEvent], pid: int = 0, *,
                         seen_meta: set | None = None,
                         process_name: str | None = None,
                         thread_names: dict[int, str] | None = None) -> list[dict]:
    """Serialize events to Chrome trace records (the single serializer).

    Both :func:`to_chrome_trace` and the telemetry Chrome exporter
    (:func:`repro.telemetry.export.chrome_trace`, which merges these events
    into the whole-run trace) go through this function, so the event format
    is defined in exactly one place.

    ``process_name`` (when given) and per-lane thread names are emitted as
    Chrome "M" metadata records exactly once per (pid, lane): ``seen_meta``
    carries the dedup state across calls, so merging the records of repeated
    :func:`build_timeline` runs into one document never duplicates metadata.
    ``thread_names`` overrides the default stable lane names.
    """
    if seen_meta is None:
        seen_meta = set()
    records: list[dict] = []
    if process_name is not None and ("process_name", pid) not in seen_meta:
        seen_meta.add(("process_name", pid))
        records.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": process_name}})
    for ev in events:
        if ("thread_name", pid, ev.lane) not in seen_meta:
            seen_meta.add(("thread_name", pid, ev.lane))
            name = (thread_names or {}).get(ev.lane, _lane_name(ev.lane))
            records.append({"name": "thread_name", "ph": "M", "pid": pid,
                            "tid": ev.lane, "args": {"name": name}})
        records.append({
            "name": ev.name,
            "cat": ev.phase,
            "ph": "X",                       # complete event
            "ts": ev.start_us,
            "dur": max(ev.duration_us, 0.01),
            "pid": pid,
            "tid": ev.lane,
            "args": {"phase": ev.phase},
        })
    return records


def _meta_key(rec: dict):
    """Identity of a Chrome "M" metadata record for cross-document dedup."""
    if rec.get("ph") != "M":
        return None
    return (rec.get("name"), rec.get("pid"), rec.get("tid"))


def merge_chrome_traces(*docs: dict) -> dict:
    """Concatenate Chrome trace documents, dropping duplicate metadata.

    Event records are kept verbatim and in order; "M" records (process and
    thread names) are deduplicated on (name, pid, tid) with the first
    occurrence winning, so merging per-step exports of the same exchange
    yields one clean set of process/thread rows.
    """
    merged: list[dict] = []
    seen: set = set()
    for doc in docs:
        for rec in doc.get("traceEvents", []):
            key = _meta_key(rec)
            if key is not None:
                if key in seen:
                    continue
                seen.add(key)
            merged.append(rec)
    out = {"traceEvents": merged}
    for doc in docs:
        for k, v in doc.items():
            if k != "traceEvents" and k not in out:
                out[k] = v
    return out


def to_chrome_trace(events: list[TimelineEvent], path=None,
                    process_name: str = "comm.exchange") -> dict:
    """Build the Chrome tracing document; optionally write it to ``path``.

    Returns the trace dict (``json.dumps``-able as-is).  When ``path`` is
    given the document is also written there, ready for
    ``chrome://tracing`` / Perfetto.
    """
    doc = {"traceEvents": chrome_trace_records(
        events, process_name=process_name)}
    if path is not None:
        from pathlib import Path

        Path(path).write_text(json.dumps(doc, indent=1))
    return doc
