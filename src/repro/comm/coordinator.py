"""Horovod control planes: centralized scheduler vs hierarchical tree.

Background (Section V-A3).  Each TensorFlow process schedules graph ops
independently, so different ranks become ready to all-reduce tensors in
different orders; running collectives in mismatched orders deadlocks.
Horovod's fix is a negotiation: every rank reports readiness per tensor to a
controller (rank 0), which announces a total order once all ranks are ready.
At >100 all-reduces per step and tens of thousands of ranks, rank 0 must
process millions of control messages per second — the bottleneck the paper
hit.

The paper's innovation: organize ranks into a radix-``r`` tree.  Readiness
aggregates up the tree (a node reports a tensor only when all its children
and itself are ready) and the go-announcement relays down, so **no rank
sends or receives more than r+1 messages per tensor**, independent of scale.

This module simulates both protocols over ranks that become ready in
rank-specific random orders, verifies the negotiated order is identical on
every rank, and counts per-rank control messages.
"""
from __future__ import annotations

from dataclasses import dataclass
import heapq

import numpy as np

from ..telemetry import get_active


def _record_negotiation(control_plane: str, result: "NegotiationResult") -> None:
    """Report a finished negotiation round to the active telemetry session."""
    tel = get_active()
    if not tel.enabled:
        return
    m = tel.metrics
    m.counter("comm.negotiation_rounds", control_plane=control_plane).inc()
    m.histogram("comm.controller_load",
                control_plane=control_plane).observe(result.controller_load)
    m.histogram("comm.negotiation_messages",
                control_plane=control_plane).observe(
        float(result.messages_sent.sum() + result.messages_received.sum()))

__all__ = [
    "ReadinessSchedule",
    "NegotiationResult",
    "centralized_negotiation",
    "hierarchical_negotiation",
    "tree_children",
    "tree_parent",
]


@dataclass
class ReadinessSchedule:
    """Per-rank readiness times for each tensor.

    ``times[rank][tensor]`` is the simulation time at which that rank's
    backward pass produced that tensor's gradient.  Random per-rank orderings
    model TensorFlow's independent dynamic scheduling.
    """

    times: np.ndarray  # (ranks, tensors) float

    @staticmethod
    def random(ranks: int, tensors: int, seed: int = 0,
               mean_gap: float = 1.0, jitter: float = 0.5) -> "ReadinessSchedule":
        rng = np.random.default_rng(seed)
        base = np.cumsum(rng.exponential(mean_gap, size=tensors))
        # Per-rank jitter makes tensors become ready in rank-specific orders,
        # the condition that forces Horovod's negotiation in the first place.
        noise = rng.normal(0.0, jitter * mean_gap, size=(ranks, tensors))
        return ReadinessSchedule(np.maximum(base[None, :] + noise, 0.0))

    @property
    def ranks(self) -> int:
        return self.times.shape[0]

    @property
    def tensors(self) -> int:
        return self.times.shape[1]


@dataclass
class NegotiationResult:
    """Outcome of a control-plane negotiation."""

    order: list[int]                 # agreed total order of tensor ids
    decision_times: np.ndarray       # (tensors,) time each go was issued
    messages_sent: np.ndarray        # (ranks,) control messages sent per rank
    messages_received: np.ndarray    # (ranks,) control messages received per rank

    @property
    def controller_load(self) -> int:
        """Messages through the busiest rank (the paper's bottleneck metric)."""
        total = self.messages_sent + self.messages_received
        return int(total.max())

    def per_tensor_max_messages(self) -> float:
        """Busiest rank's messages divided by the tensor count."""
        return self.controller_load / max(len(self.order), 1)


def centralized_negotiation(schedule: ReadinessSchedule,
                            hop_latency: float = 0.0) -> NegotiationResult:
    """Original Horovod: every rank reports to rank 0; rank 0 broadcasts go.

    Message counts: rank 0 receives (ranks-1) readiness messages and sends
    (ranks-1) go messages per tensor -> O(ranks * tensors) at the root.
    """
    ranks, tensors = schedule.ranks, schedule.tensors
    sent = np.zeros(ranks, dtype=np.int64)
    received = np.zeros(ranks, dtype=np.int64)
    # Readiness reaches rank 0 one hop after local readiness.
    arrival = schedule.times + hop_latency
    arrival[0] = schedule.times[0]  # rank 0's own op needs no message
    all_ready = arrival.max(axis=0)
    # Non-root ranks each send one readiness message per tensor.
    sent[1:] += tensors
    received[0] += (ranks - 1) * tensors
    # Go messages: root sends to everyone per tensor.
    sent[0] += (ranks - 1) * tensors
    received[1:] += tensors
    order = sorted(range(tensors), key=lambda t: (all_ready[t], t))
    decisions = np.sort(all_ready) + hop_latency
    result = NegotiationResult(order, decisions, sent, received)
    _record_negotiation("centralized", result)
    return result


def tree_parent(rank: int, radix: int) -> int | None:
    """Parent of ``rank`` in the radix-``r`` aggregation tree (root = 0)."""
    if rank == 0:
        return None
    return (rank - 1) // radix


def tree_children(rank: int, radix: int, size: int) -> list[int]:
    """Children of ``rank`` in the radix-``r`` tree."""
    first = rank * radix + 1
    return [c for c in range(first, min(first + radix, size))]


def hierarchical_negotiation(schedule: ReadinessSchedule, radix: int = 4,
                             hop_latency: float = 0.0) -> NegotiationResult:
    """The paper's tree control plane.

    Readiness aggregates bottom-up (each node sends one message per tensor
    to its parent after its own op and all children are ready); the root
    then relays the go message down the same tree.  Per tensor, a rank sends
    at most 1 + (#children) messages and receives at most (#children) + 1 —
    bounded by radix + 1.
    """
    if radix < 1:
        raise ValueError("radix must be >= 1")
    ranks, tensors = schedule.ranks, schedule.tensors
    sent = np.zeros(ranks, dtype=np.int64)
    received = np.zeros(ranks, dtype=np.int64)
    children = {r: tree_children(r, radix, ranks) for r in range(ranks)}
    depth_order = sorted(range(ranks), key=lambda r: -r)  # leaves first

    # Aggregated readiness time per (rank, tensor), bottom-up.
    agg = schedule.times.copy()
    for r in depth_order:
        for c in children[r]:
            agg[r] = np.maximum(agg[r], agg[c] + hop_latency)
        if r != 0:
            sent[r] += tensors
            received[tree_parent(r, radix)] += tensors
    all_ready = agg[0]

    # Go relays down: each non-leaf sends one message per tensor per child.
    max_down_hops = 0
    for r in range(ranks):
        kids = children[r]
        if kids:
            sent[r] += tensors * len(kids)
            for c in kids:
                received[c] += tensors
    # Depth of the tree for the decision latency.
    def depth(r: int) -> int:
        d = 0
        while r != 0:
            r = tree_parent(r, radix)
            d += 1
        return d

    max_down_hops = max((depth(r) for r in range(ranks)), default=0)
    order = sorted(range(tensors), key=lambda t: (all_ready[t], t))
    decisions = np.sort(all_ready) + max_down_hops * hop_latency
    result = NegotiationResult(order, decisions, sent, received)
    _record_negotiation("hierarchical", result)
    return result
