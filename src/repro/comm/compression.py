"""Gradient compression: top-k sparsification and int8 quantization.

Section VIII-B: "compression techniques can be used at the expense of
already heavily utilized main processors" to relieve the data plane.  This
module implements the standard recipes the paper alludes to:

* **top-k sparsification** — per tensor, keep only the k largest-magnitude
  entries (indices + values), shrinking the all-reduce volume by ~C/k;
* **int8 quantization** — per tensor, linear symmetric quantization to one
  byte per element plus a float scale (4x volume saving on fp32);
* **error feedback** — whatever a compressor drops (the residual) is
  accumulated locally and added to the next step's gradient, which is what
  keeps lossy-compressed SGD convergent (Stich et al.).  Residual state is
  exportable (:meth:`~_ErrorFeedbackCompressor.state`) so it can ride
  checkpoints and survive elastic shrink;
* gather-style exchanges of the compressed payloads over the functional
  wire, with byte accounting so the bandwidth saving is measurable.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simmpi import World

__all__ = [
    "TopKCompressor",
    "Int8Compressor",
    "SparseGradient",
    "QuantizedGradient",
    "make_compressor",
    "sparse_allreduce",
    "quantized_allreduce",
]


@dataclass
class SparseGradient:
    """A compressed tensor: flat indices + values + original shape."""

    indices: np.ndarray   # int64 flat indices, sorted
    values: np.ndarray    # float32 values at those indices
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    def densify(self) -> np.ndarray:
        out = np.zeros(int(np.prod(self.shape)), dtype=np.float32)
        out[self.indices] = self.values
        return out.reshape(self.shape)


class _ErrorFeedbackCompressor:
    """Shared residual bookkeeping for lossy gradient compressors.

    Residuals are keyed by tensor name and are plain float32 arrays, so the
    whole compressor state serializes as an array dict — exactly what the
    checkpoint layer stores (see ``DistributedTrainer.comm_state``).
    """

    kind = "base"

    def __init__(self):
        self._residual: dict[str, np.ndarray] = {}

    def residual_norm(self, name: str) -> float:
        r = self._residual.get(name)
        return float(np.linalg.norm(r)) if r is not None else 0.0

    def reset(self) -> None:
        self._residual.clear()

    def state(self) -> dict[str, np.ndarray]:
        """Copy of the error-feedback residuals, keyed by tensor name."""
        return {k: v.copy() for k, v in self._residual.items()}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the residuals (e.g. after a checkpoint restore)."""
        self._residual = {k: np.asarray(v, dtype=np.float32).copy()
                          for k, v in state.items()}


class TopKCompressor(_ErrorFeedbackCompressor):
    """Per-tensor top-k compression with local error feedback."""

    kind = "topk"

    def __init__(self, ratio: float = 0.01):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
        super().__init__()
        self.ratio = float(ratio)

    def compress(self, name: str, grad: np.ndarray) -> SparseGradient:
        """Compress ``grad`` (plus carried residual); store the new residual."""
        g = np.asarray(grad, dtype=np.float32)
        flat = g.ravel().copy()
        if name in self._residual:
            flat += self._residual[name]
        k = max(int(round(self.ratio * flat.size)), 1)
        if k >= flat.size:
            idx = np.arange(flat.size)
        else:
            idx = np.argpartition(np.abs(flat), -k)[-k:]
            idx.sort()
        values = flat[idx].copy()
        residual = flat
        residual[idx] = 0.0
        self._residual[name] = residual
        return SparseGradient(idx.astype(np.int64), values, g.shape)


@dataclass
class QuantizedGradient:
    """A linearly quantized tensor: int8 codes + one float scale."""

    q: np.ndarray         # int8 codes
    scale: float          # dequantized value = q * scale
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return self.q.nbytes + 4  # codes + the float32 scale

    def densify(self) -> np.ndarray:
        return (self.q.astype(np.float32) * np.float32(self.scale)).reshape(self.shape)


class Int8Compressor(_ErrorFeedbackCompressor):
    """Symmetric linear int8 quantization with local error feedback."""

    kind = "int8"

    def compress(self, name: str, grad: np.ndarray) -> QuantizedGradient:
        """Quantize ``grad`` (plus carried residual); store the new residual."""
        g = np.asarray(grad, dtype=np.float32)
        flat = g.ravel().copy()
        if name in self._residual:
            flat += self._residual[name]
        peak = float(np.abs(flat).max()) if flat.size else 0.0
        scale = peak / 127.0 if peak > 0.0 else 1.0
        q = np.clip(np.rint(flat / np.float32(scale)), -127, 127).astype(np.int8)
        self._residual[name] = flat - q.astype(np.float32) * np.float32(scale)
        return QuantizedGradient(q, scale, g.shape)


def make_compressor(kind: str, ratio: float = 0.01) -> _ErrorFeedbackCompressor:
    """Build a compressor by kind (``"topk"`` or ``"int8"``)."""
    if kind == "topk":
        return TopKCompressor(ratio)
    if kind == "int8":
        return Int8Compressor()
    raise ValueError(f"unknown compressor kind {kind!r}; expected 'topk' or 'int8'")


def sparse_allreduce(
    world: World,
    sparse_grads: list[SparseGradient],
    average: bool = True,
    tag: int = 700,
) -> list[np.ndarray]:
    """All-reduce sparse gradients: gather payloads, sum densified, share.

    Sparse payloads cannot ride a ring reduce-scatter (indices differ per
    rank), so the exchange is an all-gather of (indices, values) — still a
    ~C/k volume saving when k is small.  Returns the dense averaged gradient
    on every rank.
    """
    n = world.size
    if len(sparse_grads) != n:
        raise ValueError(f"need {n} sparse gradients, got {len(sparse_grads)}")
    shape = sparse_grads[0].shape
    for i, s in enumerate(sparse_grads):
        if s.shape != shape:
            raise ValueError(f"rank {i} shape {s.shape} != {shape}")
    # All-gather: every rank sends its payload to every other rank.
    for src in range(n):
        payload_idx = sparse_grads[src].indices
        payload_val = sparse_grads[src].values
        for dst in range(n):
            if dst != src:
                world.send(payload_idx, src, dst, tag)
                world.send(payload_val, src, dst, tag + 1)
    results = []
    size = int(np.prod(shape))
    for dst in range(n):
        # Accumulate in canonical src order so every rank performs the
        # *same* float additions — replicas must stay bit-identical.
        total = np.zeros(size, dtype=np.float32)
        for src in range(n):
            if src == dst:
                idx = sparse_grads[dst].indices
                val = sparse_grads[dst].values
            else:
                idx = world.recv(dst, src, tag)
                val = world.recv(dst, src, tag + 1)
            np.add.at(total, idx, val)
        if average:
            total /= n
        results.append(total.reshape(shape))
    return results


def quantized_allreduce(
    world: World,
    quant_grads: list[QuantizedGradient],
    average: bool = True,
    tag: int = 720,
) -> list[np.ndarray]:
    """All-reduce quantized gradients: gather codes + scales, sum dequantized.

    Per-rank scales differ, so codes cannot be summed directly; the exchange
    is an all-gather of (codes, scale) pairs — still a ~4x volume saving on
    fp32 payloads.  Returns the dense averaged gradient on every rank.
    """
    n = world.size
    if len(quant_grads) != n:
        raise ValueError(f"need {n} quantized gradients, got {len(quant_grads)}")
    shape = quant_grads[0].shape
    for i, qg in enumerate(quant_grads):
        if qg.shape != shape:
            raise ValueError(f"rank {i} shape {qg.shape} != {shape}")
    for src in range(n):
        payload_q = quant_grads[src].q
        payload_s = np.array([quant_grads[src].scale], dtype=np.float32)
        for dst in range(n):
            if dst != src:
                world.send(payload_q, src, dst, tag)
                world.send(payload_s, src, dst, tag + 1)
    results = []
    for dst in range(n):
        # Accumulate in canonical src order so every rank performs the
        # *same* float additions — replicas must stay bit-identical.
        total = np.zeros(int(np.prod(shape)), dtype=np.float32)
        for src in range(n):
            if src == dst:
                q, scale = quant_grads[dst].q, np.float32(quant_grads[dst].scale)
            else:
                q = world.recv(dst, src, tag)
                scale = np.float32(world.recv(dst, src, tag + 1)[0])
            total += q.astype(np.float32) * scale
        if average:
            total /= n
        results.append(total.reshape(shape))
    return results
