"""Gradient compression: top-k sparsification with error feedback.

Section VIII-B: "compression techniques can be used at the expense of
already heavily utilized main processors" to relieve the data plane.  This
module implements the standard recipe the paper alludes to:

* **top-k sparsification** — per tensor, keep only the k largest-magnitude
  entries (indices + values), shrinking the all-reduce volume by ~C/k;
* **error feedback** — the dropped residual is accumulated locally and
  added to the next step's gradient, which is what keeps sparsified SGD
  convergent (Stich et al.);
* a gather-style exchange of the sparse payloads over the functional wire,
  with byte accounting so the bandwidth saving is measurable.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simmpi import World

__all__ = ["TopKCompressor", "SparseGradient", "sparse_allreduce"]


@dataclass
class SparseGradient:
    """A compressed tensor: flat indices + values + original shape."""

    indices: np.ndarray   # int64 flat indices, sorted
    values: np.ndarray    # float32 values at those indices
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    def densify(self) -> np.ndarray:
        out = np.zeros(int(np.prod(self.shape)), dtype=np.float32)
        out[self.indices] = self.values
        return out.reshape(self.shape)


class TopKCompressor:
    """Per-tensor top-k compression with local error feedback."""

    def __init__(self, ratio: float = 0.01):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)
        self._residual: dict[str, np.ndarray] = {}

    def compress(self, name: str, grad: np.ndarray) -> SparseGradient:
        """Compress ``grad`` (plus carried residual); store the new residual."""
        g = np.asarray(grad, dtype=np.float32)
        flat = g.ravel().copy()
        if name in self._residual:
            flat += self._residual[name]
        k = max(int(round(self.ratio * flat.size)), 1)
        if k >= flat.size:
            idx = np.arange(flat.size)
        else:
            idx = np.argpartition(np.abs(flat), -k)[-k:]
            idx.sort()
        values = flat[idx].copy()
        residual = flat
        residual[idx] = 0.0
        self._residual[name] = residual
        return SparseGradient(idx.astype(np.int64), values, g.shape)

    def residual_norm(self, name: str) -> float:
        r = self._residual.get(name)
        return float(np.linalg.norm(r)) if r is not None else 0.0

    def reset(self) -> None:
        self._residual.clear()


def sparse_allreduce(
    world: World,
    sparse_grads: list[SparseGradient],
    average: bool = True,
    tag: int = 700,
) -> list[np.ndarray]:
    """All-reduce sparse gradients: gather payloads, sum densified, share.

    Sparse payloads cannot ride a ring reduce-scatter (indices differ per
    rank), so the exchange is an all-gather of (indices, values) — still a
    ~C/k volume saving when k is small.  Returns the dense averaged gradient
    on every rank.
    """
    n = world.size
    if len(sparse_grads) != n:
        raise ValueError(f"need {n} sparse gradients, got {len(sparse_grads)}")
    shape = sparse_grads[0].shape
    for i, s in enumerate(sparse_grads):
        if s.shape != shape:
            raise ValueError(f"rank {i} shape {s.shape} != {shape}")
    # All-gather: every rank sends its payload to every other rank.
    for src in range(n):
        payload_idx = sparse_grads[src].indices
        payload_val = sparse_grads[src].values
        for dst in range(n):
            if dst != src:
                world.send(payload_idx, src, dst, tag)
                world.send(payload_val, src, dst, tag + 1)
    results = []
    size = int(np.prod(shape))
    for dst in range(n):
        # Accumulate in canonical src order so every rank performs the
        # *same* float additions — replicas must stay bit-identical.
        total = np.zeros(size, dtype=np.float32)
        for src in range(n):
            if src == dst:
                idx = sparse_grads[dst].indices
                val = sparse_grads[dst].values
            else:
                idx = world.recv(dst, src, tag)
                val = world.recv(dst, src, tag + 1)
            np.add.at(total, idx, val)
        if average:
            total /= n
        results.append(total.reshape(shape))
    return results
