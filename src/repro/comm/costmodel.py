"""Analytic latency/bandwidth cost models for the all-reduce algorithms.

These are the standard alpha-beta (Hockney) models; the weak-scaling
performance model (:mod:`repro.perf.scaling`) uses them to estimate the
exposed communication time per training step on Summit and Piz Daint.

Conventions: ``alpha`` is per-message latency in seconds, ``bandwidth`` in
bytes/second, ``volume`` in bytes.
"""
from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

__all__ = [
    "Link",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "hierarchical_allreduce_time",
    "centralized_control_time",
    "hierarchical_control_time",
]


@dataclass(frozen=True)
class Link:
    """One communication channel."""

    alpha: float        # latency per message, s
    bandwidth: float    # bytes per second

    def transfer_time(self, volume: float) -> float:
        return self.alpha + volume / self.bandwidth


def ring_allreduce_time(n: int, volume: float, link: Link) -> float:
    """Systolic ring (NCCL): 2(n-1) steps, each moving V/n bytes.

    Bandwidth-optimal (2 (n-1)/n V bytes per rank) but latency grows
    linearly with n.
    """
    if n <= 1:
        return 0.0
    steps = 2 * (n - 1)
    return steps * link.alpha + 2.0 * (n - 1) / n * volume / link.bandwidth


def tree_allreduce_time(n: int, volume: float, link: Link) -> float:
    """Binomial tree reduce+broadcast: 2 ceil(log2 n) rounds of V bytes."""
    if n <= 1:
        return 0.0
    rounds = 2 * ceil(log2(n))
    return rounds * link.transfer_time(volume)


def hierarchical_allreduce_time(
    nodes: int,
    volume: float,
    nvlink: Link,
    interconnect: Link,
    gpus_per_node: int = 6,
    parallel_devices: int = 4,
) -> float:
    """The paper's hybrid NCCL+MPI all-reduce (Section V-A3).

    Intra-node NCCL ring over ``gpus_per_node`` GPUs, then
    ``parallel_devices`` concurrent inter-node reductions each carrying
    ``volume / parallel_devices`` (one per virtual IB device), then an
    intra-node NCCL broadcast.
    """
    t_intra_reduce = ring_allreduce_time(gpus_per_node, volume, nvlink)
    t_inter = tree_allreduce_time(nodes, volume / parallel_devices, interconnect)
    # Broadcast of the final result inside the node: one ring pass.
    t_intra_bcast = (gpus_per_node - 1) * nvlink.alpha + volume / nvlink.bandwidth
    return t_intra_reduce + t_inter + t_intra_bcast


def centralized_control_time(
    ranks: int,
    tensors_per_step: int,
    controller_msg_rate: float = 2.0e6,
) -> float:
    """Control-plane time per step with the original rank-0 scheduler.

    Rank 0 must receive one readiness and send one go message per (rank,
    tensor): ``2 * ranks * tensors`` messages serialized through one
    process.  ``controller_msg_rate`` is the messages/second one rank can
    sustain (a few million, per the paper's narrative).
    """
    messages = 2 * max(ranks - 1, 0) * tensors_per_step
    return messages / controller_msg_rate


def hierarchical_control_time(
    ranks: int,
    tensors_per_step: int,
    radix: int = 4,
    controller_msg_rate: float = 2.0e6,
    hop_latency: float = 5.0e-6,
) -> float:
    """Control-plane time per step with the radix-r aggregation tree.

    Every rank handles at most ``2 (radix + 1)`` messages per tensor and the
    readiness/go waves traverse ``2 log_r(ranks)`` hops.
    """
    if ranks <= 1:
        return 0.0
    per_rank_messages = 2 * (radix + 1) * tensors_per_step
    depth = ceil(log2(max(ranks, 2)) / log2(radix + 1))
    return per_rank_messages / controller_msg_rate + 2 * depth * hop_latency
