"""Adaptive gradient-exchange engine: select, fuse, compress, overlap.

The paper hand-picks one all-reduce (the hybrid NCCL+MPI hierarchy) and one
fusion threshold for the whole model.  Follow-up work ("Exascale Deep
Learning for Scientific Inverse Problems") shows the next step is adaptive
communication: pick the collective *per payload size*, pack small tensors
into buckets, and compress what remains.  :class:`GradientExchangeEngine`
implements that loop over the existing substrate:

* **selection** — per size-class, rank the registered
  :class:`~repro.comm.api.CommStrategy` candidates by their alpha-beta cost
  model, then refine with measured-traffic feedback (messages and bytes
  observed on the simulated wire, costed through the interconnect link —
  deterministic, no wall clocks).  Once every candidate has been tried the
  cheapest *measured* one is cached, so the settled choice is never slower
  than the worst fixed algorithm at that size;
* **bucketing** — gradients are packed in backward order into flat buckets
  (generalizing :func:`~repro.comm.horovod.fuse_order`), cutting the number
  of collectives by the mean bucket occupancy;
* **compression** — optional top-k or int8 compression with per-tensor
  error-feedback residuals (see :mod:`repro.comm.compression`); residual
  state is exportable so it survives checkpoint/restore and elastic shrink;
* **overlap** — bucket exchanges are replayed as backward-order readiness
  events on :class:`repro.hpc.events.EventQueue` against a serialized comm
  channel, generalizing the paper's gradient-lag trick; the report's
  ``overlap_fraction`` says how much comm hid under backward compute.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hpc.events import EventQueue
from ..telemetry import get_active
from .api import get_strategy
from .compression import (
    SparseGradient,
    make_compressor,
    sparse_allreduce,
)
from .costmodel import Link
from .horovod import ExchangeReport, FusionPlan, fuse_order
from .simmpi import World

__all__ = ["EngineConfig", "EngineReport", "GradientExchangeEngine"]

# Summit's fabric (hpc.specs duplicates these; kept literal to avoid a
# config dataclass depending on module import order).
_SUMMIT_NVLINK = Link(alpha=3.0e-6, bandwidth=150e9)
_SUMMIT_IB = Link(alpha=1.5e-6, bandwidth=6.25e9)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for the adaptive gradient exchange."""

    strategies: tuple[str, ...] = ("ring", "tree", "hierarchical", "naive")
    bucket_bytes: int = 4 * 1024 * 1024
    compression: str | None = None        # None, "topk", or "int8"
    compression_ratio: float = 0.01       # top-k keep fraction
    autotune: bool = True
    overlap: bool = True
    gpus_per_node: int = 6
    mpi_ranks_per_node: int = 4
    nvlink: Link = _SUMMIT_NVLINK
    interconnect: Link = _SUMMIT_IB
    # Backward-pass speed for the overlap model: seconds of compute per
    # gradient byte produced (~0.5 GB/s of gradients on a V100-class GPU).
    compute_s_per_byte: float = 2e-9

    def __post_init__(self):
        if not self.strategies:
            raise ValueError("need at least one strategy")
        for name in self.strategies:
            get_strategy(name)  # raises on unknown names
        if self.compression not in (None, "topk", "int8"):
            raise ValueError(f"unknown compression {self.compression!r}")
        if self.bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")


@dataclass
class EngineReport(ExchangeReport):
    """What one engine exchange did, beyond the base traffic numbers.

    Extends :class:`~repro.comm.horovod.ExchangeReport` so the trainer's
    telemetry path reads ``data_messages``/``data_bytes`` unchanged.
    """

    dense_bytes: int = 0                  # per-rank uncompressed payload
    wire_bytes: int = 0                   # per-rank payload actually sent
    compression_ratio: float = 1.0        # dense_bytes / wire_bytes
    overlap_fraction: float = 0.0         # comm hidden under backward compute
    decisions: dict[int, str] = field(default_factory=dict)  # bucket -> algo


class GradientExchangeEngine:
    """Per-tensor adaptive gradient exchange over the functional wire.

    One engine instance persists across steps: the autotune cache and the
    per-rank error-feedback residuals are its long-lived state.  The
    residuals are the part that must survive checkpoint/restore and elastic
    shrink — see :meth:`comm_state` / :meth:`load_comm_state` /
    :meth:`shrink`.
    """

    def __init__(self, world_size: int, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.world_size = int(world_size)
        # (world_size, size_class) -> settled strategy name.
        self._settled: dict[tuple[int, int], str] = {}
        # (world_size, size_class) -> {strategy: measured cost per byte}.
        self._measured: dict[tuple[int, int], dict[str, float]] = {}
        self._compressors = None
        if self.config.compression is not None:
            self._compressors = [
                make_compressor(self.config.compression,
                                self.config.compression_ratio)
                for _ in range(self.world_size)
            ]
        self.last_report: EngineReport | None = None

    # -- selection / autotune ------------------------------------------------

    @staticmethod
    def _size_class(nbytes: int) -> int:
        """Power-of-two size bucket: all payloads in [2^k, 2^(k+1)) share one."""
        return max(int(nbytes), 1).bit_length()

    def _strategy_params(self, name: str) -> dict:
        if name == "hierarchical":
            return dict(gpus_per_node=self.config.gpus_per_node,
                        mpi_ranks_per_node=self.config.mpi_ranks_per_node)
        return {}

    def _candidates(self, n: int, nbytes: int) -> list[str]:
        """Viable strategies for an ``n``-rank exchange, cheapest model first."""
        cfg = self.config
        out = []
        for name in cfg.strategies:
            if name == "hierarchical" and (n < cfg.gpus_per_node
                                           or n % cfg.gpus_per_node):
                continue
            out.append(name)
        if not out:
            out = [s for s in cfg.strategies if s != "hierarchical"] or ["ring"]

        def modeled(name: str) -> float:
            return get_strategy(name).modeled_time(
                n, float(nbytes), nvlink=cfg.nvlink,
                interconnect=cfg.interconnect, **self._strategy_params(name))

        return sorted(out, key=modeled)

    def select(self, n: int, nbytes: int) -> str:
        """The strategy the engine would use right now for this payload."""
        key = (n, self._size_class(nbytes))
        if key in self._settled:
            return self._settled[key]
        candidates = self._candidates(n, nbytes)
        if not self.config.autotune:
            return candidates[0]
        tried = self._measured.get(key, {})
        for name in candidates:
            if name not in tried:
                return name  # next trial, in modeled-cost order
        # All tried but not settled yet (shouldn't happen; be safe).
        return min(tried, key=tried.get)

    def _record_measurement(self, n: int, nbytes: int, name: str,
                            d_messages: int, d_bytes: int) -> None:
        """Fold one bucket's observed traffic into the autotune cache.

        The measured "time" is the alpha-beta cost of the traffic actually
        seen on the wire — messages pay latency, bytes pay bandwidth —
        normalized per payload byte so buckets of different sizes within a
        size class compare fairly.  Deterministic by construction (RPR008:
        no wall clocks in library code).
        """
        if not self.config.autotune:
            return
        key = (n, self._size_class(nbytes))
        ic = self.config.interconnect
        cost = d_messages * ic.alpha + d_bytes / ic.bandwidth
        per_byte = cost / max(nbytes, 1)
        tried = self._measured.setdefault(key, {})
        prev = tried.get(name)
        tried[name] = per_byte if prev is None else min(prev, per_byte)
        candidates = self._candidates(n, nbytes)
        if key not in self._settled and all(c in tried for c in candidates):
            self._settled[key] = min(tried, key=tried.get)

    # -- compression state ---------------------------------------------------

    @property
    def compression(self) -> str | None:
        return self.config.compression

    def comm_state(self) -> dict[str, np.ndarray]:
        """Error-feedback residuals for every rank, ``rank{r}.{tensor}`` keys."""
        if self._compressors is None:
            return {}
        out: dict[str, np.ndarray] = {}
        for r, comp in enumerate(self._compressors):
            for tensor, residual in comp.state().items():
                out[f"rank{r}.{tensor}"] = residual
        return out

    def load_comm_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore residuals saved by :meth:`comm_state`."""
        if self._compressors is None:
            return
        per_rank: list[dict[str, np.ndarray]] = [dict() for _ in self._compressors]
        for key, value in state.items():
            rank_part, _, tensor = key.partition(".")
            r = int(rank_part.removeprefix("rank"))
            if r < len(per_rank):
                per_rank[r][tensor] = value
        for comp, residuals in zip(self._compressors, per_rank):
            comp.load_state(residuals)

    def shrink(self, survivors: list[int]) -> None:
        """Elastic shrink: keep only surviving ranks' compressor state.

        The autotune cache keys include the world size, so entries for the
        old size simply stop being consulted.
        """
        if self._compressors is not None:
            self._compressors = [self._compressors[r] for r in survivors]
        self.world_size = len(survivors)

    # -- the exchange itself -------------------------------------------------

    def exchange(
        self,
        world: World,
        per_rank_grads: list[dict[str, np.ndarray]],
    ) -> tuple[list[dict[str, np.ndarray]], EngineReport]:
        """Average gradients across ranks adaptively.

        Same contract as :func:`repro.comm.horovod.allreduce_gradients`:
        one ``{name: gradient}`` dict per rank in, the averaged dicts
        (identical across ranks) plus a report out.
        """
        n = world.size
        if len(per_rank_grads) != n:
            raise ValueError(f"need {n} gradient dicts, got {len(per_rank_grads)}")
        names = list(per_rank_grads[0].keys())
        for r, grads in enumerate(per_rank_grads):
            if list(grads.keys()) != names:
                raise ValueError(f"rank {r} tensor names differ from rank 0")
        if self._compressors is not None and len(self._compressors) != n:
            raise ValueError(
                f"engine sized for {len(self._compressors)} ranks, world has {n}")

        cfg = self.config
        tel = get_active()
        tracer = tel.tracer

        # Bucket in backward order: the last-registered tensor's gradient is
        # produced first during backprop, so reversed name order is the
        # readiness order the overlap model replays.
        backward_names = list(reversed(names))
        sizes = {k: int(per_rank_grads[0][k].nbytes) for k in names}
        plan = fuse_order(backward_names, sizes, cfg.bucket_bytes)
        dense_bytes = sum(sizes.values())

        before_msgs = world.stats.total_messages
        before_bytes = world.stats.total_bytes
        averaged: list[dict[str, np.ndarray]] = [dict() for _ in range(n)]
        decisions: dict[int, str] = {}
        wire_bytes = 0
        bucket_times: list[float] = []

        with tracer.span("engine.exchange", category="comm", tensors=len(names),
                         buckets=plan.num_collectives, ranks=n):
            for bucket_index, group in enumerate(plan.groups):
                group_bytes = plan.group_bytes[bucket_index]
                bucket_msgs0 = world.stats.total_messages
                bucket_bytes0 = world.stats.total_bytes
                with tracer.span("engine.bucket", category="comm",
                                 bucket=bucket_index, tensors=len(group),
                                 bytes=group_bytes):
                    if self._compressors is not None:
                        results, payload = self._exchange_compressed(
                            world, per_rank_grads, group)
                        decisions[bucket_index] = cfg.compression
                        wire_bytes += payload
                        bucket_times.append(
                            2 * (n - 1) * cfg.interconnect.transfer_time(payload))
                    else:
                        algo = self.select(n, group_bytes)
                        strategy = get_strategy(algo)
                        flat = [
                            np.concatenate(
                                [per_rank_grads[r][k].ravel() for k in group])
                            for r in range(n)
                        ]
                        results = strategy.run(
                            world, flat, average=True,
                            **self._strategy_params(algo))
                        decisions[bucket_index] = algo
                        wire_bytes += group_bytes
                        self._record_measurement(
                            n, group_bytes, algo,
                            world.stats.total_messages - bucket_msgs0,
                            world.stats.total_bytes - bucket_bytes0)
                        bucket_times.append(strategy.modeled_time(
                            n, float(group_bytes), nvlink=cfg.nvlink,
                            interconnect=cfg.interconnect,
                            **self._strategy_params(algo)))
                # Unpack the fused bucket back into named tensors.
                for r in range(n):
                    offset = 0
                    for k in group:
                        num = per_rank_grads[r][k].size
                        averaged[r][k] = (
                            results[r][offset:offset + num]
                            .reshape(per_rank_grads[r][k].shape)
                            .astype(per_rank_grads[r][k].dtype))
                        offset += num

        overlap_fraction = 0.0
        if cfg.overlap and bucket_times:
            overlap_fraction = self._overlap_fraction(
                plan, sizes, bucket_times)

        data_messages = world.stats.total_messages - before_msgs
        data_bytes = world.stats.total_bytes - before_bytes
        compression_ratio = dense_bytes / wire_bytes if wire_bytes else 1.0
        report = EngineReport(
            negotiation=None,
            fusion=plan,
            data_messages=data_messages,
            data_bytes=data_bytes,
            dense_bytes=dense_bytes,
            wire_bytes=wire_bytes,
            compression_ratio=compression_ratio,
            overlap_fraction=overlap_fraction,
            decisions=decisions,
        )
        if tel.enabled:
            m = tel.metrics
            m.counter("comm.engine.exchanges").inc()
            m.counter("comm.engine.messages").inc(data_messages)
            m.counter("comm.engine.bytes_on_wire").inc(data_bytes)
            m.counter("comm.engine.collectives").inc(plan.num_collectives)
            m.gauge("comm.engine.compression_ratio").set(compression_ratio)
            m.gauge("comm.engine.overlap_fraction").set(overlap_fraction)
        # Restore canonical key order for determinism downstream.
        averaged = [{k: g[k] for k in names} for g in averaged]
        self.last_report = report
        return averaged, report

    def _exchange_compressed(
        self,
        world: World,
        per_rank_grads: list[dict[str, np.ndarray]],
        group: list[str],
    ) -> tuple[list[np.ndarray], int]:
        """One compressed bucket exchange; returns per-rank dense results
        (flattened bucket) and the per-rank wire payload in bytes."""
        n = world.size
        offsets: dict[str, int] = {}
        cursor = 0
        for k in group:
            offsets[k] = cursor
            cursor += per_rank_grads[0][k].size
        bucket_size = cursor
        if self.config.compression == "topk":
            fused: list[SparseGradient] = []
            for r in range(n):
                comp = self._compressors[r]
                idx_parts, val_parts = [], []
                for k in group:
                    sg = comp.compress(k, per_rank_grads[r][k])
                    idx_parts.append(sg.indices + offsets[k])
                    val_parts.append(sg.values)
                fused.append(SparseGradient(
                    np.concatenate(idx_parts), np.concatenate(val_parts),
                    (bucket_size,)))
            payload = fused[0].nbytes
            results = sparse_allreduce(world, fused, average=True)
            return [res.ravel() for res in results], payload
        # int8: concatenate per-tensor codes; scales ride as one vector.
        per_rank_q: list[np.ndarray] = []
        per_rank_scales: list[np.ndarray] = []
        for r in range(n):
            comp = self._compressors[r]
            q_parts, scales = [], []
            for k in group:
                qg = comp.compress(k, per_rank_grads[r][k])
                q_parts.append(qg.q)
                scales.append(qg.scale)
            per_rank_q.append(np.concatenate(q_parts))
            per_rank_scales.append(np.array(scales, dtype=np.float32))
        payload = per_rank_q[0].nbytes + per_rank_scales[0].nbytes
        tag = 720
        for src in range(n):
            for dst in range(n):
                if dst != src:
                    world.send(per_rank_q[src], src, dst, tag)
                    world.send(per_rank_scales[src], src, dst, tag + 1)
        bounds = [offsets[k] for k in group] + [bucket_size]
        results = []
        for dst in range(n):
            # Canonical src order: every rank performs the same float adds.
            total = np.zeros(bucket_size, dtype=np.float32)
            for src in range(n):
                if src == dst:
                    q, scales = per_rank_q[dst], per_rank_scales[dst]
                else:
                    q = world.recv(dst, src, tag)
                    scales = world.recv(dst, src, tag + 1)
                for t in range(len(group)):
                    lo, hi = bounds[t], bounds[t + 1]
                    total[lo:hi] += q[lo:hi].astype(np.float32) * scales[t]
            total /= n
            results.append(total)
        return results, payload

    def _overlap_fraction(
        self,
        plan: FusionPlan,
        sizes: dict[str, int],
        bucket_times: list[float],
    ) -> float:
        """Replay the exchange on the event queue to score comm hiding.

        Backward compute emits gradients in bucket order (buckets were built
        in backward order); each bucket becomes ready when its *last* tensor
        does, then queues on a single serialized comm channel — the
        generalization of the paper's gradient-lag pipelining.  Returns the
        fraction of total comm time hidden under compute.
        """
        cfg = self.config
        q = EventQueue()
        compute_t = 0.0
        ready_times = []
        for group in plan.groups:
            for name in group:
                compute_t += sizes[name] * cfg.compute_s_per_byte
            ready_times.append(compute_t)
        total_compute = compute_t
        state = {"channel_free": 0.0}

        def launch(bucket_comm_time: float):
            def cb():
                start = max(q.now, state["channel_free"])
                state["channel_free"] = start + bucket_comm_time
            return cb

        for ready, t_comm in zip(ready_times, bucket_times):
            q.schedule_at(ready, launch(t_comm))
        q.run()
        total_comm = sum(bucket_times)
        if total_comm <= 0.0:
            return 1.0
        exposed = max(0.0, state["channel_free"] - total_compute)
        return max(0.0, min(1.0, 1.0 - exposed / total_comm))
