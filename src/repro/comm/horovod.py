"""Horovod-style synchronous gradient exchange with tensor fusion.

Combines the pieces the paper's training loop relies on:

* per-tensor readiness negotiation (control plane, either the centralized
  original or the paper's hierarchical tree);
* tensor *fusion* — consecutive negotiated tensors are packed into one
  buffer until a byte threshold, amortizing collective latency (gradient
  lag increases the batching opportunity, Section V-B4);
* the data-plane all-reduce itself, in any of the implemented algorithms.

``allreduce_gradients`` is the functional entry point used by the
distributed trainer: given each rank's gradient dict, it returns the
averaged gradients every rank would hold after the exchange, plus traffic
statistics.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..telemetry import get_active
from .api import allreduce, get_strategy
from .coordinator import (
    NegotiationResult,
    ReadinessSchedule,
    centralized_negotiation,
    hierarchical_negotiation,
)
from .simmpi import World

__all__ = ["FusionPlan", "HorovodConfig", "ExchangeReport", "allreduce_gradients", "fuse_order"]


@dataclass(frozen=True)
class HorovodConfig:
    """Knobs for the gradient exchange."""

    algorithm: str = "hierarchical"
    control_plane: str = "hierarchical"   # or "centralized"
    control_radix: int = 4
    fusion_threshold_bytes: int = 64 * 1024 * 1024
    gpus_per_node: int = 6
    mpi_ranks_per_node: int = 4

    def __post_init__(self):
        try:
            get_strategy(self.algorithm)
        except ValueError:
            raise ValueError(f"unknown algorithm {self.algorithm!r}") from None
        if self.control_plane not in ("centralized", "hierarchical"):
            raise ValueError(f"unknown control plane {self.control_plane!r}")


@dataclass
class FusionPlan:
    """Groups of tensor names reduced together in one collective."""

    groups: list[list[str]]
    group_bytes: list[int]

    @property
    def num_collectives(self) -> int:
        return len(self.groups)


def fuse_order(order: list[str], sizes: dict[str, int], threshold_bytes: int) -> FusionPlan:
    """Pack tensors (in negotiated order) into fusion buffers."""
    groups: list[list[str]] = []
    group_bytes: list[int] = []
    cur: list[str] = []
    cur_bytes = 0
    for name in order:
        nbytes = sizes[name]
        if cur and cur_bytes + nbytes > threshold_bytes:
            groups.append(cur)
            group_bytes.append(cur_bytes)
            cur, cur_bytes = [], 0
        cur.append(name)
        cur_bytes += nbytes
    if cur:
        groups.append(cur)
        group_bytes.append(cur_bytes)
    return FusionPlan(groups, group_bytes)


@dataclass
class ExchangeReport:
    """What one gradient exchange cost.

    ``negotiation``/``fusion`` are None for exchanges that bypass the
    Horovod control plane (e.g. the sparse compressed path).
    """

    negotiation: NegotiationResult | None
    fusion: FusionPlan | None
    data_messages: int
    data_bytes: int


def allreduce_gradients(
    world: World,
    per_rank_grads: list[dict[str, np.ndarray]],
    config: HorovodConfig | None = None,
    seed: int = 0,
) -> tuple[list[dict[str, np.ndarray]], ExchangeReport]:
    """Synchronously average gradients across ranks.

    Parameters
    ----------
    per_rank_grads:
        One ``{tensor_name: gradient}`` dict per rank.  All ranks must hold
        the same tensor names/shapes (they run identical model replicas).

    Returns the averaged gradient dicts (identical across ranks) and an
    :class:`ExchangeReport` describing negotiation and traffic.
    """
    cfg = config or HorovodConfig()
    n = world.size
    if len(per_rank_grads) != n:
        raise ValueError(f"need {n} gradient dicts, got {len(per_rank_grads)}")
    names = list(per_rank_grads[0].keys())
    for r, grads in enumerate(per_rank_grads):
        if list(grads.keys()) != names:
            raise ValueError(f"rank {r} tensor names differ from rank 0")

    tel = get_active()
    tracer = tel.tracer

    # Control plane: negotiate a total order over tensors.
    with tracer.span("negotiate", category="comm", tensors=len(names),
                     control_plane=cfg.control_plane):
        schedule = ReadinessSchedule.random(n, len(names), seed=seed)
        if cfg.control_plane == "centralized":
            negotiation = centralized_negotiation(schedule)
        else:
            negotiation = hierarchical_negotiation(schedule, radix=cfg.control_radix)
    ordered_names = [names[t] for t in negotiation.order]

    # Fusion: pack negotiated tensors into buffers.
    sizes = {k: per_rank_grads[0][k].nbytes for k in names}
    plan = fuse_order(ordered_names, sizes, cfg.fusion_threshold_bytes)
    if tel.enabled:
        m = tel.metrics
        m.counter("comm.fused_bytes").inc(sum(plan.group_bytes))
        m.counter("comm.collectives").inc(plan.num_collectives)
        for nbytes in plan.group_bytes:
            m.histogram("comm.fusion_buffer_bytes").observe(nbytes)

    # Data plane: one collective per fusion buffer, through the facade.
    extra = {}
    if cfg.algorithm == "hierarchical":
        extra = dict(gpus_per_node=cfg.gpus_per_node,
                     mpi_ranks_per_node=cfg.mpi_ranks_per_node)
    world.stats.reset()
    averaged: list[dict[str, np.ndarray]] = [dict() for _ in range(n)]
    for buffer_index, group in enumerate(plan.groups):
        flat_parts = []
        for r in range(n):
            flat_parts.append(
                np.concatenate([per_rank_grads[r][k].ravel() for k in group])
            )
        with tracer.span("fused_allreduce", category="comm",
                         buffer=buffer_index, tensors=len(group),
                         bytes=plan.group_bytes[buffer_index]):
            results = allreduce(world, flat_parts, strategy=cfg.algorithm,
                                average=True, **extra)
        # Unpack the fused buffer back into named tensors.
        for r in range(n):
            offset = 0
            for k in group:
                shape = per_rank_grads[r][k].shape
                num = per_rank_grads[r][k].size
                averaged[r][k] = results[r][offset : offset + num].reshape(shape).astype(
                    per_rank_grads[r][k].dtype
                )
                offset += num
    report = ExchangeReport(
        negotiation=negotiation,
        fusion=plan,
        data_messages=world.stats.total_messages,
        data_bytes=world.stats.total_bytes,
    )
    # Restore canonical key order for determinism downstream.
    averaged = [{k: g[k] for k in names} for g in averaged]
    return averaged, report
