"""Cyclone tracking across time steps.

Section VIII-A: "In the future, we will explore advanced architectures that
can consider temporal evolution of storms."  TECA itself stitches per-frame
detections into trajectories; this module implements both sides of that:

* :func:`generate_sequence` — synthetic CAM5 sequences where each cyclone is
  *advected* between 3-hourly frames (westward trade-wind steering plus a
  poleward beta drift, the climatological TC track shape) and slowly evolves
  in intensity;
* :func:`track_cyclones` — greedy nearest-neighbour stitching of per-frame
  :class:`TCCandidate` detections into :class:`Track` objects with a maximum
  per-step displacement and a minimum-lifetime filter.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .cyclones import TropicalCyclone, imprint_cyclone
from .grid import Grid
from .rivers import imprint_river
from .synthesis import ClimateSnapshot, SnapshotSynthesizer
from .teca import TCCandidate, TecaConfig, detect_cyclones

__all__ = ["Track", "advect_cyclone", "generate_sequence", "track_cyclones"]


def advect_cyclone(tc: TropicalCyclone, rng: np.random.Generator,
                   dt_hours: float = 3.0) -> TropicalCyclone:
    """One time step of storm motion and evolution.

    Climatological steering: ~4 deg/day westward in the trades with a
    ~1.5 deg/day poleward beta drift, plus stochastic wobble; intensity
    performs a bounded random walk.
    """
    days = dt_hours / 24.0
    sign = tc.hemisphere_sign
    dlon = -4.0 * days + rng.normal(0.0, 0.6 * days)
    dlat = sign * (1.5 * days + abs(rng.normal(0.0, 0.5 * days)))
    depth = float(np.clip(tc.depth_hpa * (1.0 + rng.normal(0.0, 0.05)), 8.0, 80.0))
    vmax = float(np.clip(tc.vmax * (1.0 + rng.normal(0.0, 0.04)), 12.0, 90.0))
    return replace(
        tc,
        lat=float(np.clip(tc.lat + dlat, -55.0, 55.0)),
        lon=float((tc.lon + dlon) % 360.0),
        depth_hpa=depth,
        vmax=vmax,
    )


def generate_sequence(
    grid: Grid,
    steps: int,
    seed: int = 0,
    synthesizer: SnapshotSynthesizer | None = None,
) -> tuple[list[ClimateSnapshot], list[list[TropicalCyclone]]]:
    """A temporally coherent snapshot sequence with persistent storms.

    Returns the snapshots and, per frame, the ground-truth cyclone states
    (the test oracle for the tracker).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    synth = synthesizer or SnapshotSynthesizer(grid)
    rng = np.random.default_rng(seed)
    base = synth.generate(seed)  # provides the initial storms and rivers
    storms = list(base.cyclones)
    rivers = list(base.rivers)
    snapshots: list[ClimateSnapshot] = []
    truth: list[list[TropicalCyclone]] = []
    for t in range(steps):
        # Fresh background each frame (weather noise), persistent events.
        background = synth._background(np.random.default_rng(seed * 77 + t))
        for tc in storms:
            imprint_cyclone(background, grid, tc)
        for ar in rivers:
            imprint_river(background, grid, ar)
        np.maximum(background["PRECT"], 0.0, out=background["PRECT"])
        np.maximum(background["TMQ"], 0.0, out=background["TMQ"])
        for name in background:
            background[name] = background[name].astype(np.float32)
        snapshots.append(ClimateSnapshot(grid, background, list(storms),
                                         list(rivers)))
        truth.append(list(storms))
        storms = [advect_cyclone(tc, rng) for tc in storms]
    return snapshots, truth


@dataclass
class Track:
    """One stitched cyclone trajectory."""

    frames: list[int] = field(default_factory=list)
    detections: list[TCCandidate] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return len(self.frames)

    @property
    def positions(self) -> list[tuple[float, float]]:
        return [(d.lat, d.lon) for d in self.detections]

    def displacement_deg(self, grid: Grid) -> float:
        """Total great-circle-ish track length in degrees."""
        total = 0.0
        for a, b in zip(self.detections, self.detections[1:]):
            dlat = b.lat - a.lat
            dlon = abs(b.lon - a.lon)
            dlon = min(dlon, 360.0 - dlon) * np.cos(np.deg2rad(
                np.clip((a.lat + b.lat) / 2, -80, 80)))
            total += float(np.hypot(dlat, dlon))
        return total


def _separation_deg(a: TCCandidate, b: TCCandidate) -> float:
    dlat = a.lat - b.lat
    dlon = abs(a.lon - b.lon)
    dlon = min(dlon, 360.0 - dlon) * np.cos(np.deg2rad(
        np.clip((a.lat + b.lat) / 2, -80, 80)))
    return float(np.hypot(dlat, dlon))


def track_cyclones(
    per_frame_candidates: list[list[TCCandidate]],
    max_step_deg: float = 4.0,
    min_duration: int = 2,
) -> list[Track]:
    """Stitch per-frame detections into trajectories.

    Greedy nearest-neighbour association frame to frame, capped at
    ``max_step_deg`` displacement per step (a physical storm-motion bound);
    unmatched detections start new tracks; tracks shorter than
    ``min_duration`` frames are discarded (TECA's spurious-minimum filter).
    """
    open_tracks: list[Track] = []
    finished: list[Track] = []
    for frame, candidates in enumerate(per_frame_candidates):
        unmatched = list(candidates)
        still_open: list[Track] = []
        # Match existing tracks to the closest new detection.
        pairs = []
        for ti, track in enumerate(open_tracks):
            last = track.detections[-1]
            for ci, cand in enumerate(unmatched):
                d = _separation_deg(last, cand)
                if d <= max_step_deg:
                    pairs.append((d, ti, ci))
        pairs.sort()
        taken_tracks: set[int] = set()
        taken_cands: set[int] = set()
        for d, ti, ci in pairs:
            if ti in taken_tracks or ci in taken_cands:
                continue
            open_tracks[ti].frames.append(frame)
            open_tracks[ti].detections.append(unmatched[ci])
            taken_tracks.add(ti)
            taken_cands.add(ci)
        for ti, track in enumerate(open_tracks):
            if ti in taken_tracks:
                still_open.append(track)
            else:
                finished.append(track)  # storm dissipated or was missed
        for ci, cand in enumerate(unmatched):
            if ci not in taken_cands:
                still_open.append(Track(frames=[frame], detections=[cand]))
        open_tracks = still_open
    finished.extend(open_tracks)
    return [t for t in finished if t.duration >= min_duration]
