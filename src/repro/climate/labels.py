"""Three-class segmentation labels (BG / TC / AR) and class statistics.

The paper's classes and their approximate frequencies (Section V-B1):
background ~98.2%, atmospheric river ~1.7%, tropical cyclone <0.1%.  TC
pixels take precedence over AR pixels where masks overlap.
"""
from __future__ import annotations

import numpy as np

from .floodfill import ARConfig, river_mask
from .grid import Grid
from .synthesis import ClimateSnapshot
from .teca import TecaConfig, cyclone_mask, detect_cyclones

__all__ = [
    "CLASS_BG",
    "CLASS_TC",
    "CLASS_AR",
    "NUM_CLASSES",
    "CLASS_NAMES",
    "PAPER_CLASS_FREQUENCIES",
    "make_labels",
    "class_frequencies",
]

CLASS_BG = 0
CLASS_TC = 1
CLASS_AR = 2
NUM_CLASSES = 3
CLASS_NAMES = ("BG", "TC", "AR")

#: Approximate pixel frequencies reported in Section V-B1.
PAPER_CLASS_FREQUENCIES = {"BG": 0.982, "AR": 0.017, "TC": 0.001}


def make_labels(
    snapshot: ClimateSnapshot,
    teca_config: TecaConfig | None = None,
    ar_config: ARConfig | None = None,
) -> np.ndarray:
    """Run the heuristic labeling pipeline on a snapshot -> (H, W) int8.

    Mirrors the paper's ground-truth production: TECA for TCs, then an
    IWV floodfill for ARs on the remaining pixels.
    """
    fields, grid = snapshot.fields, snapshot.grid
    candidates = detect_cyclones(fields, grid, teca_config)
    tc = cyclone_mask(fields, grid, candidates, teca_config)
    ar = river_mask(fields, grid, ar_config, exclude=tc)
    labels = np.zeros(grid.shape, dtype=np.int8)
    labels[tc] = CLASS_TC
    labels[ar] = CLASS_AR
    return labels


def class_frequencies(labels: np.ndarray, num_classes: int = NUM_CLASSES) -> np.ndarray:
    """Fraction of pixels per class over one or more label maps."""
    flat = np.asarray(labels).ravel()
    counts = np.bincount(flat, minlength=num_classes).astype(np.float64)
    return counts / max(flat.size, 1)
