"""Synthetic CAM5-like snapshot generator.

Produces 16-channel global snapshots whose statistics mimic 0.25-degree
CAM5 output closely enough that the paper's heuristic labeling pipeline
(TECA-style TC thresholds, IWV floodfill for ARs) operates unchanged:
a zonally structured climatological background, spatially correlated
weather noise, and explicit TC / AR events imprinted on top.

The generator keeps the ground-truth event geometry alongside the fields,
which lets tests verify that the *heuristic* labelers actually find the
*synthesized* events — the consistency the paper's label pipeline assumes.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .cyclones import TropicalCyclone, imprint_cyclone, sample_cyclones
from .grid import CHANNEL_NAMES, Grid
from .rivers import AtmosphericRiver, imprint_river, sample_rivers

__all__ = ["ClimateSnapshot", "SnapshotSynthesizer"]


@dataclass
class ClimateSnapshot:
    """One synthetic model output time step with ground-truth events."""

    grid: Grid
    fields: dict[str, np.ndarray]
    cyclones: list[TropicalCyclone]
    rivers: list[AtmosphericRiver]

    def to_array(self, dtype=np.float32) -> np.ndarray:
        """Stack fields in canonical channel order -> (16, H, W)."""
        return np.stack([self.fields[name] for name in CHANNEL_NAMES]).astype(dtype)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(CHANNEL_NAMES),) + self.grid.shape


def _smooth_noise(rng: np.random.Generator, shape: tuple[int, int],
                  sigma: float, amplitude: float) -> np.ndarray:
    """Spatially correlated noise with unit-calibrated amplitude."""
    raw = rng.standard_normal(shape)
    smooth = ndimage.gaussian_filter(raw, sigma=sigma, mode="wrap")
    std = smooth.std()
    if std > 0:
        smooth /= std
    return amplitude * smooth


class SnapshotSynthesizer:
    """Generates :class:`ClimateSnapshot` objects.

    Parameters
    ----------
    grid:
        Target grid (use :data:`repro.climate.grid.PAPER_GRID` for the full
        1152x768 resolution; tests use much smaller grids).
    mean_cyclones, mean_rivers:
        Poisson means for event counts per snapshot (tuned so that class
        frequencies land near the paper's ~98.2% BG / ~1.7% AR / <0.1% TC).
    noise_scale:
        Multiplier on weather-noise amplitudes (0 disables noise).
    """

    def __init__(
        self,
        grid: Grid,
        mean_cyclones: float = 3.0,
        mean_rivers: float = 1.8,
        noise_scale: float = 1.0,
    ):
        self.grid = grid
        self.mean_cyclones = float(mean_cyclones)
        self.mean_rivers = float(mean_rivers)
        self.noise_scale = float(noise_scale)

    # -- background climatology ------------------------------------------------

    def _background(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        grid = self.grid
        lat2d, lon2d = grid.meshgrid()
        latr = np.deg2rad(lat2d)
        ns = self.noise_scale
        shape = grid.shape
        # Correlation length ~ 10 degrees regardless of resolution.
        sigma = max(grid.nlat / 18.0, 1.0)

        fields: dict[str, np.ndarray] = {}
        coslat = np.cos(latr)
        # Moisture: tropics-peaked column water vapor.
        fields["TMQ"] = 38.0 * coslat**4 + 4.0 + _smooth_noise(rng, shape, sigma, 3.0 * ns)
        fields["QREFHT"] = 0.016 * coslat**4 + 0.001 + _smooth_noise(rng, shape, sigma, 0.001 * ns)
        # Temperatures: meridional gradient, cold aloft.
        fields["TS"] = 300.0 - 45.0 * np.sin(latr) ** 2 + _smooth_noise(rng, shape, sigma, 1.5 * ns)
        fields["TREFHT"] = fields["TS"] - 1.5 + _smooth_noise(rng, shape, sigma, 0.5 * ns)
        fields["T500"] = 265.0 - 25.0 * np.sin(latr) ** 2 + _smooth_noise(rng, shape, sigma, 1.0 * ns)
        fields["T200"] = 218.0 - 8.0 * np.sin(latr) ** 2 + _smooth_noise(rng, shape, sigma, 1.0 * ns)
        # Pressure: subtropical highs, polar/equatorial lows.
        fields["PSL"] = (
            101325.0
            + 600.0 * np.cos(2 * latr)            # equator/pole lows
            + 900.0 * np.cos(latr) ** 8 * np.cos(2 * np.deg2rad(lon2d))
            + _smooth_noise(rng, shape, sigma, 250.0 * ns)
        )
        fields["PS"] = fields["PSL"] - 500.0 + _smooth_noise(rng, shape, sigma, 150.0 * ns)
        # Winds: trade easterlies + mid-latitude westerly jets.
        jet = 12.0 * np.sin(2 * latr) ** 2 * np.sign(np.abs(lat2d) - 0.0)
        trades = -6.0 * coslat**6
        fields["U850"] = jet + trades + _smooth_noise(rng, shape, sigma, 3.0 * ns)
        fields["V850"] = _smooth_noise(rng, shape, sigma, 3.0 * ns)
        fields["UBOT"] = 0.7 * fields["U850"] + _smooth_noise(rng, shape, sigma, 1.5 * ns)
        fields["VBOT"] = 0.7 * fields["V850"] + _smooth_noise(rng, shape, sigma, 1.5 * ns)
        # Precipitation: ITCZ band plus noise (kept non-negative at the end).
        fields["PRECT"] = 4e-8 * coslat**8 + _smooth_noise(rng, shape, sigma, 1.5e-8 * ns)
        # Geopotential heights.
        fields["Z100"] = 16200.0 - 350.0 * np.sin(latr) ** 2 + _smooth_noise(rng, shape, sigma, 40.0 * ns)
        fields["Z200"] = 11800.0 - 450.0 * np.sin(latr) ** 2 + _smooth_noise(rng, shape, sigma, 40.0 * ns)
        fields["ZBOT"] = 60.0 + _smooth_noise(rng, shape, sigma, 4.0 * ns)
        return fields

    # -- public API --------------------------------------------------------------

    def generate(self, seed: int) -> ClimateSnapshot:
        """Generate one snapshot deterministically from a seed."""
        rng = np.random.default_rng(seed)
        fields = self._background(rng)
        cyclones = sample_cyclones(rng, self.mean_cyclones)
        rivers = sample_rivers(rng, self.mean_rivers)
        for tc in cyclones:
            imprint_cyclone(fields, self.grid, tc)
        for ar in rivers:
            imprint_river(fields, self.grid, ar)
        # Physical floors.
        np.maximum(fields["PRECT"], 0.0, out=fields["PRECT"])
        np.maximum(fields["TMQ"], 0.0, out=fields["TMQ"])
        np.maximum(fields["QREFHT"], 0.0, out=fields["QREFHT"])
        for name in CHANNEL_NAMES:
            fields[name] = fields[name].astype(np.float32)
        return ClimateSnapshot(self.grid, fields, cyclones, rivers)
