"""Dataset-scale facts from the paper, used by the I/O and staging models."""
from __future__ import annotations

from dataclasses import dataclass

from .grid import PAPER_CHANNELS, PAPER_GRID

__all__ = ["DatasetFacts", "PAPER_DATASET"]


@dataclass(frozen=True)
class DatasetFacts:
    """Size arithmetic for a one-sample-per-file climate dataset."""

    num_samples: int
    nlat: int
    nlon: int
    channels: int
    bytes_per_value: int = 4
    label_bytes_per_pixel: int = 2  # int8 label + int8-scale weight metadata

    @property
    def sample_bytes(self) -> int:
        """Bytes of one stored sample (image + label/weight planes)."""
        pixels = self.nlat * self.nlon
        return pixels * self.channels * self.bytes_per_value + pixels * self.label_bytes_per_pixel

    @property
    def total_bytes(self) -> int:
        return self.num_samples * self.sample_bytes

    @property
    def total_tb(self) -> float:
        return self.total_bytes / 1e12

    def files_for_nodes(self, nodes: int, files_per_node: int) -> int:
        """Total files staged when every node holds ``files_per_node``."""
        return nodes * files_per_node

    def replication_factor(self, nodes: int, files_per_node: int) -> float:
        """How many nodes read each file on average under naive staging.

        The paper measured ~23x at 1024 nodes with 1500 files per node
        (Section V-A1).
        """
        return nodes * files_per_node / self.num_samples


#: The paper's dataset: ~63K samples of 1152x768x16 float32, ~3.5 TB total.
PAPER_DATASET = DatasetFacts(
    num_samples=63000,
    nlat=PAPER_GRID.nlat,
    nlon=PAPER_GRID.nlon,
    channels=PAPER_CHANNELS,
)
