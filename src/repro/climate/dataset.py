"""In-memory climate segmentation dataset with paper-style splits.

The paper: "There are about 63K high-resolution samples in total, which are
split into 80% training, 10% test and 10% validation sets" (Section III-A2).
This module generates synthetic snapshots, labels them with the heuristic
pipeline, normalizes channels from training statistics, and serves sharded
batches the way a per-rank data loader would.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid
from .labels import NUM_CLASSES, make_labels
from .synthesis import SnapshotSynthesizer

__all__ = ["ChannelNormalizer", "ClimateDataset", "DatasetSplits"]


class ChannelNormalizer:
    """Per-channel standardization fit on the training split."""

    def __init__(self):
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, images: np.ndarray) -> "ChannelNormalizer":
        """``images`` is (N, C, H, W)."""
        self.mean = images.mean(axis=(0, 2, 3), dtype=np.float64).astype(np.float32)
        std = images.std(axis=(0, 2, 3), dtype=np.float64).astype(np.float32)
        self.std = np.maximum(std, 1e-6)
        return self

    def transform(self, images: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("normalizer must be fit before transform")
        return (images - self.mean[:, None, None]) / self.std[:, None, None]


@dataclass
class DatasetSplits:
    """Index partitions matching the paper's 80/10/10 protocol."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    @staticmethod
    def make(n: int, rng: np.random.Generator,
             train_frac: float = 0.8, val_frac: float = 0.1) -> "DatasetSplits":
        if not 0 < train_frac < 1 or not 0 < val_frac < 1 or train_frac + val_frac >= 1:
            raise ValueError("fractions must be in (0,1) and sum below 1")
        perm = rng.permutation(n)
        n_train = int(round(train_frac * n))
        n_val = int(round(val_frac * n))
        return DatasetSplits(
            train=perm[:n_train],
            validation=perm[n_train : n_train + n_val],
            test=perm[n_train + n_val :],
        )


@dataclass
class ClimateDataset:
    """Labeled, normalized snapshots ready for training.

    Attributes
    ----------
    images:
        (N, C, H, W) float32, channel-normalized.
    labels:
        (N, H, W) int8 class ids.
    splits:
        80/10/10 index partitions.
    """

    grid: Grid
    images: np.ndarray
    labels: np.ndarray
    splits: DatasetSplits
    normalizer: ChannelNormalizer = field(default_factory=ChannelNormalizer)
    num_classes: int = NUM_CLASSES

    @staticmethod
    def synthesize(
        grid: Grid,
        num_samples: int,
        seed: int = 0,
        channels: int | None = None,
        synthesizer: SnapshotSynthesizer | None = None,
    ) -> "ClimateDataset":
        """Generate, label, split, and normalize ``num_samples`` snapshots.

        ``channels`` optionally restricts the input variables (the paper's
        4-channel Piz Daint configuration vs all 16 on Summit, Section V-B3);
        the first ``channels`` canonical variables are kept.
        """
        synth = synthesizer or SnapshotSynthesizer(grid)
        rng = np.random.default_rng(seed)
        images = []
        labels = []
        for i in range(num_samples):
            snap = synth.generate(seed * 1_000_003 + i)
            images.append(snap.to_array())
            labels.append(make_labels(snap))
        imgs = np.stack(images)
        labs = np.stack(labels)
        if channels is not None:
            imgs = imgs[:, :channels]
        splits = DatasetSplits.make(num_samples, rng)
        ds = ClimateDataset(grid, imgs, labs, splits)
        ds.normalizer.fit(imgs[splits.train])
        ds.images = ds.normalizer.transform(imgs).astype(np.float32)
        return ds

    # -- batching -----------------------------------------------------------

    def shard_indices(self, split: np.ndarray, rank: int, world: int,
                      per_rank_cap: int | None = None) -> np.ndarray:
        """Disjoint per-rank shard of a split (the staging layout: each node
        holds its own subset of the dataset, Section V-A1)."""
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        shard = split[rank::world]
        if per_rank_cap is not None:
            shard = shard[:per_rank_cap]
        return shard

    def batches(self, indices: np.ndarray, batch_size: int,
                rng: np.random.Generator | None = None, drop_last: bool = True):
        """Yield (images, labels) minibatches; shuffled when ``rng`` given."""
        order = np.array(indices)
        if rng is not None:
            order = rng.permutation(order)
        stop = len(order) - (len(order) % batch_size if drop_last else 0)
        for start in range(0, stop, batch_size):
            sel = order[start : start + batch_size]
            if len(sel) == 0:
                continue
            yield self.images[sel], self.labels[sel]

    @property
    def channels(self) -> int:
        return self.images.shape[1]

    def __len__(self) -> int:
        return len(self.images)
