"""Equirectangular lat/lon grids for CAM5-style model output.

The paper's dataset lives on a 0.25-degree grid of 1152 x 768 (lon x lat)
points.  Synthetic data in tests and examples uses proportionally scaled
grids; :data:`PAPER_GRID` is the full-resolution geometry used by the FLOP
analysis and performance models.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid", "PAPER_GRID", "PAPER_CHANNELS", "CHANNEL_NAMES"]

#: The 16 CAM5 variables the paper trains on ("water vapor, wind,
#: precipitation, temperature, pressure, etc.", Section III-A2).  Names follow
#: CAM5 output conventions.
CHANNEL_NAMES = (
    "TMQ",      # total (vertically integrated) precipitable water, kg/m^2
    "U850",     # zonal wind at 850 hPa, m/s
    "V850",     # meridional wind at 850 hPa, m/s
    "UBOT",     # lowest-level zonal wind, m/s
    "VBOT",     # lowest-level meridional wind, m/s
    "QREFHT",   # reference-height specific humidity, kg/kg
    "PS",       # surface pressure, Pa
    "PSL",      # sea-level pressure, Pa
    "T200",     # temperature at 200 hPa, K
    "T500",     # temperature at 500 hPa, K
    "PRECT",    # total precipitation rate, m/s
    "TS",       # surface temperature, K
    "TREFHT",   # reference-height temperature, K
    "Z100",     # geopotential height at 100 hPa, m
    "Z200",     # geopotential height at 200 hPa, m
    "ZBOT",     # lowest-level geopotential height, m
)

PAPER_CHANNELS = len(CHANNEL_NAMES)


@dataclass(frozen=True)
class Grid:
    """A regular lat/lon grid.

    ``nlat`` spans [-90, 90] degrees, ``nlon`` spans [0, 360) degrees.
    Images are stored (lat, lon) = (H, W), matching the paper's 768 x 1152
    spatial tensors (H=768, W=1152).
    """

    nlat: int
    nlon: int

    def __post_init__(self):
        if self.nlat < 8 or self.nlon < 8:
            raise ValueError(f"grid too small: {self.nlat} x {self.nlon}")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nlat, self.nlon)

    @property
    def lats(self) -> np.ndarray:
        """Cell-center latitudes in degrees, south to north."""
        step = 180.0 / self.nlat
        return -90.0 + step * (np.arange(self.nlat) + 0.5)

    @property
    def lons(self) -> np.ndarray:
        """Cell-center longitudes in degrees, 0 to 360 (periodic)."""
        step = 360.0 / self.nlon
        return step * (np.arange(self.nlon) + 0.5)

    @property
    def deg_per_cell_lat(self) -> float:
        return 180.0 / self.nlat

    @property
    def deg_per_cell_lon(self) -> float:
        return 360.0 / self.nlon

    def lat_index(self, lat_deg: float) -> int:
        """Row index closest to a latitude."""
        return int(np.clip(round((lat_deg + 90.0) / self.deg_per_cell_lat - 0.5),
                           0, self.nlat - 1))

    def lon_index(self, lon_deg: float) -> int:
        """Column index closest to a longitude (wrapped to [0, 360))."""
        return int(round((lon_deg % 360.0) / self.deg_per_cell_lon - 0.5)) % self.nlon

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """(lat2d, lon2d) arrays of shape (nlat, nlon)."""
        return np.meshgrid(self.lats, self.lons, indexing="ij")

    def angular_distance_deg(self, lat0: float, lon0: float) -> np.ndarray:
        """Approximate angular distance (deg) of every cell from a point.

        Uses a cos(lat)-corrected planar metric with periodic longitude —
        adequate for the compact (<15 deg) structures we synthesize.
        """
        lat2d, lon2d = self.meshgrid()
        dlon = np.abs(lon2d - lon0)
        dlon = np.minimum(dlon, 360.0 - dlon)
        dlon = dlon * np.cos(np.deg2rad(np.clip(lat2d, -80, 80)))
        dlat = lat2d - lat0
        return np.sqrt(dlat * dlat + dlon * dlon)


#: The paper's 0.25-degree CAM5 grid: 1152 x 768 (W x H).
PAPER_GRID = Grid(nlat=768, nlon=1152)
