"""File-backed sample store (the HDF5 stand-in) with a serialization gate.

The paper's input pipeline reads one HDF5 file per sample and discovered that
"the HDF5 library used to read the climate data serializes all operations,
negating the benefit of parallel operation" (Section V-A2) — the fix was
multi*process* readers.  We mimic both facts:

* samples live one-per-file on disk (``.npz``), so staging and the input
  pipeline work with real file I/O and real file sizes;
* all reads go through a per-process :class:`SerializationGate`, an
  explicit stand-in for HDF5's global library lock.  Threads within one
  process contend on it (and the gate counts the contention); separate
  processes each have their own gate, which is exactly why the paper's
  multiprocessing fix works.
"""
from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

from .grid import CHANNEL_NAMES, Grid

__all__ = ["SerializationGate", "SampleFileStore", "GATE"]


class SerializationGate:
    """A global lock with contention accounting (models the HDF5 lock).

    Lock wait/held times are genuine thread-contention measurements, so
    the gate reads an explicit :class:`~repro.telemetry.clock.WallClock`
    (injectable for tests) rather than the session clock — simulated time
    does not advance while a thread blocks on a mutex.
    """

    def __init__(self, clock=None):
        from ..telemetry.clock import WallClock

        self._lock = threading.Lock()
        self._clock = clock if clock is not None else WallClock()
        self._held_time = 0.0
        self._wait_time = 0.0
        self._acquisitions = 0

    def __enter__(self):
        t0 = self._clock.now()
        self._lock.acquire()
        t1 = self._clock.now()
        self._wait_time += t1 - t0
        self._acquisitions += 1
        self._t_enter = t1
        return self

    def __exit__(self, *exc):
        self._held_time += self._clock.now() - self._t_enter
        self._lock.release()
        return False

    @property
    def stats(self) -> dict[str, float]:
        return {
            "acquisitions": self._acquisitions,
            "wait_time_s": self._wait_time,
            "held_time_s": self._held_time,
        }

    def reset(self) -> None:
        self._held_time = 0.0
        self._wait_time = 0.0
        self._acquisitions = 0


#: Process-wide gate: every in-process reader thread shares this, just as
#: every thread shares the one HDF5 library lock.
GATE = SerializationGate()


class SampleFileStore:
    """One-(image, label)-pair-per-file dataset directory with a manifest."""

    MANIFEST = "manifest.json"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, index: int) -> Path:
        return self.root / f"data-{index:06d}.npz"

    def write_sample(self, index: int, image: np.ndarray, labels: np.ndarray) -> Path:
        """Persist one sample; image (C,H,W) float32, labels (H,W) int8."""
        image = np.asarray(image, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int8)
        if image.ndim != 3 or labels.shape != image.shape[1:]:
            raise ValueError(f"inconsistent shapes {image.shape} / {labels.shape}")
        path = self._path(index)
        np.savez(path, image=image, labels=labels)
        return path

    def read_sample(self, index: int, gate: SerializationGate | None = None):
        """Read one sample through the serialization gate."""
        g = gate if gate is not None else GATE
        with g:
            with np.load(self._path(index)) as z:
                return z["image"].copy(), z["labels"].copy()

    def write_manifest(self, grid: Grid, count: int) -> None:
        sample_bytes = self._path(0).stat().st_size if count else 0
        manifest = {
            "count": count,
            "nlat": grid.nlat,
            "nlon": grid.nlon,
            "channels": list(CHANNEL_NAMES),
            "sample_file_bytes": sample_bytes,
        }
        (self.root / self.MANIFEST).write_text(json.dumps(manifest, indent=2))

    def read_manifest(self) -> dict:
        return json.loads((self.root / self.MANIFEST).read_text())

    def file_paths(self) -> list[Path]:
        return sorted(self.root.glob("data-*.npz"))

    def __len__(self) -> int:
        return len(self.file_paths())
