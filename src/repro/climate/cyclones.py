"""Synthetic tropical cyclones: compact warm-core vortices.

Each cyclone imprints the physically coupled signature a TECA-style detector
looks for (Section III-A2 cites TECA's multi-variate threshold criteria):

* a sea-level-pressure depression with a roughly Gaussian radial profile,
* a warm core aloft (positive T200/T500 anomaly over the center),
* cyclonic tangential winds peaking near the radius of maximum wind,
* a moist envelope (TMQ) and an intense precipitation core.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import Grid

__all__ = ["TropicalCyclone", "sample_cyclones", "imprint_cyclone"]


@dataclass(frozen=True)
class TropicalCyclone:
    """Ground-truth geometry/intensity of one synthetic TC."""

    lat: float          # center latitude, degrees
    lon: float          # center longitude, degrees
    radius_deg: float   # e-folding radius of the pressure depression
    depth_hpa: float    # central pressure deficit, hPa
    vmax: float         # peak tangential wind, m/s
    warm_core_k: float  # upper-level temperature anomaly, K

    @property
    def hemisphere_sign(self) -> float:
        """Cyclonic rotation sense: CCW north (+1), CW south (-1)."""
        return 1.0 if self.lat >= 0 else -1.0


def sample_cyclones(
    rng: np.random.Generator,
    mean_count: float = 3.0,
    min_lat: float = 8.0,
    max_lat: float = 32.0,
) -> list[TropicalCyclone]:
    """Draw a Poisson number of TCs with tropical genesis latitudes."""
    count = rng.poisson(mean_count)
    storms = []
    for _ in range(count):
        hemisphere = 1.0 if rng.random() < 0.5 else -1.0
        lat = hemisphere * rng.uniform(min_lat, max_lat)
        lon = rng.uniform(0.0, 360.0)
        radius = rng.uniform(1.5, 4.0)
        depth = rng.uniform(15.0, 60.0)
        vmax = 18.0 + depth * rng.uniform(0.5, 0.9)
        warm = rng.uniform(1.5, 5.0)
        storms.append(TropicalCyclone(lat, lon, radius, depth, vmax, warm))
    return storms


def imprint_cyclone(
    fields: dict[str, np.ndarray], grid: Grid, tc: TropicalCyclone
) -> None:
    """Add one cyclone's signature to the field dict, in place."""
    r = grid.angular_distance_deg(tc.lat, tc.lon)
    envelope = np.exp(-0.5 * (r / tc.radius_deg) ** 2)
    # Pressure depression (PSL and PS in Pa).
    depression = tc.depth_hpa * 100.0 * envelope
    fields["PSL"] -= depression
    fields["PS"] -= 0.9 * depression
    # Warm core aloft; weak cool anomaly at the surface under the eyewall.
    fields["T200"] += tc.warm_core_k * envelope
    fields["T500"] += 0.6 * tc.warm_core_k * envelope
    fields["TS"] -= 0.3 * envelope
    # Tangential wind: v(r) = vmax * (r/rm) * exp(1-r/rm) (Rankine-like),
    # projected onto zonal/meridional components.
    rm = tc.radius_deg * 0.75  # radius of maximum wind
    rr = np.maximum(r, 1e-6)
    speed = tc.vmax * (rr / rm) * np.exp(1.0 - rr / rm)
    lat2d, lon2d = grid.meshgrid()
    dlon = lon2d - tc.lon
    dlon = (dlon + 180.0) % 360.0 - 180.0
    dlon = dlon * np.cos(np.deg2rad(np.clip(lat2d, -80, 80)))
    dlat = lat2d - tc.lat
    # Unit tangential vector (CCW): (-dy, dx)/r.
    sign = tc.hemisphere_sign
    u_t = sign * (-dlat / rr) * speed
    v_t = sign * (dlon / rr) * speed
    fields["U850"] += u_t
    fields["V850"] += v_t
    fields["UBOT"] += 0.8 * u_t
    fields["VBOT"] += 0.8 * v_t
    # Moisture and precipitation core.
    fields["TMQ"] += 18.0 * envelope
    fields["QREFHT"] += 0.004 * envelope
    fields["PRECT"] += 2.5e-7 * tc.vmax * envelope
    # Upper-level height rises over the warm core; boundary layer sinks.
    fields["Z200"] += 25.0 * tc.warm_core_k * envelope
    fields["Z100"] += 12.0 * tc.warm_core_k * envelope
    fields["ZBOT"] -= 4.0 * envelope
