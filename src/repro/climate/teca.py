"""TECA-style tropical cyclone detection and masking.

The paper's TC labels come from the Toolkit for Extreme Climate Analysis
(TECA), which applies multi-variate threshold criteria: a sea-level-pressure
minimum, a warm core aloft, and high near-surface winds, restricted to
tropical latitudes.  This module reimplements that recipe on our field dict:

1. candidate detection — local PSL minima with a sufficient depression
   relative to the large-scale environment;
2. physical filters — warm-core and wind-speed criteria;
3. mask growth — a floodfill from each accepted center over pixels whose
   pressure depression stays above a fraction of the central depression,
   capped at a maximum radius.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .grid import Grid

__all__ = ["TCCandidate", "TecaConfig", "detect_cyclones", "cyclone_mask"]


@dataclass(frozen=True)
class TCCandidate:
    """One detected cyclone center."""

    lat_idx: int
    lon_idx: int
    lat: float
    lon: float
    depression_pa: float   # environment-relative PSL deficit (positive number)
    warm_core_k: float     # T500 anomaly at center
    wind_max: float        # peak 850 hPa wind within the search radius


@dataclass(frozen=True)
class TecaConfig:
    """Thresholds for the TC detector (TECA-like defaults)."""

    min_depression_pa: float = 800.0     # central pressure deficit
    min_warm_core_k: float = 0.5         # upper-level warm anomaly
    min_wind_ms: float = 15.0            # near-center wind maximum
    max_abs_lat: float = 45.0            # tropical/subtropical band
    search_radius_deg: float = 4.0       # radius for the wind criterion
    mask_radius_deg: float = 8.0         # hard cap on mask extent
    mask_depression_frac: float = 0.25   # floodfill keeps pixels above this
    environment_sigma_deg: float = 12.0  # smoothing scale for the environment


def _environment(field: np.ndarray, grid: Grid, sigma_deg: float) -> np.ndarray:
    """Large-scale environment: heavy smoothing (periodic in longitude)."""
    sigma_cells = (sigma_deg / grid.deg_per_cell_lat, sigma_deg / grid.deg_per_cell_lon)
    return ndimage.gaussian_filter(field, sigma=sigma_cells, mode=("nearest", "wrap"))


def detect_cyclones(
    fields: dict[str, np.ndarray], grid: Grid, config: TecaConfig | None = None
) -> list[TCCandidate]:
    """Find cyclone centers passing all TECA criteria."""
    cfg = config or TecaConfig()
    psl = fields["PSL"].astype(np.float64)
    env = _environment(psl, grid, cfg.environment_sigma_deg)
    anomaly = psl - env  # negative in depressions
    t500_anom = fields["T500"].astype(np.float64) - _environment(
        fields["T500"].astype(np.float64), grid, cfg.environment_sigma_deg
    )
    wind = np.hypot(fields["U850"], fields["V850"]).astype(np.float64)

    # Local minima of the anomaly field within a window ~ the search radius.
    win = max(int(cfg.search_radius_deg / grid.deg_per_cell_lat), 1) * 2 + 1
    local_min = ndimage.minimum_filter(anomaly, size=win, mode=("nearest", "wrap"))
    is_min = (anomaly == local_min) & (anomaly <= -cfg.min_depression_pa)

    lats = grid.lats
    candidates: list[TCCandidate] = []
    wind_win = win
    wind_max_near = ndimage.maximum_filter(wind, size=wind_win, mode=("nearest", "wrap"))
    for i, j in zip(*np.nonzero(is_min)):
        lat = lats[i]
        if abs(lat) > cfg.max_abs_lat:
            continue
        if t500_anom[i, j] < cfg.min_warm_core_k:
            continue
        if wind_max_near[i, j] < cfg.min_wind_ms:
            continue
        candidates.append(
            TCCandidate(
                lat_idx=int(i),
                lon_idx=int(j),
                lat=float(lat),
                lon=float(grid.lons[j]),
                depression_pa=float(-anomaly[i, j]),
                warm_core_k=float(t500_anom[i, j]),
                wind_max=float(wind_max_near[i, j]),
            )
        )
    # Deduplicate centers closer than the search radius (keep the deepest).
    candidates.sort(key=lambda c: -c.depression_pa)
    kept: list[TCCandidate] = []
    for c in candidates:
        if all(
            grid.angular_distance_deg(c.lat, c.lon)[k.lat_idx, k.lon_idx]
            > cfg.search_radius_deg
            for k in kept
        ):
            kept.append(c)
    return kept


def cyclone_mask(
    fields: dict[str, np.ndarray],
    grid: Grid,
    candidates: list[TCCandidate],
    config: TecaConfig | None = None,
) -> np.ndarray:
    """Grow a boolean TC mask around each accepted center."""
    cfg = config or TecaConfig()
    psl = fields["PSL"].astype(np.float64)
    env = _environment(psl, grid, cfg.environment_sigma_deg)
    depression = env - psl  # positive inside storms
    mask = np.zeros(grid.shape, dtype=bool)
    for c in candidates:
        keep = depression >= cfg.mask_depression_frac * c.depression_pa
        keep &= grid.angular_distance_deg(c.lat, c.lon) <= cfg.mask_radius_deg
        # Connected component containing the center only (floodfill).
        labeled, _ = ndimage.label(keep)
        comp = labeled[c.lat_idx, c.lon_idx]
        if comp != 0:
            mask |= labeled == comp
    return mask
