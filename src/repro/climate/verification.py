"""Object-based forecast verification: matching predicted storms to truth.

Pixel IoU (Section VII-D) measures mask quality; climate scientists also ask
the *object-level* question — did we find each storm? — scored with the
standard contingency metrics:

* **POD** (probability of detection) = hits / (hits + misses),
* **FAR** (false-alarm ratio) = false alarms / (hits + false alarms),
* **CSI** (critical success index) = hits / (hits + misses + false alarms).

Predicted and labeled masks are decomposed into connected components
(periodic in longitude) and matched greedily by IoU overlap.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .floodfill import connected_components_periodic
from .grid import Grid

__all__ = ["MatchResult", "match_objects", "detection_scores"]


@dataclass(frozen=True)
class MatchResult:
    """Object-level contingency counts plus the matched pairs."""

    hits: int
    misses: int
    false_alarms: int
    pairs: tuple  # ((pred_id, true_id, iou), ...)

    @property
    def pod(self) -> float:
        denom = self.hits + self.misses
        return self.hits / denom if denom else float("nan")

    @property
    def far(self) -> float:
        denom = self.hits + self.false_alarms
        return self.false_alarms / denom if denom else float("nan")

    @property
    def csi(self) -> float:
        denom = self.hits + self.misses + self.false_alarms
        return self.hits / denom if denom else float("nan")


def _component_masks(mask: np.ndarray) -> list[np.ndarray]:
    labeled, count = connected_components_periodic(mask.astype(bool))
    return [(labeled == c) for c in range(1, count + 1)]


def match_objects(pred_mask: np.ndarray, true_mask: np.ndarray,
                  min_iou: float = 0.1) -> MatchResult:
    """Greedy IoU matching of predicted to labeled connected components."""
    if pred_mask.shape != true_mask.shape:
        raise ValueError(f"shape mismatch {pred_mask.shape} vs {true_mask.shape}")
    if not 0.0 < min_iou <= 1.0:
        raise ValueError("min_iou must be in (0, 1]")
    preds = _component_masks(pred_mask)
    trues = _component_masks(true_mask)
    candidates = []
    for pi, p in enumerate(preds):
        for ti, t in enumerate(trues):
            inter = np.logical_and(p, t).sum()
            if inter == 0:
                continue
            union = np.logical_or(p, t).sum()
            iou = inter / union
            if iou >= min_iou:
                candidates.append((iou, pi, ti))
    candidates.sort(reverse=True)
    used_p: set[int] = set()
    used_t: set[int] = set()
    pairs = []
    for iou, pi, ti in candidates:
        if pi in used_p or ti in used_t:
            continue
        used_p.add(pi)
        used_t.add(ti)
        pairs.append((pi, ti, float(iou)))
    hits = len(pairs)
    return MatchResult(
        hits=hits,
        misses=len(trues) - hits,
        false_alarms=len(preds) - hits,
        pairs=tuple(pairs),
    )


def detection_scores(
    pred_labels: np.ndarray,
    true_labels: np.ndarray,
    class_id: int,
    min_iou: float = 0.1,
) -> MatchResult:
    """Object-level scores for one class over a batch of label maps.

    ``pred_labels`` / ``true_labels`` are (N, H, W) or (H, W) class-id maps;
    counts accumulate over the batch.
    """
    pred_labels = np.asarray(pred_labels)
    true_labels = np.asarray(true_labels)
    if pred_labels.shape != true_labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if pred_labels.ndim == 2:
        pred_labels = pred_labels[None]
        true_labels = true_labels[None]
    elif pred_labels.ndim != 3:
        raise ValueError("label maps must be (H, W) or (N, H, W)")
    hits = misses = fas = 0
    pairs: list = []
    for p, t in zip(pred_labels, true_labels):
        res = match_objects(p == class_id, t == class_id, min_iou=min_iou)
        hits += res.hits
        misses += res.misses
        fas += res.false_alarms
        pairs.extend(res.pairs)
    return MatchResult(hits=hits, misses=misses, false_alarms=fas,
                       pairs=tuple(pairs))
