"""Synthetic atmospheric rivers: long, narrow filaments of moisture flux.

ARs carry most of the poleward water-vapor transport; the paper's labels mark
them with an IWV-threshold floodfill (Section III-A2, citing the ARTMIP
methodology).  Our synthetic ARs are smooth poleward-arcing centerlines with
a Gaussian cross-section in total precipitable water (TMQ), plus coherent
along-axis winds and enhanced precipitation — enough structure for the
floodfill labeler to find them the same way the real pipeline does.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid

__all__ = ["AtmosphericRiver", "sample_rivers", "imprint_river"]


@dataclass(frozen=True)
class AtmosphericRiver:
    """Ground-truth geometry of one synthetic AR."""

    start_lat: float
    start_lon: float
    length_deg: float          # along-track length
    width_deg: float           # cross-track e-folding half width
    intensity: float           # peak TMQ enhancement, kg/m^2
    heading_deg: float         # initial bearing, degrees from east (CCW)
    curvature: float           # bearing drift per degree travelled
    waypoints: tuple = field(default=(), compare=False)


def sample_rivers(
    rng: np.random.Generator,
    mean_count: float = 1.8,
) -> list[AtmosphericRiver]:
    """Draw a Poisson number of ARs rooted in the subtropics."""
    count = rng.poisson(mean_count)
    rivers = []
    for _ in range(count):
        hemisphere = 1.0 if rng.random() < 0.5 else -1.0
        start_lat = hemisphere * rng.uniform(15.0, 28.0)
        start_lon = rng.uniform(0.0, 360.0)
        length = rng.uniform(25.0, 60.0)
        width = rng.uniform(1.5, 4.0)
        intensity = rng.uniform(14.0, 30.0)
        # Head generally eastward and poleward.
        heading = rng.uniform(20.0, 70.0) * hemisphere
        curvature = rng.uniform(-0.6, 0.6)
        ar = AtmosphericRiver(start_lat, start_lon, length, width, intensity,
                              heading, curvature)
        rivers.append(_with_waypoints(ar))
    return rivers


def _with_waypoints(ar: AtmosphericRiver, step_deg: float = 1.0) -> AtmosphericRiver:
    """Integrate the centerline into explicit (lat, lon) waypoints."""
    pts = []
    lat, lon = ar.start_lat, ar.start_lon
    heading = np.deg2rad(ar.heading_deg)
    travelled = 0.0
    while travelled <= ar.length_deg:
        pts.append((lat, lon % 360.0))
        lat += step_deg * np.sin(heading)
        lon += step_deg * np.cos(heading) / max(np.cos(np.deg2rad(np.clip(lat, -75, 75))), 0.2)
        heading += np.deg2rad(ar.curvature) * step_deg
        travelled += step_deg
        if abs(lat) > 62.0:
            break
    return AtmosphericRiver(ar.start_lat, ar.start_lon, ar.length_deg, ar.width_deg,
                            ar.intensity, ar.heading_deg, ar.curvature, tuple(pts))


def imprint_river(fields: dict[str, np.ndarray], grid: Grid, ar: AtmosphericRiver) -> None:
    """Add one AR's signature to the field dict, in place."""
    if not ar.waypoints:
        ar = _with_waypoints(ar)
    # Distance to the nearest centerline waypoint; dense waypoints make this
    # a good approximation of distance-to-curve.
    dist = None
    for lat, lon in ar.waypoints:
        d = grid.angular_distance_deg(lat, lon)
        dist = d if dist is None else np.minimum(dist, d)
    envelope = np.exp(-0.5 * (dist / ar.width_deg) ** 2)
    fields["TMQ"] += ar.intensity * envelope
    fields["QREFHT"] += 0.003 * envelope
    fields["PRECT"] += 1.2e-7 * ar.intensity * envelope
    # Along-axis low-level jet: approximate with the mean track bearing.
    mean_heading = np.deg2rad(ar.heading_deg + ar.curvature * ar.length_deg / 2)
    jet = 12.0 * envelope
    fields["U850"] += jet * np.cos(mean_heading)
    fields["V850"] += jet * np.sin(mean_heading)
    fields["UBOT"] += 0.6 * jet * np.cos(mean_heading)
    fields["VBOT"] += 0.6 * jet * np.sin(mean_heading)
