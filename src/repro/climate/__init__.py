"""Climate data substrate: synthetic CAM5 snapshots and heuristic labels."""
from .analytics import (
    StormStatistics,
    basin_summary,
    cell_areas_km2,
    radial_wind_profile,
    storm_statistics,
)
from .dataset import ChannelNormalizer, ClimateDataset, DatasetSplits
from .floodfill import ARConfig, connected_components_periodic, river_mask
from .grid import CHANNEL_NAMES, PAPER_CHANNELS, PAPER_GRID, Grid
from .hdf5store import GATE, SampleFileStore, SerializationGate
from .labels import (
    CLASS_AR,
    CLASS_BG,
    CLASS_NAMES,
    CLASS_TC,
    NUM_CLASSES,
    PAPER_CLASS_FREQUENCIES,
    class_frequencies,
    make_labels,
)
from .stats import PAPER_DATASET, DatasetFacts
from .synthesis import ClimateSnapshot, SnapshotSynthesizer
from .verification import MatchResult, detection_scores, match_objects
from .tracking import Track, advect_cyclone, generate_sequence, track_cyclones
from .teca import TCCandidate, TecaConfig, cyclone_mask, detect_cyclones

__all__ = [
    "Grid",
    "StormStatistics",
    "storm_statistics",
    "radial_wind_profile",
    "basin_summary",
    "cell_areas_km2",
    "Track",
    "advect_cyclone",
    "generate_sequence",
    "track_cyclones",
    "MatchResult",
    "match_objects",
    "detection_scores",
    "PAPER_GRID",
    "PAPER_CHANNELS",
    "CHANNEL_NAMES",
    "ClimateSnapshot",
    "SnapshotSynthesizer",
    "TecaConfig",
    "TCCandidate",
    "detect_cyclones",
    "cyclone_mask",
    "ARConfig",
    "river_mask",
    "connected_components_periodic",
    "CLASS_BG",
    "CLASS_TC",
    "CLASS_AR",
    "NUM_CLASSES",
    "CLASS_NAMES",
    "PAPER_CLASS_FREQUENCIES",
    "make_labels",
    "class_frequencies",
    "ClimateDataset",
    "DatasetSplits",
    "ChannelNormalizer",
    "SampleFileStore",
    "SerializationGate",
    "GATE",
    "DatasetFacts",
    "PAPER_DATASET",
]
