"""Atmospheric-river labeling: IWV threshold + floodfill + geometry filters.

The paper's AR labels come from "a floodfill algorithm ... used to create
spatial masks of ARs" (Section III-A2, citing the ARTMIP intercomparison).
The standard ARTMIP-style recipe, reimplemented here:

1. threshold the integrated water vapor (TMQ) on its anomaly relative to a
   zonal-mean climatology (ARs are moisture *anomalies*, so a fixed global
   threshold would label the whole tropics);
2. extract connected components (periodic in longitude — components crossing
   the dateline are merged with a union-find pass);
3. keep components that are long, narrow, and reach from the subtropics into
   the mid-latitudes.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .grid import Grid

__all__ = ["ARConfig", "river_mask", "connected_components_periodic"]


@dataclass(frozen=True)
class ARConfig:
    """Thresholds for the AR labeler."""

    anomaly_threshold: float = 7.0     # kg/m^2 above the zonal background
    min_length_deg: float = 15.0       # great-circle extent requirement
    min_aspect: float = 1.6            # length / width elongation requirement
    min_area_cells: int = 12           # discard specks
    min_reach_lat: float = 24.0        # must reach poleward of this latitude
    max_abs_lat: float = 65.0          # ignore polar artifacts
    exclusion_lat: float = 5.0         # deep tropics excluded (ITCZ moisture)


def connected_components_periodic(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Connected components with wraparound in the longitude (last) axis.

    scipy's ``ndimage.label`` has no periodic mode; we label normally, then
    merge labels that touch across the seam with a small union-find.
    """
    labeled, count = ndimage.label(mask)
    if count == 0:
        return labeled, 0
    parent = list(range(count + 1))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    left = labeled[:, 0]
    right = labeled[:, -1]
    for a, b in zip(left, right):
        if a and b:
            union(int(a), int(b))
    # Compact the label space.
    remap = np.zeros(count + 1, dtype=labeled.dtype)
    next_id = 0
    for lbl in range(1, count + 1):
        root = find(lbl)
        if remap[root] == 0:
            next_id += 1
            remap[root] = next_id
        remap[lbl] = remap[root]
    return remap[labeled], next_id


def _zonal_climatology(tmq: np.ndarray, grid: Grid, sigma_deg: float = 8.0) -> np.ndarray:
    """Smooth zonal-mean moisture background, broadcast over longitude."""
    zonal = np.median(tmq, axis=1)
    sigma = max(sigma_deg / grid.deg_per_cell_lat, 1.0)
    zonal = ndimage.gaussian_filter1d(zonal, sigma=sigma, mode="nearest")
    return np.broadcast_to(zonal[:, None], tmq.shape)


def _component_geometry(rows: np.ndarray, cols: np.ndarray, grid: Grid):
    """(length_deg, width_deg, max_abs_lat, min_abs_lat) of one component.

    Longitudes are unwrapped around the component's circular mean so that
    dateline-crossing ARs measure correctly.
    """
    lats = grid.lats[rows]
    lons = grid.lons[cols]
    ang = np.deg2rad(lons)
    mean_ang = np.arctan2(np.sin(ang).mean(), np.cos(ang).mean())
    dlon = np.rad2deg(np.angle(np.exp(1j * (ang - mean_ang))))
    x = dlon * np.cos(np.deg2rad(np.clip(lats, -80, 80)))
    y = lats - lats.mean()
    pts = np.stack([x, y])
    cov = np.cov(pts) if pts.shape[1] > 1 else np.eye(2)
    evals = np.sort(np.linalg.eigvalsh(cov))[::-1]
    evals = np.maximum(evals, 1e-9)
    # 4-sigma extents approximate the footprint of a filament.
    length = 4.0 * np.sqrt(evals[0])
    width = 4.0 * np.sqrt(evals[1])
    return length, width, float(np.abs(lats).max()), float(np.abs(lats).min())


def river_mask(
    fields: dict[str, np.ndarray],
    grid: Grid,
    config: ARConfig | None = None,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean AR mask from the TMQ field.

    ``exclude`` marks pixels already claimed by another class (TCs take
    precedence in the paper's 3-class labels).
    """
    cfg = config or ARConfig()
    tmq = fields["TMQ"].astype(np.float64)
    background = _zonal_climatology(tmq, grid)
    wet = tmq - background >= cfg.anomaly_threshold
    lat2d, _ = grid.meshgrid()
    wet &= np.abs(lat2d) >= cfg.exclusion_lat
    wet &= np.abs(lat2d) <= cfg.max_abs_lat
    if exclude is not None:
        wet &= ~exclude
    labeled, count = connected_components_periodic(wet)
    out = np.zeros(grid.shape, dtype=bool)
    for comp in range(1, count + 1):
        rows, cols = np.nonzero(labeled == comp)
        if rows.size < cfg.min_area_cells:
            continue
        length, width, reach, _ = _component_geometry(rows, cols, grid)
        if length < cfg.min_length_deg:
            continue
        if width > 0 and length / max(width, 1e-9) < cfg.min_aspect:
            continue
        if reach < cfg.min_reach_lat:
            continue
        out[rows, cols] = True
    return out
