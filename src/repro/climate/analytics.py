"""Storm-level climate analytics from segmentation masks.

Section VIII-A, on what pixel-level masks unlock: "we can now compute
conditional precipitation, wind velocity profiles and power dissipation
indices for individual storm systems."  This module computes exactly those
quantities from a (predicted or labeled) mask and the physical fields:

* per-storm **conditional precipitation** — mean/max PRECT inside the mask;
* **wind velocity profiles** — azimuthally averaged wind speed vs radius
  around a storm center;
* the **power dissipation index** (PDI), the integral of the cube of the
  surface wind speed over the storm footprint (Emanuel's damage proxy);
* area-weighted footprints (cos-latitude cell areas on the sphere).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .grid import Grid
from .labels import CLASS_TC

__all__ = ["StormStatistics", "cell_areas_km2", "storm_statistics",
           "radial_wind_profile", "basin_summary"]

EARTH_RADIUS_KM = 6371.0


def cell_areas_km2(grid: Grid) -> np.ndarray:
    """(H, W) grid-cell areas in km^2 (equirectangular, cos-lat weighted)."""
    dlat = np.deg2rad(grid.deg_per_cell_lat)
    dlon = np.deg2rad(grid.deg_per_cell_lon)
    coslat = np.cos(np.deg2rad(grid.lats))
    row_area = EARTH_RADIUS_KM**2 * dlat * dlon * coslat
    return np.broadcast_to(row_area[:, None], grid.shape).copy()


@dataclass(frozen=True)
class StormStatistics:
    """Integrated quantities for one storm footprint."""

    label_id: int
    area_km2: float
    center_lat: float
    center_lon: float
    min_psl_hpa: float
    max_wind_ms: float
    mean_conditional_precip: float   # mean PRECT inside the mask, m/s
    max_precip: float
    power_dissipation_index: float   # sum of v^3 * area, m^3 s^-3 km^2


def storm_statistics(
    fields: dict[str, np.ndarray],
    mask: np.ndarray,
    grid: Grid,
    min_area_cells: int = 3,
) -> list[StormStatistics]:
    """Per-connected-component storm statistics from a boolean mask."""
    if mask.shape != grid.shape:
        raise ValueError(f"mask shape {mask.shape} != grid {grid.shape}")
    labeled, count = ndimage.label(mask)
    areas = cell_areas_km2(grid)
    wind = np.hypot(fields["UBOT"], fields["VBOT"])
    psl = fields["PSL"]
    prect = fields["PRECT"]
    lats2d, lons2d = grid.meshgrid()
    out: list[StormStatistics] = []
    for comp in range(1, count + 1):
        sel = labeled == comp
        if sel.sum() < min_area_cells:
            continue
        w = areas[sel]
        w_norm = w / w.sum()
        # Pressure-minimum cell defines the center.
        flat_idx = np.flatnonzero(sel)
        center = flat_idx[np.argmin(psl[sel])]
        ci, cj = np.unravel_index(center, grid.shape)
        out.append(StormStatistics(
            label_id=comp,
            area_km2=float(w.sum()),
            center_lat=float(lats2d[ci, cj]),
            center_lon=float(lons2d[ci, cj]),
            min_psl_hpa=float(psl[sel].min() / 100.0),
            max_wind_ms=float(wind[sel].max()),
            mean_conditional_precip=float((prect[sel] * w_norm).sum()),
            max_precip=float(prect[sel].max()),
            power_dissipation_index=float((wind[sel] ** 3 * w).sum()),
        ))
    return out


def radial_wind_profile(
    fields: dict[str, np.ndarray],
    grid: Grid,
    center_lat: float,
    center_lon: float,
    max_radius_deg: float = 10.0,
    bins: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged wind speed vs radius around a storm center.

    Returns (bin centers in degrees, mean wind speed per bin); empty bins
    are NaN.
    """
    if bins < 1 or max_radius_deg <= 0:
        raise ValueError("need bins >= 1 and positive max radius")
    dist = grid.angular_distance_deg(center_lat, center_lon)
    wind = np.hypot(fields["U850"], fields["V850"])
    edges = np.linspace(0.0, max_radius_deg, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    profile = np.full(bins, np.nan)
    for b in range(bins):
        sel = (dist >= edges[b]) & (dist < edges[b + 1])
        if sel.any():
            profile[b] = float(wind[sel].mean())
    return centers, profile


def basin_summary(stats: list[StormStatistics]) -> dict[str, float]:
    """Aggregate storm metrics (the 'beyond global storm counts' the paper
    promises): counts, total PDI, strongest wind, total conditional rain."""
    if not stats:
        return {"count": 0, "total_pdi": 0.0, "max_wind_ms": 0.0,
                "total_area_km2": 0.0}
    return {
        "count": len(stats),
        "total_pdi": float(sum(s.power_dissipation_index for s in stats)),
        "max_wind_ms": float(max(s.max_wind_ms for s in stats)),
        "total_area_km2": float(sum(s.area_km2 for s in stats)),
    }
