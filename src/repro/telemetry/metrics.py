"""Metrics registry: counters, gauges, and percentile histograms.

The paper's throughput methodology (Section VI) quotes the median over time
with a central-68% confidence interval; :class:`Histogram` summaries reuse
exactly that convention (and :class:`repro.perf.stats.ThroughputStats` as
the carrier) so every latency/throughput metric in the repo reports the
same way the figures do.

Series are keyed by name plus sorted labels, Prometheus-style:
``registry.counter("comm.bytes", rank=0)`` and ``rank=1`` are distinct
series of the same metric.  A disabled registry hands out shared no-op
instruments so instrumented code pays nothing.
"""
from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "HistogramSummary",
           "MetricsRegistry", "series_key"]


def series_key(name: str, labels: dict) -> str:
    """Canonical series identifier: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, bytes, messages)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value plus the observed min/max envelope."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self):
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.updates += 1


@dataclass(frozen=True)
class HistogramSummary:
    """Paper-style distribution summary of one histogram series."""

    count: int
    mean: float
    min: float
    max: float
    median: float
    p16: float      # central-68% lower bound (Section VI convention)
    p84: float      # central-68% upper bound
    p99: float

    def as_dict(self) -> dict:
        return asdict(self)


class Histogram:
    """Raw-sample histogram summarized by percentiles at snapshot time."""

    __slots__ = ("_values", "_lock")

    def __init__(self):
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:          # NaN would poison every percentile
            raise ValueError("histogram sample must not be NaN")
        with self._lock:
            self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> np.ndarray:
        with self._lock:
            return np.asarray(self._values, dtype=np.float64)

    def summary(self) -> HistogramSummary:
        v = self.values()
        if v.size == 0:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p16, med, p84, p99 = np.percentile(v, [16, 50, 84, 99])
        return HistogramSummary(
            count=int(v.size), mean=float(v.mean()), min=float(v.min()),
            max=float(v.max()), median=float(med), p16=float(p16),
            p84=float(p84), p99=float(p99),
        )

    def central68(self):
        """The paper's sustained statistic over this series' samples.

        Returns :class:`repro.perf.stats.ThroughputStats` (median with
        0.16/0.84-percentile bounds) so callers can format histogram data
        exactly like the Figure 4 error bars.
        """
        from ..perf.stats import ThroughputStats

        v = self.values()
        if v.size == 0:
            return ThroughputStats(median=0.0, lo=0.0, hi=0.0)
        lo, med, hi = np.quantile(v, [0.16, 0.5, 0.84])
        return ThroughputStats(median=float(med), lo=float(lo), hi=float(hi))


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for labeled metric series."""

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, factory, name: str, labels: dict):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = series_key(name, labels)
        inst = table.get(key)
        if inst is None:
            with self._lock:
                inst = table.setdefault(key, factory())
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> dict:
        """Point-in-time export of every series (JSON-serializable)."""
        with self._lock:
            counters = {k: c.value for k, c in self._counters.items()}
            gauges = {
                k: {"value": g.value, "min": g.min, "max": g.max,
                    "updates": g.updates}
                for k, g in self._gauges.items() if g.updates
            }
            histograms = {k: h.summary().as_dict()
                          for k, h in self._histograms.items()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
