"""Unified telemetry: spans, metrics, and whole-run Chrome traces.

The measurement substrate for every layer of the reproduction — the
trainer's step loop, the input pipeline, the gradient exchange, and the
event simulators all report into one session (:class:`Telemetry`) that
exports a single ``chrome://tracing`` timeline, a JSONL structured log,
and a paper-style (median, central-68%) metrics report.

Typical use::

    from repro.telemetry import Telemetry, activate
    from repro.telemetry.export import write_chrome_trace, render_metrics_report

    tel = Telemetry()
    with activate(tel):
        trainer.train_step(images, labels)      # instrumented internally
    write_chrome_trace("trace.json", tel.tracer.spans())
    print(render_metrics_report(tel.metrics))

Telemetry is **off by default**: un-instrumented runs resolve the shared
disabled session and pay only a no-op context manager per span site.
"""
from .clock import SimulatedClock, WallClock
from .export import (
    chrome_trace,
    read_jsonl,
    render_metrics_report,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    series_key,
)
from .distributed import CrossRankTrace, MessageLink, StepBreakdown
from .health import (Alert, HealthEngine, HealthRule, default_health_rules,
                     fleet_health_rules)
from .session import DISABLED, Telemetry, activate, get_active, set_active
from .streaming import Ewma, StreamingAggregator, WindowSummary
from .tracer import NULL_SPAN, Span, Tracer, traced

__all__ = [
    "CrossRankTrace",
    "MessageLink",
    "StepBreakdown",
    "StreamingAggregator",
    "WindowSummary",
    "Ewma",
    "HealthEngine",
    "HealthRule",
    "Alert",
    "default_health_rules",
    "fleet_health_rules",
    "Telemetry",
    "activate",
    "get_active",
    "set_active",
    "DISABLED",
    "Tracer",
    "Span",
    "traced",
    "NULL_SPAN",
    "WallClock",
    "SimulatedClock",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "series_key",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "render_metrics_report",
]
