"""Low-overhead span tracer with thread-local nesting.

The tracer records *spans* — named, timed intervals with parent/child
structure — the way the Horovod timeline recorded the paper's negotiation
bottleneck, but across every layer of this codebase (trainer, input
pipeline, gradient exchange, simulators).  Design constraints:

* **Disabled means free.**  ``Tracer.span`` on a disabled tracer returns a
  shared no-op context manager; instrumented hot loops pay one branch and
  one ``with`` statement, nothing else.  This is the guard the acceptance
  criteria require for the training step loop.
* **Thread-local stacks.**  Parent/child links come from a per-thread span
  stack, so the prefetch pipeline's worker threads each get a coherent
  lane without locking on the hot path (only the append of a finished span
  takes the lock).
* **Pluggable clock.**  A :class:`~repro.telemetry.clock.SimulatedClock`
  lets the event simulators emit spans in virtual time
  (:func:`Tracer.emit` records pre-timed spans directly).
"""
from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field

from .clock import WallClock

__all__ = ["Span", "Tracer", "NULL_SPAN", "traced"]


@dataclass
class Span:
    """One finished, timed interval."""

    name: str
    category: str              # component: "trainer" | "io" | "comm" | "sim" | ...
    start_us: float
    duration_us: float
    span_id: int
    parent_id: int | None
    lane: int                  # display row (thread index, or rank for sims)
    kind: str = "span"         # "span" | "instant"
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()
    duration_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start",
                 "_span_id", "_parent_id", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self.duration_s = 0.0

    def __enter__(self):
        tr = self._tracer
        stack = tr._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = tr._next_id()
        stack.append(self._span_id)
        self._start = tr.clock.now()
        return self

    def __exit__(self, *exc):
        tr = self._tracer
        end = tr.clock.now()
        tr._stack().pop()
        self.duration_s = end - self._start
        tr._record(Span(
            name=self._name, category=self._category,
            start_us=(self._start - tr.epoch) * 1e6,
            duration_us=self.duration_s * 1e6,
            span_id=self._span_id, parent_id=self._parent_id,
            lane=tr._lane(), args=self._args,
        ))
        return False


class Tracer:
    """Collects spans from any number of threads into one timeline.

    Parameters
    ----------
    clock:
        Timestamp source; defaults to wall time.  Pass a
        :class:`~repro.telemetry.clock.SimulatedClock` for virtual-time
        tracing.
    enabled:
        When False, :meth:`span` returns :data:`NULL_SPAN` and nothing is
        recorded.
    """

    def __init__(self, clock=None, enabled: bool = True):
        self.clock = clock or WallClock()
        self.enabled = bool(enabled)
        self.epoch = self.clock.now()       # trace origin (ts 0)
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._id = 0
        self._lanes: dict[int, int] = {}    # thread ident -> lane index
        self._local = threading.local()

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _lane(self) -> int:
        ident = threading.get_ident()
        lane = self._lanes.get(ident)
        if lane is None:
            with self._lock:
                lane = self._lanes.setdefault(ident, len(self._lanes))
        return lane

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- public API --------------------------------------------------------

    def span(self, name: str, category: str = "app", **args):
        """Context manager timing a nested span; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, category, args)

    def instant(self, name: str, category: str = "app", **args) -> None:
        """Record a zero-duration marker (e.g. a loss-scale overflow)."""
        if not self.enabled:
            return
        stack = self._stack()
        self._record(Span(
            name=name, category=category,
            start_us=(self.clock.now() - self.epoch) * 1e6, duration_us=0.0,
            span_id=self._next_id(),
            parent_id=stack[-1] if stack else None,
            lane=self._lane(), kind="instant", args=args,
        ))

    def emit(self, name: str, start_s: float, duration_s: float,
             category: str = "app", lane: int = 0,
             parent_id: int | None = None, **args) -> int:
        """Record a pre-timed span (simulators emitting virtual intervals).

        ``start_s`` is absolute time on this tracer's clock timeline (for a
        simulated clock, simulation seconds).  Returns the span id so
        callers can parent further emitted spans under it.
        """
        if not self.enabled:
            return 0
        span_id = self._next_id()
        self._record(Span(
            name=name, category=category,
            start_us=(start_s - self.epoch) * 1e6,
            duration_us=duration_s * 1e6,
            span_id=span_id, parent_id=parent_id, lane=lane, args=args,
        ))
        return span_id

    def current_span_id(self) -> int | None:
        """Span id of the innermost open span on this thread (or None).

        Lets out-of-band recorders (the simmpi wire's message events) parent
        their records under whatever span the caller has open, giving the
        cross-rank trace causal anchors without threading ids around.
        """
        stack = self._stack()
        return stack[-1] if stack else None

    def spans(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def traced(name: str | None = None, category: str = "app",
           tracer: Tracer | None = None):
    """Decorator tracing every call of a function as one span.

    The tracer is resolved *per call*: the explicit ``tracer`` argument if
    given, else the active session's (:func:`repro.telemetry.get_active`),
    so decorated library code follows whatever telemetry the caller
    activated — including none (zero overhead beyond one lookup).
    """
    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*fargs, **fkwargs):
            tr = tracer
            if tr is None:
                from .session import get_active
                tr = get_active().tracer
            with tr.span(span_name, category=category):
                return fn(*fargs, **fkwargs)
        return wrapper

    if callable(name):                    # bare @traced usage
        fn, name = name, None
        return decorate(fn)
    return decorate
