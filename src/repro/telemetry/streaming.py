"""Streaming time-windowed aggregation over telemetry series.

The registry (:mod:`repro.telemetry.metrics`) is cumulative — perfect for
end-of-run reports, useless for *control*: an autoscaler or health rule
needs "requests/s over the last window", not "requests since boot".  This
module adds the streaming layer:

* **Tumbling windows** — observations land in aligned ``floor(t / width)``
  buckets; :meth:`StreamingAggregator.advance` closes every bucket strictly
  before the current one and publishes a :class:`WindowSummary` per series.
* **EWMA tracking** — each series keeps an exponentially-weighted mean and
  variance of its closed-window means (half-life in seconds), the baseline
  the health engine's anomaly rules compare against.
* **Pull sampling** — :meth:`StreamingAggregator.sample` diffs a
  :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot into windowed
  observations (counter deltas, gauge values, new histogram samples), so
  existing instrumentation feeds the stream without changes.
* **Subscriptions** — ``subscribe("serve.latency*", fn)`` delivers every
  closed window of matching series; this is the API ``repro.serve`` and a
  future autoscaler consume.

All timestamps are seconds on the session clock's timeline, so a
:class:`~repro.telemetry.clock.SimulatedClock` drives windows in virtual
time deterministically.
"""
from __future__ import annotations

import fnmatch
import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .metrics import MetricsRegistry, series_key

__all__ = ["WindowSummary", "Ewma", "StreamingAggregator"]


@dataclass(frozen=True)
class WindowSummary:
    """One series' aggregate over one closed tumbling window."""

    series: str
    start: float
    end: float
    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    last: float
    rate: float          # total / window width (per-second)
    median: float
    p16: float
    p84: float

    @property
    def width(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "series": self.series, "start": self.start, "end": self.end,
            "count": self.count, "total": self.total, "mean": self.mean,
            "min": self.minimum, "max": self.maximum, "last": self.last,
            "rate": self.rate, "median": self.median, "p16": self.p16,
            "p84": self.p84,
        }


class Ewma:
    """Exponentially-weighted mean/variance with a time-based half-life."""

    __slots__ = ("halflife_s", "mean", "var", "updates", "_last_t")

    def __init__(self, halflife_s: float):
        if halflife_s <= 0:
            raise ValueError("halflife_s must be positive")
        self.halflife_s = float(halflife_s)
        self.mean = 0.0
        self.var = 0.0
        self.updates = 0
        self._last_t: float | None = None

    @property
    def std(self) -> float:
        return math.sqrt(max(self.var, 0.0))

    def update(self, value: float, t: float) -> None:
        value = float(value)
        if self._last_t is None:
            self.mean, self.var = value, 0.0
        else:
            dt = max(t - self._last_t, 0.0)
            alpha = 1.0 - 0.5 ** (dt / self.halflife_s) if dt > 0 else 0.5
            diff = value - self.mean
            incr = alpha * diff
            self.mean += incr
            self.var = (1.0 - alpha) * (self.var + diff * incr)
        self._last_t = t
        self.updates += 1

    def zscore(self, value: float) -> float:
        """How many EW standard deviations ``value`` sits from the mean."""
        if self.updates < 1:
            return 0.0
        std = self.std
        if std <= 1e-12:
            return 0.0 if value == self.mean else math.inf
        return (value - self.mean) / std


class StreamingAggregator:
    """Tumbling-window + EWMA aggregation with subscriptions.

    Parameters
    ----------
    clock:
        Timestamp source for observations without an explicit ``t``; pass
        the session's clock (simulated or wall).
    window_s:
        Tumbling window width in (virtual) seconds.
    ewma_halflife_s:
        Half-life of each series' EWMA baseline; defaults to 8 windows.
    keep_windows:
        Closed summaries retained per series (ring-buffer semantics).
    """

    def __init__(self, clock=None, window_s: float = 1.0,
                 ewma_halflife_s: float | None = None,
                 keep_windows: int = 256):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.clock = clock
        self.window_s = float(window_s)
        self.ewma_halflife_s = float(ewma_halflife_s
                                     if ewma_halflife_s is not None
                                     else 8 * window_s)
        self.keep_windows = int(keep_windows)
        # series -> window index -> list of values (open buckets)
        self._open: dict[str, dict[int, list[float]]] = defaultdict(dict)
        self._closed: dict[str, list[WindowSummary]] = defaultdict(list)
        self._ewma: dict[str, Ewma] = {}
        self._log: list[WindowSummary] = []      # global closed-window log
        self._subs: dict[int, tuple[str, object]] = {}
        self._sub_seq = 0
        # pull-sampling cursors into a MetricsRegistry
        self._counter_seen: dict[str, float] = {}
        self._hist_seen: dict[str, int] = {}

    # -- ingest --------------------------------------------------------------

    def _now(self) -> float:
        if self.clock is None:
            raise ValueError("no clock configured; pass t= explicitly")
        return self.clock.now()

    def observe(self, name: str, value: float, t: float | None = None,
                **labels) -> None:
        """Record one observation of ``name{labels}`` at time ``t``."""
        t = self._now() if t is None else float(t)
        idx = int(math.floor(t / self.window_s))
        key = series_key(name, labels)
        self._open[key].setdefault(idx, []).append(float(value))

    def sample(self, registry: MetricsRegistry | dict,
               t: float | None = None) -> int:
        """Diff a registry snapshot into the stream; returns observations.

        Counters contribute their *delta* since the previous sample (so a
        closed window's ``total``/``rate`` read as events per window /
        per second); gauges contribute their current value; histograms
        contribute each raw sample not seen by a previous call.
        """
        t = self._now() if t is None else float(t)
        n = 0
        if isinstance(registry, MetricsRegistry):
            counters = {k: c.value for k, c in registry._counters.items()}
            hist_values = {k: h.values()
                           for k, h in registry._histograms.items()}
            gauges = {k: g.value for k, g in registry._gauges.items()
                      if g.updates}
        else:
            counters = dict(registry.get("counters", {}))
            gauges = {k: v["value"]
                      for k, v in registry.get("gauges", {}).items()}
            hist_values = {}
        for key, value in counters.items():
            delta = value - self._counter_seen.get(key, 0.0)
            self._counter_seen[key] = value
            if delta:
                self.observe(key, delta, t=t)
                n += 1
        for key, value in gauges.items():
            self.observe(key, value, t=t)
            n += 1
        for key, values in hist_values.items():
            seen = self._hist_seen.get(key, 0)
            fresh = values[seen:]
            self._hist_seen[key] = int(values.size)
            for v in fresh:
                self.observe(key, float(v), t=t)
                n += 1
        return n

    # -- window lifecycle ----------------------------------------------------

    def advance(self, t: float | None = None) -> list[WindowSummary]:
        """Close every window strictly before ``floor(t / width)``.

        Returns the newly closed summaries (also appended to per-series
        history, folded into EWMAs, and delivered to subscribers), ordered
        by window start then series name.
        """
        t = self._now() if t is None else float(t)
        horizon = int(math.floor(t / self.window_s))
        closing: list[tuple[int, str, list[float]]] = []
        for key, buckets in self._open.items():
            for idx in [i for i in buckets if i < horizon]:
                closing.append((idx, key, buckets.pop(idx)))
        closing.sort(key=lambda item: (item[0], item[1]))
        out: list[WindowSummary] = []
        for idx, key, values in closing:
            arr = np.asarray(values, dtype=np.float64)
            p16, med, p84 = np.percentile(arr, [16, 50, 84])
            start = idx * self.window_s
            end = start + self.window_s
            summary = WindowSummary(
                series=key, start=start, end=end, count=int(arr.size),
                total=float(arr.sum()), mean=float(arr.mean()),
                minimum=float(arr.min()), maximum=float(arr.max()),
                last=float(arr[-1]), rate=float(arr.sum()) / self.window_s,
                median=float(med), p16=float(p16), p84=float(p84),
            )
            history = self._closed[key]
            history.append(summary)
            del history[:-self.keep_windows]
            ewma = self._ewma.get(key)
            if ewma is None:
                ewma = self._ewma[key] = Ewma(self.ewma_halflife_s)
            ewma.update(summary.mean, summary.end)
            self._log.append(summary)
            out.append(summary)
            for pattern, fn in list(self._subs.values()):
                if fnmatch.fnmatchcase(key, pattern):
                    fn(summary)
        return out

    # -- queries -------------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted(set(self._closed) | set(self._open))

    def latest(self, series: str) -> WindowSummary | None:
        history = self._closed.get(series)
        return history[-1] if history else None

    def summaries(self, series: str, n: int | None = None) -> list[WindowSummary]:
        history = self._closed.get(series, [])
        return list(history if n is None else history[-n:])

    def ewma(self, series: str) -> Ewma | None:
        return self._ewma.get(series)

    def closed_since(self, cursor: int) -> tuple[int, list[WindowSummary]]:
        """Closed windows appended after ``cursor``; returns (new cursor, batch).

        The health engine's pull loop: keep the returned cursor, call again
        to receive only what closed in between.
        """
        batch = self._log[cursor:]
        return len(self._log), batch

    # -- subscriptions -------------------------------------------------------

    def tick(self, registry: MetricsRegistry | dict,
             t: float | None = None) -> list[WindowSummary]:
        """One control-loop beat: :meth:`sample` then :meth:`advance`.

        The shape every periodic consumer wants (the fleet's control
        tick, test harnesses): fold the registry's current state into
        the stream, then close every window the clock has passed —
        returning the newly closed summaries.
        """
        self.sample(registry, t=t)
        return self.advance(t)

    def subscribe(self, pattern: str, fn) -> int:
        """Call ``fn(summary)`` for every closed window matching ``pattern``.

        ``pattern`` is an ``fnmatch``-style glob over full series keys
        (e.g. ``"serve.latency_s*"`` matches every lane label).  Returns a
        subscription id for :meth:`unsubscribe`.
        """
        self._sub_seq += 1
        self._subs[self._sub_seq] = (pattern, fn)
        return self._sub_seq

    def unsubscribe(self, sub_id: int) -> bool:
        return self._subs.pop(sub_id, None) is not None
