"""Cross-rank trace analysis: message links, step attribution, stragglers.

The paper's §VI methodology is an *attribution* argument: at scale you must
know which rank and which phase (compute vs allreduce vs I/O) holds the
critical path of a step, and quote it as a median with a central-68%
interval.  This module is that analyzer for our merged traces:

* :class:`MessageLink` — every ``category="comm.msg"`` event pair recorded
  by :class:`repro.comm.simmpi.World` (matched on ``msg_id``) becomes a
  causal edge between the sender's and receiver's rank lanes.
* :class:`CrossRankTrace` — groups spans into training steps (via their
  ``step`` arg or envelope containment), partitions each step's elapsed
  time *exclusively* into compute / comm / io / stall, names the straggler
  rank, and walks the span DAG for the critical path.
* :meth:`CrossRankTrace.summarize` — §VI-style median + central-68%
  per-phase breakdowns over steps, as
  :class:`repro.perf.stats.ThroughputStats`.

Attribution is an interval partition with comm > io > compute priority over
the step envelope; whatever interval no span claims is **stall** — so the
four phases always sum exactly to the step's elapsed time, the invariant
the ``perf.breakdown`` cross-validation test pins down.
"""
from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .tracer import Span

__all__ = ["MessageLink", "StepBreakdown", "CrossRankTrace",
           "PHASE_OF_CATEGORY"]

# Span category -> exclusive phase.  Categories absent here (resilience,
# comm.msg instants, health, ...) do not claim step time: resilience spans
# like ``elastic_recovery`` surface as *stall* (the residual), which is the
# honest reading — that time bought no forward progress.
PHASE_OF_CATEGORY = {
    "trainer": "compute",
    "serve": "compute",
    "app": "compute",
    "comm": "comm",
    "io": "io",
}

PHASES = ("compute", "comm", "io", "stall")


@dataclass
class MessageLink:
    """One wire message's causal edge: send event -> recv (or drop) event."""

    msg_id: int
    src: int
    dst: int
    tag: int
    send: Span | None = None
    recv: Span | None = None
    dropped: bool = False

    @property
    def matched(self) -> bool:
        return self.send is not None and self.recv is not None

    @property
    def latency_us(self) -> float:
        if not self.matched:
            return float("nan")
        return self.recv.start_us - self.send.start_us


@dataclass
class StepBreakdown:
    """Exclusive phase attribution of one training step's elapsed time."""

    step: int
    start_us: float
    end_us: float
    compute_s: float
    comm_s: float
    io_s: float
    stall_s: float
    per_rank_s: dict[int, float] = field(default_factory=dict)
    straggler_rank: int | None = None

    @property
    def total_s(self) -> float:
        return (self.end_us - self.start_us) / 1e6

    def phase_seconds(self) -> dict[str, float]:
        return {"compute": self.compute_s, "comm": self.comm_s,
                "io": self.io_s, "stall": self.stall_s}

    def as_dict(self) -> dict:
        return {
            "step": self.step, "total_s": self.total_s,
            "compute_s": self.compute_s, "comm_s": self.comm_s,
            "io_s": self.io_s, "stall_s": self.stall_s,
            "per_rank_s": {str(r): v for r, v in sorted(self.per_rank_s.items())},
            "straggler_rank": self.straggler_rank,
        }


# -- interval arithmetic (microsecond timelines) -----------------------------

def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping intervals into a disjoint sorted union."""
    out: list[tuple[float, float]] = []
    for lo, hi in sorted(i for i in intervals if i[1] > i[0]):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _subtract(intervals: list[tuple[float, float]],
              holes: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Disjoint union minus disjoint union (both outputs of :func:`_union`)."""
    out: list[tuple[float, float]] = []
    for lo, hi in intervals:
        cur = lo
        for hlo, hhi in holes:
            if hhi <= cur or hlo >= hi:
                continue
            if hlo > cur:
                out.append((cur, hlo))
            cur = max(cur, hhi)
            if cur >= hi:
                break
        if cur < hi:
            out.append((cur, hi))
    return out


def _total_us(intervals: list[tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in intervals)


class CrossRankTrace:
    """The merged cross-rank span DAG of one (simulated) distributed run."""

    def __init__(self, spans: list[Span]):
        self.spans = list(spans)
        self.links: dict[int, MessageLink] = {}
        self._by_id = {s.span_id: s for s in self.spans}
        for s in self.spans:
            if s.category != "comm.msg":
                continue
            edge = s.args.get("msg_edge")
            msg_id = s.args.get("msg_id")
            if edge not in ("send", "recv", "drop") or msg_id is None:
                continue
            link = self.links.get(msg_id)
            if link is None:
                link = self.links[msg_id] = MessageLink(
                    msg_id=msg_id, src=s.args.get("src", -1),
                    dst=s.args.get("dst", -1), tag=s.args.get("tag", 0))
            if edge == "send":
                link.send = s
            elif edge == "recv":
                link.recv = s
            else:
                link.recv = s
                link.dropped = True

    @classmethod
    def from_spans(cls, spans: list[Span]) -> "CrossRankTrace":
        return cls(spans)

    # -- message links -------------------------------------------------------

    def matched(self) -> list[MessageLink]:
        """Links whose send and recv (or drop notice) were both recorded."""
        return [l for l in self.links.values() if l.matched]

    def unmatched(self) -> list[MessageLink]:
        """Sends still in flight at trace end (or recvs of untraced sends)."""
        return [l for l in self.links.values() if not l.matched]

    # -- step grouping -------------------------------------------------------

    def step_spans(self) -> dict[int, list[Span]]:
        """Spans grouped by training step.

        A span with a ``step`` arg belongs to that step; any other span
        falls into the step whose envelope (built from the stepped spans)
        contains its start time.  Zero-width instants never claim time but
        still ride along for DAG walks.
        """
        groups: dict[int, list[Span]] = defaultdict(list)
        rest: list[Span] = []
        for s in self.spans:
            step = s.args.get("step")
            if step is None:
                rest.append(s)
            else:
                groups[int(step)].append(s)
        envelopes = {
            step: (min(s.start_us for s in group),
                   max(s.end_us for s in group))
            for step, group in groups.items()
        }
        ordered = sorted(envelopes.items(), key=lambda kv: kv[1][0])
        for s in rest:
            for step, (lo, hi) in ordered:
                if lo <= s.start_us <= hi:
                    groups[step].append(s)
                    break
        return dict(groups)

    def step_breakdowns(self) -> list[StepBreakdown]:
        """Exclusive compute/comm/io/stall attribution per step."""
        out: list[StepBreakdown] = []
        for step, group in sorted(self.step_spans().items()):
            lo = min(s.start_us for s in group)
            hi = max(s.end_us for s in group)
            claims: dict[str, list[tuple[float, float]]] = {
                "compute": [], "comm": [], "io": []}
            per_rank: dict[int, float] = defaultdict(float)
            for s in group:
                if s.kind == "instant" or s.duration_us <= 0:
                    continue
                rank = s.args.get("rank")
                if rank is not None:
                    per_rank[int(rank)] += s.duration_us / 1e6
                phase = PHASE_OF_CATEGORY.get(s.category)
                if phase is not None:
                    claims[phase].append((s.start_us, s.end_us))
            comm = _union(claims["comm"])
            io = _subtract(_union(claims["io"]), comm)
            compute = _subtract(_subtract(_union(claims["compute"]), comm),
                                _union(io))
            comm_s = _total_us(comm) / 1e6
            io_s = _total_us(io) / 1e6
            compute_s = _total_us(compute) / 1e6
            stall_s = max(0.0, (hi - lo) / 1e6 - comm_s - io_s - compute_s)
            straggler = (max(per_rank, key=per_rank.get)
                         if per_rank else None)
            out.append(StepBreakdown(
                step=step, start_us=lo, end_us=hi, compute_s=compute_s,
                comm_s=comm_s, io_s=io_s, stall_s=stall_s,
                per_rank_s=dict(per_rank), straggler_rank=straggler))
        return out

    # -- §VI summaries -------------------------------------------------------

    def summarize(self) -> dict:
        """Median + central-68% seconds per phase, over steps (§VI style).

        Returns ``{phase: repro.perf.stats.ThroughputStats}``.  Imported
        lazily: ``repro.perf`` pulls in comm/hpc, which import telemetry.
        """
        from ..perf.stats import ThroughputStats

        breakdowns = self.step_breakdowns()
        out: dict[str, ThroughputStats] = {}
        for phase in PHASES:
            vals = np.asarray([b.phase_seconds()[phase] for b in breakdowns],
                              dtype=np.float64)
            if vals.size == 0:
                out[phase] = ThroughputStats(median=0.0, lo=0.0, hi=0.0)
                continue
            lo, med, hi = np.quantile(vals, [0.16, 0.5, 0.84])
            out[phase] = ThroughputStats(median=float(med), lo=float(lo),
                                         hi=float(hi))
        return out

    def straggler_counts(self) -> dict[int, int]:
        """How many steps each rank was the straggler of."""
        counts: dict[int, int] = defaultdict(int)
        for b in self.step_breakdowns():
            if b.straggler_rank is not None:
                counts[b.straggler_rank] += 1
        return dict(counts)

    # -- critical path -------------------------------------------------------

    def _predecessor(self, span: Span, group: list[Span]) -> Span | None:
        """Latest-finishing span that causally precedes ``span``.

        Causal edges: same-lane program order, parent links, and matched
        message links whose recv lands inside ``span``'s interval (the
        cross-rank edges trace-context propagation bought us).
        """
        eps = 1e-3  # µs tolerance for back-to-back virtual spans
        candidates: list[Span] = []
        for p in group:
            if p is span or p.end_us > span.start_us + eps:
                continue
            if p.lane == span.lane or p.span_id == span.parent_id:
                candidates.append(p)
        for link in self.matched():
            recv, send = link.recv, link.send
            if (recv.lane == span.lane
                    and span.start_us - eps <= recv.start_us <= span.end_us + eps):
                sender = self._by_id.get(send.parent_id)
                if sender is not None and sender.end_us <= span.end_us + eps:
                    candidates.append(sender)
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.end_us)

    def critical_path(self, step: int) -> list[Span]:
        """Greedy longest causal chain ending at the step's last span."""
        group = [s for s in self.step_spans().get(step, [])
                 if s.kind != "instant" and s.duration_us > 0]
        if not group:
            return []
        path = [max(group, key=lambda s: s.end_us)]
        seen = {path[0].span_id}
        while True:
            prev = self._predecessor(path[-1], group)
            if prev is None or prev.span_id in seen:
                break
            seen.add(prev.span_id)
            path.append(prev)
        path.reverse()
        return path
