"""The telemetry session: one tracer + one metrics registry, activatable.

Instrumented code throughout the repo resolves its telemetry at call time:

* an explicit ``telemetry=`` argument wins (tests, embedded use);
* otherwise the module-level *active* session
  (:func:`get_active`), installed with :func:`activate`;
* the default active session is a shared **disabled** singleton, so
  un-configured code paths pay only a null-context-manager per span.

This is what lets the trainer, input pipeline, all-reduce, and simulators
write into one coherent timeline without threading a handle through every
signature.
"""
from __future__ import annotations

from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["Telemetry", "get_active", "activate", "set_active", "DISABLED"]


class Telemetry:
    """A tracing + metrics session.

    Parameters
    ----------
    enabled:
        False produces a session whose tracer and registry are both no-ops.
    clock:
        Passed to the tracer; use a
        :class:`~repro.telemetry.clock.SimulatedClock` for virtual time.
    """

    def __init__(self, enabled: bool = True, clock=None):
        self.enabled = bool(enabled)
        self.clock = self.tracer = None  # set below (clock via tracer)
        self.tracer = Tracer(clock=clock, enabled=enabled)
        self.clock = self.tracer.clock
        self.metrics = MetricsRegistry(enabled=enabled)
        # Optional streaming/health layers; None until attached, so
        # instrumented code guards with ``tel.streams is not None``.
        self.streams = None
        self.health = None

    def span(self, name: str, category: str = "app", **args):
        return self.tracer.span(name, category=category, **args)

    def attach_streams(self, window_s: float = 1.0, **kwargs):
        """Attach a :class:`~repro.telemetry.streaming.StreamingAggregator`
        on this session's clock; returns it (idempotent)."""
        if self.streams is None:
            from .streaming import StreamingAggregator

            self.streams = StreamingAggregator(
                clock=self.clock, window_s=window_s, **kwargs)
        return self.streams

    def attach_health(self, rules=None, window_s: float = 1.0, **kwargs):
        """Attach a :class:`~repro.telemetry.health.HealthEngine` (creating
        the streaming layer if needed); returns it (idempotent)."""
        if self.health is None:
            from .health import HealthEngine, default_health_rules

            streams = self.attach_streams(window_s=window_s)
            self.health = HealthEngine(
                rules if rules is not None else default_health_rules(**kwargs),
                streams, telemetry=self)
        return self.health

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.__init__(enabled=self.enabled)
        self.streams = None
        self.health = None


DISABLED = Telemetry(enabled=False)

_active: Telemetry = DISABLED


def get_active() -> Telemetry:
    """The session instrumented code reports to (disabled by default)."""
    return _active


def set_active(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as the active session; returns the previous one."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else DISABLED
    return previous


@contextmanager
def activate(telemetry: Telemetry):
    """Scope ``telemetry`` as the active session, restoring on exit."""
    previous = set_active(telemetry)
    try:
        yield telemetry
    finally:
        set_active(previous)
