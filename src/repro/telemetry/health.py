"""Declarative health rules over streaming windows: fire, resolve, report.

The last layer of the observability control plane: rules declared as data,
evaluated over the closed windows of a
:class:`~repro.telemetry.streaming.StreamingAggregator`, with a proper
firing/resolved lifecycle (consecutive-window streaks, not single-sample
flapping).  Rule kinds:

``threshold``
    A window statistic compared against a fixed bound
    (``serve.queue_depth mean > 100``).
``rate_of_change``
    The per-second derivative of a window statistic between consecutive
    windows (``dist.world_size`` falling means the world shrank).
``ewma_anomaly``
    The window mean vs. the series' EWMA baseline, in EW standard
    deviations — the "step time suddenly looks different" detector.
``slo_burn``
    Error-budget burn: the fraction of recent windows whose statistic
    breaches the SLO target, compared to the budget
    (``serve.latency_s median > 0.2 in > 50% of the last 10 windows``).
``imbalance``
    Cross-series skew within one window over a labeled family
    (``trainer.rank_step_s{rank=*}``): max/median ratio above a bound
    names the straggler rank — the paper's §VI attribution as an alert.

Alerts are mirrored into telemetry (``health_fired`` / ``health_resolved``
instants, ``health.alerts_fired`` counters) so a Chrome trace of a faulty
run shows each rule firing alongside the fault that caused it.
"""
from __future__ import annotations

import fnmatch
import math
import re
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .streaming import StreamingAggregator, WindowSummary

__all__ = ["HealthRule", "Alert", "HealthEngine", "default_health_rules",
           "fleet_health_rules", "SEVERITIES"]

SEVERITIES = ("info", "warning", "critical")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_STAT_FIELDS = {"mean": "mean", "rate": "rate", "total": "total",
                "min": "minimum", "max": "maximum", "last": "last",
                "median": "median", "p16": "p16", "p84": "p84",
                "count": "count"}

_RANK_LABEL = re.compile(r"rank=(\d+)")


@dataclass(frozen=True)
class HealthRule:
    """One declarative health check over a series (or series family)."""

    name: str
    series: str                     # fnmatch glob over full series keys
    kind: str = "threshold"         # threshold | rate_of_change |
                                    # ewma_anomaly | slo_burn | imbalance
    severity: str = "warning"
    stat: str = "mean"              # WindowSummary statistic to evaluate
    op: str = ">"
    value: float = 0.0              # bound (threshold / derivative / ratio)
    sigma: float = 3.0              # ewma_anomaly: |z| that breaches
    warmup: int = 3                 # ewma_anomaly: EWMA updates before arming
    slo_target: float = 0.0         # slo_burn: per-window SLO bound on stat
    budget_fraction: float = 0.5    # slo_burn: breach fraction that fires
    budget_windows: int = 10        # slo_burn: lookback length
    for_windows: int = 1            # consecutive breaches before firing
    resolve_windows: int = 1        # consecutive OKs before resolving
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("threshold", "rate_of_change", "ewma_anomaly",
                             "slo_burn", "imbalance"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}")
        if self.stat not in _STAT_FIELDS:
            raise ValueError(f"unknown stat {self.stat!r}")


@dataclass
class Alert:
    """One rule firing (and, eventually, resolving) on one series."""

    rule: str
    series: str
    severity: str
    state: str                      # "firing" | "resolved"
    fired_at: float
    resolved_at: float | None = None
    value: float = 0.0              # most recent breaching value
    message: str = ""
    context: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule, "series": self.series,
            "severity": self.severity, "state": self.state,
            "fired_at": self.fired_at, "resolved_at": self.resolved_at,
            "value": self.value, "message": self.message,
            "context": dict(self.context),
        }


class _RuleState:
    """Streak machine for one (rule, series) pair."""

    __slots__ = ("breaches", "oks", "alert", "prev", "burn")

    def __init__(self, rule: HealthRule):
        self.breaches = 0
        self.oks = 0
        self.alert: Alert | None = None
        self.prev: WindowSummary | None = None
        self.burn: deque = deque(maxlen=max(rule.budget_windows, 1))


def _stat(summary: WindowSummary, stat: str) -> float:
    return float(getattr(summary, _STAT_FIELDS[stat]))


class HealthEngine:
    """Evaluates :class:`HealthRule` sets against closed streaming windows.

    Pull-based: each :meth:`evaluate` call consumes every window closed
    since the last call (via the aggregator's cursor API) and advances the
    per-(rule, series) streak machines.  Deterministic under a simulated
    clock — same observations, same windows, same alert lifecycle.
    """

    def __init__(self, rules, streams: StreamingAggregator, telemetry=None):
        self.rules = list(rules)
        self.streams = streams
        self.telemetry = telemetry
        self.alerts: list[Alert] = []
        self._cursor = 0
        self._state: dict[tuple[str, str], _RuleState] = {}

    # -- lifecycle helpers ---------------------------------------------------

    def _get_state(self, rule: HealthRule, series: str) -> _RuleState:
        key = (rule.name, series)
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = _RuleState(rule)
        return state

    def _tel(self):
        if self.telemetry is not None:
            return self.telemetry
        from .session import get_active

        return get_active()

    def _transition(self, rule: HealthRule, series: str, state: _RuleState,
                    breach: bool, value: float, at: float,
                    message: str, context: dict) -> None:
        if breach:
            state.breaches += 1
            state.oks = 0
        else:
            state.oks += 1
            state.breaches = 0
        if breach and state.alert is None and state.breaches >= rule.for_windows:
            state.alert = Alert(
                rule=rule.name, series=series, severity=rule.severity,
                state="firing", fired_at=at, value=value, message=message,
                context=context)
            self.alerts.append(state.alert)
            tel = self._tel()
            if tel.enabled:
                tel.tracer.instant("health_fired", category="health",
                                   rule=rule.name, series=series,
                                   severity=rule.severity, value=value)
                tel.metrics.counter("health.alerts_fired",
                                    rule=rule.name).inc()
        elif state.alert is not None:
            if breach:
                state.alert.value = value
                state.alert.context.update(context)
            elif state.oks >= rule.resolve_windows:
                state.alert.state = "resolved"
                state.alert.resolved_at = at
                tel = self._tel()
                if tel.enabled:
                    tel.tracer.instant("health_resolved", category="health",
                                       rule=rule.name, series=series)
                    tel.metrics.counter("health.alerts_resolved",
                                        rule=rule.name).inc()
                state.alert = None

    # -- per-kind evaluation -------------------------------------------------

    def _eval_single(self, rule: HealthRule, summary: WindowSummary) -> None:
        series = summary.series
        state = self._get_state(rule, series)
        value = _stat(summary, rule.stat)
        breach = False
        message = ""
        context: dict = {}
        if rule.kind == "threshold":
            breach = _OPS[rule.op](value, rule.value)
            message = (f"{series} {rule.stat}={value:.4g} "
                       f"{rule.op} {rule.value:.4g}")
        elif rule.kind == "rate_of_change":
            if state.prev is not None:
                dt = summary.end - state.prev.end
                if dt > 0:
                    rate = (value - _stat(state.prev, rule.stat)) / dt
                    breach = _OPS[rule.op](rate, rule.value)
                    value = rate
                    message = (f"{series} d({rule.stat})/dt={rate:.4g} "
                               f"{rule.op} {rule.value:.4g}")
            state.prev = summary
        elif rule.kind == "ewma_anomaly":
            ewma = self.streams.ewma(series)
            if ewma is not None and ewma.updates > rule.warmup:
                z = ewma.zscore(summary.mean)
                if not math.isfinite(z):
                    # Zero-variance baseline (noise-free sim series): any
                    # jump is infinitely anomalous — clamp to stay JSON-safe.
                    z = math.copysign(99.0, z)
                breach = abs(z) >= rule.sigma
                value = z
                message = (f"{series} mean={summary.mean:.4g} is "
                           f"{z:+.2f}σ from EWMA {ewma.mean:.4g}")
        elif rule.kind == "slo_burn":
            state.burn.append(_OPS[rule.op](value, rule.slo_target))
            burn = sum(state.burn) / len(state.burn)
            breach = (len(state.burn) >= min(rule.budget_windows, 2)
                      and burn > rule.budget_fraction)
            value = burn
            message = (f"{series} burned {burn:.0%} of budget "
                       f"({rule.stat} {rule.op} {rule.slo_target:.4g} "
                       f"in {len(state.burn)} windows)")
            context = {"burn": burn}
        self._transition(rule, series, state, breach, value, summary.end,
                         message, context)

    def _eval_imbalance(self, rule: HealthRule,
                        batch: list[WindowSummary]) -> None:
        # Group the family's windows by window start: skew is *within* one
        # window across labeled series (ranks), not over time.
        by_window: dict[float, list[WindowSummary]] = {}
        for s in batch:
            if fnmatch.fnmatchcase(s.series, rule.series):
                by_window.setdefault(s.start, []).append(s)
        state = self._get_state(rule, rule.series)
        for start in sorted(by_window):
            group = by_window[start]
            if len(group) < 2:
                continue
            values = np.asarray([_stat(s, rule.stat) for s in group])
            med = float(np.median(values))
            worst = int(values.argmax())
            ratio = float(values[worst] / med) if med > 0 else float("inf")
            breach = ratio >= rule.value
            straggler_series = group[worst].series
            m = _RANK_LABEL.search(straggler_series)
            context = {"straggler_series": straggler_series,
                       "ratio": ratio}
            if m:
                context["straggler_rank"] = int(m.group(1))
            message = (f"{straggler_series} {rule.stat}="
                       f"{values[worst]:.4g} is {ratio:.2f}x the "
                       f"family median {med:.4g}")
            self._transition(rule, rule.series, state, breach, ratio,
                             group[0].end, message, context)

    # -- public API ----------------------------------------------------------

    def evaluate(self, t: float | None = None) -> list[Alert]:
        """Consume windows closed since the last call; returns new alerts.

        When ``t`` is given the aggregator is advanced to ``t`` first
        (closing due windows); the returned list holds alerts that *fired*
        during this evaluation.
        """
        if t is not None:
            self.streams.advance(t)
        before = len(self.alerts)
        self._cursor, batch = self.streams.closed_since(self._cursor)
        if not batch:
            return []
        for rule in self.rules:
            if rule.kind == "imbalance":
                self._eval_imbalance(rule, batch)
            else:
                for summary in batch:
                    if fnmatch.fnmatchcase(summary.series, rule.series):
                        self._eval_single(rule, summary)
        return self.alerts[before:]

    def firing(self) -> list[Alert]:
        return [a for a in self.alerts if a.state == "firing"]

    def resolved(self) -> list[Alert]:
        return [a for a in self.alerts if a.state == "resolved"]

    def report(self) -> dict:
        """JSON-serializable engine state (rules, alerts, series heads)."""
        return {
            "rules": [{"name": r.name, "series": r.series, "kind": r.kind,
                       "severity": r.severity,
                       "description": r.description}
                      for r in self.rules],
            "alerts": [a.as_dict() for a in self.alerts],
            "firing": [a.as_dict() for a in self.firing()],
            "series": {
                name: latest.as_dict()
                for name in self.streams.series_names()
                if (latest := self.streams.latest(name)) is not None
            },
        }

    def render(self, title: str = "Health") -> str:
        """Plain-text dashboard: rule status lines, then the alert log."""
        lines = [title, "=" * len(title), ""]
        firing_by_rule = {a.rule for a in self.firing()}
        ever_fired = {a.rule for a in self.alerts}
        lines.append("rules:")
        for r in self.rules:
            if r.name in firing_by_rule:
                status = "FIRING"
            elif r.name in ever_fired:
                status = "resolved"
            else:
                status = "ok"
            lines.append(f"  [{status:^8s}] {r.name:<28s} "
                         f"{r.kind:<14s} {r.severity:<8s} {r.series}")
        lines.append("")
        if self.alerts:
            lines.append("alerts:")
            for a in self.alerts:
                when = (f"t={a.fired_at:.3f}" if a.resolved_at is None
                        else f"t={a.fired_at:.3f}..{a.resolved_at:.3f}")
                lines.append(f"  {a.severity:<8s} {a.rule:<28s} "
                             f"[{a.state}] {when}  {a.message}")
        else:
            lines.append("alerts: none")
        return "\n".join(lines).rstrip() + "\n"


def default_health_rules(step_time_slo_s: float = 2.0,
                         latency_slo_s: float = 0.5) -> list[HealthRule]:
    """The stock rule set covering trainer, comm, resilience, and serve."""
    return [
        HealthRule(
            name="step_time_anomaly", series="trainer.step_time_s",
            kind="ewma_anomaly", sigma=3.0, warmup=3, severity="warning",
            description="step time departs its EWMA baseline by >= 3 sigma"),
        HealthRule(
            name="rank_imbalance", series="trainer.rank_step_s{rank=*}",
            kind="imbalance", stat="mean", value=2.0, severity="warning",
            for_windows=2, resolve_windows=2,
            description="one rank's step share runs >= 2x the family "
                        "median (names the straggler)"),
        HealthRule(
            name="step_time_slo_burn", series="trainer.step_time_s",
            kind="slo_burn", stat="median", op=">",
            slo_target=step_time_slo_s, budget_fraction=0.5,
            budget_windows=10, severity="critical",
            description="median step time breaches its SLO in more than "
                        "half the recent windows"),
        HealthRule(
            name="comm_message_drops", series="comm.dropped_messages",
            kind="threshold", stat="total", op=">", value=0.0,
            severity="warning",
            description="injected (or real) message drops observed on "
                        "the wire this window"),
        HealthRule(
            name="step_retries", series="resilience.step_retries",
            kind="threshold", stat="total", op=">", value=0.0,
            severity="warning",
            description="a training step had to be drained and retried"),
        HealthRule(
            name="world_shrunk", series="dist.world_size",
            kind="rate_of_change", stat="last", op="<", value=0.0,
            severity="critical",
            description="the data-parallel world lost ranks (elastic "
                        "degradation engaged)"),
        HealthRule(
            name="serve_latency_slo_burn", series="serve.latency_s*",
            kind="slo_burn", stat="median", op=">",
            slo_target=latency_slo_s, budget_fraction=0.5,
            budget_windows=10, severity="critical",
            description="serve latency burns its SLO budget"),
        HealthRule(
            name="serve_shedding", series="serve.shed*",
            kind="threshold", stat="total", op=">", value=0.0,
            severity="warning",
            description="admission control is shedding serve requests"),
    ]


def fleet_health_rules(backlog_windows_warn: float = 200.0
                       ) -> list[HealthRule]:
    """Rules covering the autoscaled serve fleet (``repro.serve.fleet``).

    The fleet publishes per-cell gauges every control tick, so the
    gauge-backed rules here both fire *and* resolve deterministically:
    ``fleet_cell_shrunk`` (rate-of-change on the replica count) breaches
    exactly on the tick a kill or scale-in lands and is OK again one
    tick later, and ``fleet_queue_backlog`` clears as soon as a burst
    drains.  Counter-backed rules (shedding, spillover) fire on the
    window where the event happened.
    """
    return [
        HealthRule(
            name="fleet_queue_backlog",
            series="fleet.queue_windows{cell=*}",
            kind="threshold", stat="last", op=">",
            value=backlog_windows_warn, severity="warning",
            for_windows=2, resolve_windows=2,
            description="a cell's queued tile-window backlog is deep "
                        "enough to blow the drain horizon"),
        HealthRule(
            name="fleet_shedding", series="fleet.shed*",
            kind="threshold", stat="total", op=">", value=0.0,
            severity="warning",
            description="a cell is refusing requests (queue_full or SLO "
                        "shed) — every cell is out of budget"),
        HealthRule(
            name="fleet_spillover", series="fleet.spillover*",
            kind="threshold", stat="total", op=">", value=0.0,
            severity="info",
            description="a cell is routing overload to remote cells "
                        "(degraded locality, not refusals)"),
        HealthRule(
            name="fleet_cell_shrunk", series="fleet.replicas{cell=*}",
            kind="rate_of_change", stat="last", op="<", value=0.0,
            severity="critical",
            description="a cell lost replicas (injected kill or "
                        "autoscaler scale-in)"),
        HealthRule(
            name="fleet_hit_rate_anomaly",
            series="fleet.cache.hit_rate{cell=*}",
            kind="ewma_anomaly", sigma=4.0, warmup=5, severity="info",
            resolve_windows=2,
            description="a cell's warm-tile hit rate departs its EWMA "
                        "baseline (cold caches after a scale event)"),
    ]
