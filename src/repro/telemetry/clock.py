"""Clocks for the span tracer: wall time and simulated (virtual) time.

Every tracer reads timestamps through a clock object so the same span API
works for real code (``WallClock`` over ``time.perf_counter``) and for the
discrete-event simulators (``SimulatedClock``, advanced explicitly by the
simulation loop).  Timestamps are seconds as floats; exporters convert to
the microseconds Chrome tracing expects.
"""
from __future__ import annotations

import time

__all__ = ["WallClock", "SimulatedClock"]


class WallClock:
    """Monotonic wall time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock:
    """Virtual time driven by a simulation loop.

    The event simulators (:mod:`repro.perf.eventsim`, :mod:`repro.hpc.events`)
    advance this clock to their event times, so spans opened under it carry
    *simulated* timestamps and land in the same Chrome trace as wall-clock
    spans, on their own virtual timeline.
    """

    def __init__(self, start: float = 0.0):
        self._time = float(start)

    def now(self) -> float:
        return self._time

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError("simulated time cannot move backwards")
        self._time += dt
        return self._time

    def advance_to(self, t: float) -> float:
        """Jump to absolute time ``t`` if it is ahead of now."""
        self._time = max(self._time, float(t))
        return self._time
