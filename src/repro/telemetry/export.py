"""Exporters: Chrome-trace JSON, JSONL event log, plain-text metrics report.

The Chrome trace is the whole-run analogue of the Horovod timeline the
paper's team used to find the control-plane bottleneck: one ``trace.json``
you open in ``chrome://tracing`` / Perfetto, with one process row per
component (trainer, io, comm, sim) and one thread row per lane
(thread / rank).  Comm's reconstructed exchange timeline
(:mod:`repro.comm.timeline`) merges into the same file through comm's own
serializer, so there is exactly one place that knows the event format.
"""
from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry
from .tracer import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "render_metrics_report",
]

# Preferred process-row order in the trace viewer; unknown categories are
# appended alphabetically after these.
_CATEGORY_ORDER = ("trainer", "io", "comm", "comm.msg", "serve",
                   "resilience", "health", "sim", "app")


def _category_pids(spans: list[Span]) -> dict[str, int]:
    cats = {s.category for s in spans}
    ordered = [c for c in _CATEGORY_ORDER if c in cats]
    ordered += sorted(cats - set(ordered))
    return {c: i + 1 for i, c in enumerate(ordered)}


def chrome_trace(spans: list[Span], comm_events=None,
                 comm_process: str = "comm.exchange") -> dict:
    """Build the ``chrome://tracing`` document for a set of spans.

    ``comm_events`` (``repro.comm.timeline.TimelineEvent`` lists) are
    serialized by :func:`repro.comm.timeline.chrome_trace_records` — the
    single TimelineEvent serializer — into their own process row.
    """
    pids = _category_pids(spans)
    records: list[dict] = []
    lanes_seen: set[tuple[int, int]] = set()
    for cat, pid in pids.items():
        records.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": cat}})
    for s in spans:
        pid = pids[s.category]
        if (pid, s.lane) not in lanes_seen:
            lanes_seen.add((pid, s.lane))
            # Wire-message lanes are rank lanes: name them stably so the
            # merged cross-rank trace reads "rank N", not "lane-N".
            lane_name = (f"rank {s.lane}" if s.category == "comm.msg"
                         else f"lane-{s.lane}")
            records.append({"name": "thread_name", "ph": "M", "pid": pid,
                            "tid": s.lane,
                            "args": {"name": lane_name}})
        rec = {
            "name": s.name,
            "cat": s.category,
            "ts": s.start_us,
            "pid": pid,
            "tid": s.lane,
            "args": dict(s.args, span_id=s.span_id,
                         parent_id=s.parent_id),
        }
        if s.kind == "instant":
            rec["ph"] = "i"
            rec["s"] = "t"
        else:
            rec["ph"] = "X"
            rec["dur"] = max(s.duration_us, 0.01)
        records.append(rec)
        # Matched send/recv events additionally emit Chrome flow records,
        # which the trace viewer renders as an arrow between rank lanes.
        edge = s.args.get("msg_edge")
        if edge in ("send", "recv") and "msg_id" in s.args:
            flow = {"name": "msg", "cat": s.category, "id": s.args["msg_id"],
                    "ts": s.start_us, "pid": pid, "tid": s.lane}
            if edge == "send":
                flow["ph"] = "s"
            else:
                flow["ph"] = "f"
                flow["bp"] = "e"
            records.append(flow)
    if comm_events:
        from ..comm.timeline import chrome_trace_records

        comm_pid = max(pids.values(), default=0) + 1
        records.extend(chrome_trace_records(comm_events, pid=comm_pid,
                                            process_name=comm_process))
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: list[Span], comm_events=None) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the document."""
    doc = chrome_trace(spans, comm_events=comm_events)
    Path(path).write_text(json.dumps(doc, indent=1))
    return doc


# -- JSONL structured log ----------------------------------------------------

def write_jsonl(path, spans: list[Span],
                metrics: MetricsRegistry | dict | None = None) -> int:
    """Write one JSON object per line: spans, then a metrics snapshot.

    Round-trips through :func:`read_jsonl`.  Returns the line count.
    """
    lines = []
    for s in spans:
        lines.append(json.dumps({
            "type": "span", "name": s.name, "category": s.category,
            "start_us": s.start_us, "duration_us": s.duration_us,
            "span_id": s.span_id, "parent_id": s.parent_id,
            "lane": s.lane, "kind": s.kind, "args": s.args,
        }))
    if metrics is not None:
        snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        lines.append(json.dumps({"type": "metrics", "snapshot": snap}))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_jsonl(path) -> tuple[list[Span], dict | None]:
    """Load a JSONL log back into spans and the metrics snapshot (if any)."""
    spans: list[Span] = []
    snapshot: dict | None = None
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if rec["type"] == "span":
            spans.append(Span(
                name=rec["name"], category=rec["category"],
                start_us=rec["start_us"], duration_us=rec["duration_us"],
                span_id=rec["span_id"], parent_id=rec["parent_id"],
                lane=rec["lane"], kind=rec["kind"], args=rec["args"],
            ))
        elif rec["type"] == "metrics":
            snapshot = rec["snapshot"]
    return spans, snapshot


# -- plain-text metrics report ----------------------------------------------

def render_metrics_report(metrics: MetricsRegistry | dict,
                          title: str = "Telemetry metrics",
                          extra_lines: list[str] | None = None) -> str:
    """Human-readable summary of every metric series.

    Histograms print the paper's convention: median with the asymmetric
    central-68% interval (+p84-median / -median-p16).
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines = [title, "=" * len(title), ""]
    if snap["counters"]:
        lines.append("counters:")
        for key in sorted(snap["counters"]):
            value = snap["counters"][key]
            text = f"{value:,.0f}" if value == int(value) else f"{value:,.3f}"
            lines.append(f"  {key:<44s} {text}")
        lines.append("")
    if snap["gauges"]:
        lines.append("gauges (last / min / max):")
        for key in sorted(snap["gauges"]):
            g = snap["gauges"][key]
            lines.append(f"  {key:<44s} {g['value']:.3f} / "
                         f"{g['min']:.3f} / {g['max']:.3f}")
        lines.append("")
    if snap["histograms"]:
        lines.append("histograms (median +hi/-lo, central 68%):")
        for key in sorted(snap["histograms"]):
            h = snap["histograms"][key]
            if not h["count"]:
                continue
            lines.append(
                f"  {key:<44s} {h['median']:.6g} "
                f"+{h['p84'] - h['median']:.3g}/-{h['median'] - h['p16']:.3g} "
                f"(n={h['count']}, mean={h['mean']:.6g}, max={h['max']:.6g})")
        lines.append("")
    for line in extra_lines or []:
        lines.append(line)
    return "\n".join(lines).rstrip() + "\n"
